//! `matelda-cli` — run multi-table error detection from the command line.
//!
//! ```text
//! matelda-cli generate <dir> [--lake quintet|rein|dgov-ntr|wdc|gittables] [--seed N] [--tables N]
//!     Write a synthetic benchmark lake: <dir>/dirty/*.csv + <dir>/clean/*.csv
//!
//! matelda-cli detect <dirty-dir> --clean <clean-dir> [--budget-cells N] [--variant <v>]
//!                    [--threads N] [--report] [--repair yes]
//!                    [--read strict|repair|skip] [--on-error fail|skip]
//!                    [--max-quarantined N]
//!     Load the dirty lake, answer Matelda's label requests from the clean
//!     lake (the oracle protocol of the paper's experiments), print the
//!     detection report and, because ground truth is available, P/R/F1.
//!     Variants: standard (default), edf, rs, santos, sf, tpdf, tucf.
//!     --threads N sets the executor's worker count (default: available
//!     parallelism); output is bit-identical at any thread count.
//!     --report prints the per-stage RunReport as JSON on stdout,
//!     including the structured fault log of a degraded run.
//!     --read chooses the ingestion mode: strict fails on the first
//!     malformed CSV (default), repair salvages ragged rows / bad UTF-8,
//!     skip quarantines unparseable files.
//!     --on-error skip quarantines faulted tables/folds/columns and
//!     completes the run instead of aborting (default: fail).
//!     --max-quarantined N exits non-zero when a degraded run quarantines
//!     more than N tables.
//!
//! matelda-cli profile <dir> [--read strict|repair|skip]
//!     Table/column statistics and approximate FDs of a lake directory.
//! ```

use matelda::core::{DomainFolding, FaultPolicy, Matelda, MateldaConfig, Oracle, TrainingStrategy};
use matelda::fd::mine_approximate;
use matelda::lakegen::{DGovLake, GitTablesLake, QuintetLake, ReinLake, WdcLake};
use matelda::table::{diff_lakes, Confusion, IngestReport, Lake, ReadOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        _ => {
            eprintln!("usage: matelda-cli <generate|detect|profile> ... (see --help in source)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Splits positional args from `--key value` flags.
fn parse_flags(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() {
                flags.insert(key, args[i + 1].as_str());
                i += 2;
            } else {
                flags.insert(key, "");
                i += 1;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    (positional, flags)
}

fn cmd_generate(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    let dir = PathBuf::from(pos.first().ok_or("generate: missing <dir>")?);
    let seed: u64 = flags.get("seed").map_or(Ok(1), |s| s.parse())?;
    let kind = flags.get("lake").copied().unwrap_or("quintet");
    let tables: Option<usize> = flags.get("tables").map(|s| s.parse()).transpose()?;

    let lake = match kind {
        "quintet" => QuintetLake::default().generate(seed),
        "rein" => ReinLake::default().generate(seed),
        "dgov-ntr" => DGovLake::ntr().with_n_tables(tables.unwrap_or(24)).generate(seed),
        "dgov-nt" => DGovLake::nt().with_n_tables(tables.unwrap_or(24)).generate(seed),
        "wdc" => WdcLake { n_tables: tables.unwrap_or(20), ..WdcLake::default() }.generate(seed),
        "gittables" => GitTablesLake::default().with_n_tables(tables.unwrap_or(50)).generate(seed),
        other => return Err(format!("unknown lake kind {other:?}").into()),
    };

    for (sub, side) in [("dirty", &lake.dirty), ("clean", &lake.clean)] {
        matelda::table::write_lake_to_dir(side, &dir.join(sub))?;
    }
    println!(
        "wrote {} tables ({} cells, {:.1}% erroneous) to {}/{{dirty,clean}}/",
        lake.dirty.n_tables(),
        lake.dirty.n_cells(),
        100.0 * lake.error_rate(),
        dir.display()
    );
    Ok(())
}

/// The `--read` flag: how malformed CSV files are treated on ingest.
fn read_options(flags: &HashMap<&str, &str>) -> Result<ReadOptions, Box<dyn std::error::Error>> {
    match flags.get("read").copied().unwrap_or("strict") {
        "strict" => Ok(ReadOptions::strict()),
        "repair" => Ok(ReadOptions::repair()),
        "skip" => Ok(ReadOptions::skip()),
        other => Err(format!("unknown --read mode {other:?} (strict|repair|skip)").into()),
    }
}

/// Loads every CSV of a directory into a lake, sorted by file name, under
/// the given ingestion options.
fn load_lake(
    dir: &Path,
    options: &ReadOptions,
) -> Result<(Lake, IngestReport), Box<dyn std::error::Error>> {
    Ok(matelda::table::read_lake_from_dir_with(dir, options)?)
}

/// Prints what tolerant ingestion had to do, if anything.
fn print_ingest_notes(label: &str, report: &IngestReport) {
    for f in report.repaired() {
        println!("note: {label} {} loaded after repairs", f.path.display());
    }
    for f in report.skipped() {
        println!("note: {label} {} skipped (unparseable)", f.path.display());
    }
}

fn cmd_detect(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    let dirty_dir = PathBuf::from(pos.first().ok_or("detect: missing <dirty-dir>")?);
    let clean_dir = PathBuf::from(
        flags.get("clean").ok_or("detect: --clean <dir> is required (labels + evaluation)")?,
    );
    let read = read_options(&flags)?;
    let on_error = match flags.get("on-error").copied().unwrap_or("fail") {
        "fail" => FaultPolicy::Fail,
        "skip" => FaultPolicy::Skip,
        other => return Err(format!("unknown --on-error policy {other:?} (fail|skip)").into()),
    };
    let max_quarantined: usize =
        flags.get("max-quarantined").map(|s| s.parse()).transpose()?.unwrap_or(usize::MAX);
    let (dirty, dirty_ingest) = load_lake(&dirty_dir, &read)?;
    let (clean, _clean_ingest) = load_lake(&clean_dir, &read)?;
    print_ingest_notes("dirty", &dirty_ingest);
    if dirty.n_tables() != clean.n_tables() {
        return Err("dirty and clean lakes have different table counts".into());
    }
    let budget: usize =
        flags.get("budget-cells").map(|s| s.parse()).transpose()?.unwrap_or(2 * dirty.n_columns());

    // threads = 0 means "available parallelism" (the executor's default).
    let threads: usize = flags.get("threads").map(|s| s.parse()).transpose()?.unwrap_or(0);
    let mut config = MateldaConfig { threads, on_error, ..Default::default() };
    match flags.get("variant").copied().unwrap_or("standard") {
        "standard" => {}
        "edf" => config.domain_folding = DomainFolding::ExtremeDomainFolding,
        "rs" => config.domain_folding = DomainFolding::RowSampling(0.1),
        "santos" => config.domain_folding = DomainFolding::SantosLike,
        "sf" => config.syntactic_refinement = true,
        "tpdf" => config.training = TrainingStrategy::PerDomainFold,
        "tucf" => config.training = TrainingStrategy::UnlabeledCellFolds,
        other => return Err(format!("unknown variant {other:?}").into()),
    }

    let truth = diff_lakes(&dirty, &clean);
    let mut oracle = Oracle::new(&truth);
    let start = std::time::Instant::now();
    let result = Matelda::new(config).detect(&dirty, &mut oracle, budget);
    let elapsed = start.elapsed();

    println!(
        "detected in {:.2}s — {} labels over {} domain folds / {} quality folds ({} threads)",
        elapsed.as_secs_f64(),
        result.labels_used,
        result.n_domain_folds,
        result.n_quality_folds,
        result.report.threads
    );
    if flags.contains_key("report") {
        println!("{}", result.report.to_json());
    }
    let quarantine = &result.quarantine;
    if !quarantine.is_empty() {
        println!(
            "degraded run: {} table(s) quarantined, {} column fallback(s), {} fold fallback(s)",
            quarantine.tables.len(),
            quarantine.columns.len(),
            quarantine.fold_fallbacks.len()
        );
    }
    println!("\nper-table report:");
    for (t, table) in dirty.tables.iter().enumerate() {
        let hits = result.predicted.iter_set().filter(|id| id.table == t).count();
        let mark = if quarantine.table_quarantined(t) { "  [quarantined]" } else { "" };
        println!(
            "  {:<28} {:>5} suspicious / {:>6} cells{mark}",
            table.name,
            hits,
            table.n_cells()
        );
    }
    // Quarantined tables are unscored, not clean — evaluate only over
    // the tables the run actually scored.
    let (predicted, truth_scored) = (
        result.predicted.without_tables(&quarantine.tables),
        truth.without_tables(&quarantine.tables),
    );
    let conf = Confusion::from_masks(&predicted, &truth_scored);
    let scope = if quarantine.tables.is_empty() { "" } else { " (scored tables only)" };
    println!(
        "\nevaluation vs clean{scope}: precision {:.1}%  recall {:.1}%  f1 {:.1}%",
        100.0 * conf.precision(),
        100.0 * conf.recall(),
        100.0 * conf.f1()
    );
    if quarantine.tables.len() > max_quarantined {
        return Err(format!(
            "{} tables quarantined, more than --max-quarantined {max_quarantined}",
            quarantine.tables.len()
        )
        .into());
    }

    if flags.contains_key("repair") {
        let spell = matelda::text::SpellChecker::english();
        let repairs = matelda::core::suggest_repairs(&dirty, &result.predicted, &spell);
        let restored = repairs.iter().filter(|r| r.proposed == clean.cell(r.cell)).count();
        println!(
            "\nrepair suggestions: {} proposed, {} ({:.0}%) restore the clean value exactly",
            repairs.len(),
            restored,
            100.0 * restored as f64 / repairs.len().max(1) as f64
        );
        for r in repairs.iter().take(10) {
            println!(
                "  [{:?} conf {:.2}] {}[{}][{}]: {:?} -> {:?}",
                r.strategy,
                r.confidence,
                dirty[r.cell.table].name,
                r.cell.row,
                dirty[r.cell.table].columns[r.cell.col].name,
                r.current,
                r.proposed
            );
        }
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    let dir = PathBuf::from(pos.first().ok_or("profile: missing <dir>")?);
    let (lake, ingest) = load_lake(&dir, &read_options(&flags)?)?;
    print_ingest_notes("profile", &ingest);
    println!(
        "{}: {} tables, {} columns, {} cells",
        dir.display(),
        lake.n_tables(),
        lake.n_columns(),
        lake.n_cells()
    );
    for table in &lake.tables {
        println!("\n{} ({} rows):", table.name, table.n_rows());
        for profile in matelda::table::profile_table(table) {
            let extra = match &profile.numeric {
                Some(s) => format!("range [{:.4}, {:.4}] mean {:.4}", s.min, s.max, s.mean),
                None => format!(
                    "top {:?}",
                    profile.top_values.iter().map(|(v, _)| v.as_str()).take(3).collect::<Vec<_>>()
                ),
            };
            println!(
                "  {:<24} {:?} distinct {} complete {:.0}% {}",
                profile.name,
                profile.data_type,
                profile.n_distinct,
                100.0 * profile.completeness(),
                extra
            );
        }
        let fds = mine_approximate(table, 0.05);
        if !fds.is_empty() {
            let named: Vec<String> = fds
                .iter()
                .take(8)
                .map(|fd| format!("{}→{}", table.columns[fd.lhs].name, table.columns[fd.rhs].name))
                .collect();
            println!(
                "  FDs (≤5% error): {}{}",
                named.join(", "),
                if fds.len() > 8 { ", …" } else { "" }
            );
        }
    }
    Ok(())
}
