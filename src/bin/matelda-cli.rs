//! `matelda-cli` — run multi-table error detection from the command line.
//!
//! ```text
//! matelda-cli generate <dir> [--lake quintet|rein|dgov-ntr|wdc|gittables] [--seed N] [--tables N]
//!     Write a synthetic benchmark lake: <dir>/dirty/*.csv + <dir>/clean/*.csv
//!
//! matelda-cli generate <dir> --scale quick|full|large-ci|large [--seed N]
//!     Write a scale-tier lake (up to hundreds of tables, ≥10⁷ cells)
//!     straight to <dir>/*.csv, one table resident at a time — the lake
//!     never has to fit in memory. Dirty only; ground truth is reported
//!     as a summary, not as clean files.
//!
//! matelda-cli detect <dirty-dir> --clean <clean-dir> [--budget-cells N] [--variant <v>]
//!                    [--threads N] [--mem-budget-bytes N] [--report] [--repair]
//!                    [--read strict|repair|skip] [--on-error fail|skip]
//!                    [--max-quarantined N]
//!                    [--checkpoint-dir <dir>] [--resume] [--stage-timeout-ms N]
//!                    [--trace <dir>] [--metrics] [--failure-report <dir>]
//!     Load the dirty lake, answer Matelda's label requests from the clean
//!     lake (the oracle protocol of the paper's experiments), print the
//!     detection report and, because ground truth is available, P/R/F1.
//!     Variants: standard (default), edf, rs, santos, sf, tpdf, tucf.
//!     --threads N sizes the run's persistent work-stealing pool
//!     (default: available parallelism; 1 = fully inline, no pool
//!     threads); output is bit-identical at any thread count.
//!     --mem-budget-bytes N caps dense O(n²) allocations (the HDBSCAN
//!     mutual-reachability matrix): an over-budget stage degrades per
//!     --on-error instead of OOM-aborting the process.
//!     --report prints the per-stage RunReport as JSON on stdout,
//!     including the structured fault log of a degraded run.
//!     --read chooses the ingestion mode: strict fails on the first
//!     malformed CSV (default), repair salvages ragged rows / bad UTF-8,
//!     skip quarantines unparseable files.
//!     --on-error skip quarantines faulted tables/folds/columns and
//!     completes the run instead of aborting (default: fail).
//!     --max-quarantined N exits non-zero when a degraded run quarantines
//!     more than N tables.
//!     --checkpoint-dir <dir> commits an atomic snapshot of every
//!     completed stage; --resume validates the manifest there and skips
//!     stages with intact snapshots (bit-identical to an uninterrupted
//!     run); --stage-timeout-ms N arms a per-stage watchdog deadline.
//!     --trace <dir> writes trace.json (chrome://tracing), events.jsonl
//!     and metrics.json into <dir> — even when the run fails, so a
//!     degraded or aborted run leaves its diagnostics behind; exit codes
//!     are unchanged. --metrics prints the metrics registry as JSON.
//!     Tracing never changes results: output is bit-identical with and
//!     without it, at any thread count.
//!     --failure-report <dir> writes a per-run failure analysis
//!     (failure_report.md + failure_report.json) into <dir>: exemplar
//!     misclassified cells with their values, ground-truth error types
//!     (inferred from the dirty/clean diff), fired detector features,
//!     quality folds and propagated labels. Incompatible with
//!     --checkpoint-dir/--resume (the explained run keeps its artifacts
//!     in memory, not in checkpoints).
//!
//! matelda-cli profile <dir> [--read strict|repair|skip]
//!     Table/column statistics and approximate FDs of a lake directory.
//! ```
//!
//! Exit codes are part of the contract (see [`CliError`] and `--help`):
//! 0 success, 1 runtime failure, 2 bad arguments, 3 ingest failure,
//! 4 quarantine ceiling exceeded, 5 checkpoint rejected.

use matelda::core::{
    analyze_failures, CkptError, DomainFolding, Durability, FaultPolicy, Matelda, MateldaConfig,
    Obs, Oracle, RunArtifacts, TrainingStrategy,
};
use matelda::fd::mine_approximate;
use matelda::lakegen::{DGovLake, GitTablesLake, QuintetLake, ReinLake, WdcLake};
use matelda::table::{diff_lakes, Confusion, IngestReport, Lake, ReadOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

/// A failure carrying the process exit code scripts rely on. The mapping
/// is documented in `--help` and asserted by `tests/cli_integration.rs`.
#[derive(Debug)]
enum CliError {
    /// Malformed invocation: unknown subcommand, flag value or number.
    /// Exit 2.
    Usage(String),
    /// The lake could not be loaded (or dirty/clean disagree). Exit 3.
    Ingest(String),
    /// A degraded run quarantined more tables than `--max-quarantined`
    /// allows. Exit 4.
    Quarantine(String),
    /// A checkpoint was corrupt or written under different inputs —
    /// rejected, never silently reused. Exit 5.
    Checkpoint(CkptError),
    /// Any other runtime failure. Exit 1.
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Runtime(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Ingest(_) => 3,
            CliError::Quarantine(_) => 4,
            CliError::Checkpoint(_) => 5,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Ingest(m)
            | CliError::Quarantine(m)
            | CliError::Runtime(m) => f.write_str(m),
            CliError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl From<CkptError> for CliError {
    fn from(e: CkptError) -> Self {
        CliError::Checkpoint(e)
    }
}

const HELP: &str = "\
matelda-cli — multi-table error detection (MaTElDa reproduction)

usage:
  matelda-cli generate <dir> [--lake quintet|rein|dgov-ntr|dgov-nt|wdc|gittables]
                             [--seed N] [--tables N]
  matelda-cli generate <dir> --scale quick|full|large-ci|large [--seed N]
  matelda-cli detect <dirty-dir> --clean <clean-dir> [--budget-cells N]
                     [--variant standard|edf|rs|santos|sf|tpdf|tucf]
                     [--threads N] [--mem-budget-bytes N] [--report] [--repair]
                     [--read strict|repair|skip] [--on-error fail|skip]
                     [--max-quarantined N]
                     [--checkpoint-dir <dir>] [--resume] [--stage-timeout-ms N]
                     [--trace <dir>] [--metrics] [--failure-report <dir>]
  matelda-cli profile <dir> [--read strict|repair|skip]

durability flags (detect):
  --checkpoint-dir <dir>  commit a snapshot of every completed stage into
                          <dir> (atomic tmp+fsync+rename), plus a manifest
                          binding the run's config, lake fingerprint, seed
                          and label budget
  --resume                validate the manifest in --checkpoint-dir and
                          skip every stage with an intact snapshot; the
                          resumed output is bit-identical to an
                          uninterrupted run, at any --threads value
  --stage-timeout-ms N    per-stage watchdog deadline: items past it become
                          per-item faults (degrade under --on-error skip,
                          abort under fail; committed checkpoints survive)

observability flags (detect):
  --trace <dir>           write trace.json (chrome://tracing span tree),
                          events.jsonl (run event log) and metrics.json
                          (counters/gauges/histograms) into <dir>; written
                          best-effort even when the run fails, without
                          changing the exit code. Tracing never changes
                          results: bit-identical output at any --threads.
  --metrics               print the metrics registry as JSON on stdout

failure analysis (detect):
  --failure-report <dir>  write failure_report.md + failure_report.json:
                          exemplar misclassified cells (false negatives
                          and false positives) with value, column, table,
                          inferred ground-truth error type, the detector
                          features that fired, the cell's quality fold,
                          its labeled anchor and the propagated label.
                          Incompatible with --checkpoint-dir/--resume.

exit codes:
  0  success
  1  runtime failure
  2  bad arguments (unknown subcommand, flag or value)
  3  lake ingestion failed
  4  degraded run quarantined more tables than --max-quarantined
  5  checkpoint rejected: corrupt snapshot or manifest mismatch
     (a stale or foreign checkpoint is never silently reused)
";

fn main() -> ExitCode {
    // Chaos-test hook: MATELDA_FAULTPOINTS arms deterministic stage
    // faults in this process (no-op when unset).
    matelda::exec::faultpoint::arm_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        other => Err(CliError::Usage(format!(
            "usage: matelda-cli <generate|detect|profile> ... (--help for details){}",
            other.map_or(String::new(), |o| format!("; got {o:?}"))
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

type CliResult = Result<(), CliError>;

/// Splits positional args from `--key value` flags. A flag followed by
/// another `--flag` (or by nothing) is boolean and maps to `""`, so
/// `--resume --report` parses as two flags, not one flag with a value.
fn parse_flags(args: &[String]) -> (Vec<&str>, HashMap<&str, &str>) {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key, args[i + 1].as_str());
                i += 2;
            } else {
                flags.insert(key, "");
                i += 1;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    (positional, flags)
}

/// Rejects any flag a subcommand does not know (exit 2): a typo like
/// `--thread 4` must fail loudly, not silently run with the default.
fn check_flags(flags: &HashMap<&str, &str>, known: &[&str]) -> Result<(), CliError> {
    let mut unknown: Vec<&str> = flags.keys().filter(|k| !known.contains(*k)).copied().collect();
    unknown.sort_unstable();
    match unknown.first() {
        None => Ok(()),
        Some(flag) => Err(CliError::Usage(format!(
            "unknown flag --{flag} (known: {})",
            known.iter().map(|k| format!("--{k}")).collect::<Vec<_>>().join(", ")
        ))),
    }
}

/// Parses an optional `--key value` flag, mapping a parse failure to a
/// [`CliError::Usage`] that names the flag.
fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
) -> Result<Option<T>, CliError>
where
    T::Err: std::fmt::Display,
{
    match flags.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| CliError::Usage(format!("bad value for --{key} {raw:?}: {e}"))),
    }
}

fn cmd_generate(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    check_flags(&flags, &["lake", "seed", "tables", "scale"])?;
    let dir = PathBuf::from(
        pos.first().ok_or_else(|| CliError::Usage("generate: missing <dir>".into()))?,
    );
    let seed: u64 = parse_flag(&flags, "seed")?.unwrap_or(1);
    let kind = flags.get("lake").copied().unwrap_or("quintet");
    let tables: Option<usize> = parse_flag(&flags, "tables")?;

    // The scale tiers stream straight to disk — a different code path
    // from the in-memory generators, without a clean-lake pair.
    if let Some(tier_name) = flags.get("scale").copied() {
        if flags.contains_key("lake") || flags.contains_key("tables") {
            return Err(CliError::Usage(
                "--scale picks its own lake shape; it is incompatible with --lake/--tables".into(),
            ));
        }
        let tier = matelda::lakegen::ScaleTier::parse(tier_name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown --scale tier {tier_name:?} (quick|full|large-ci|large)"
            ))
        })?;
        let on_disk = matelda::lakegen::ScaleLake::new(tier)
            .generate_to_disk(seed, &dir)
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", dir.display())))?;
        println!(
            "wrote {} tables ({} cells, {:.1}% erroneous, {} CSV bytes) at tier `{}` to {}/",
            on_disk.n_tables,
            on_disk.n_cells,
            100.0 * on_disk.errors.rate(),
            on_disk.bytes_written,
            tier.name(),
            dir.display()
        );
        return Ok(());
    }

    let lake = match kind {
        "quintet" => QuintetLake::default().generate(seed),
        "rein" => ReinLake::default().generate(seed),
        "dgov-ntr" => DGovLake::ntr().with_n_tables(tables.unwrap_or(24)).generate(seed),
        "dgov-nt" => DGovLake::nt().with_n_tables(tables.unwrap_or(24)).generate(seed),
        "wdc" => WdcLake { n_tables: tables.unwrap_or(20), ..WdcLake::default() }.generate(seed),
        "gittables" => GitTablesLake::default().with_n_tables(tables.unwrap_or(50)).generate(seed),
        other => return Err(CliError::Usage(format!("unknown lake kind {other:?}"))),
    };

    for (sub, side) in [("dirty", &lake.dirty), ("clean", &lake.clean)] {
        matelda::table::write_lake_to_dir(side, &dir.join(sub))
            .map_err(|e| CliError::Runtime(format!("writing {}: {e}", dir.join(sub).display())))?;
    }
    println!(
        "wrote {} tables ({} cells, {:.1}% erroneous) to {}/{{dirty,clean}}/",
        lake.dirty.n_tables(),
        lake.dirty.n_cells(),
        100.0 * lake.error_rate(),
        dir.display()
    );
    Ok(())
}

/// The `--read` flag: how malformed CSV files are treated on ingest.
fn read_options(flags: &HashMap<&str, &str>) -> Result<ReadOptions, CliError> {
    match flags.get("read").copied().unwrap_or("strict") {
        "strict" => Ok(ReadOptions::strict()),
        "repair" => Ok(ReadOptions::repair()),
        "skip" => Ok(ReadOptions::skip()),
        other => {
            Err(CliError::Usage(format!("unknown --read mode {other:?} (strict|repair|skip)")))
        }
    }
}

/// Loads every CSV of a directory into a lake, sorted by file name, under
/// the given ingestion options. Failures exit with the ingest code (3).
fn load_lake(dir: &Path, options: &ReadOptions) -> Result<(Lake, IngestReport), CliError> {
    matelda::table::read_lake_from_dir_with(dir, options)
        .map_err(|e| CliError::Ingest(format!("ingest {}: {e}", dir.display())))
}

/// Prints what tolerant ingestion had to do, if anything.
fn print_ingest_notes(label: &str, report: &IngestReport) {
    for f in report.repaired() {
        println!("note: {label} {} loaded after repairs", f.path.display());
    }
    for f in report.skipped() {
        println!("note: {label} {} skipped (unparseable)", f.path.display());
    }
}

fn cmd_detect(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    check_flags(
        &flags,
        &[
            "clean",
            "read",
            "on-error",
            "max-quarantined",
            "checkpoint-dir",
            "resume",
            "stage-timeout-ms",
            "budget-cells",
            "threads",
            "mem-budget-bytes",
            "variant",
            "report",
            "repair",
            "trace",
            "metrics",
            "failure-report",
        ],
    )?;
    let dirty_dir = PathBuf::from(
        pos.first().ok_or_else(|| CliError::Usage("detect: missing <dirty-dir>".into()))?,
    );
    let clean_dir =
        PathBuf::from(flags.get("clean").filter(|d| !d.is_empty()).ok_or_else(|| {
            CliError::Usage("detect: --clean <dir> is required (labels + evaluation)".into())
        })?);
    let read = read_options(&flags)?;
    let on_error = match flags.get("on-error").copied().unwrap_or("fail") {
        "fail" => FaultPolicy::Fail,
        "skip" => FaultPolicy::Skip,
        other => {
            return Err(CliError::Usage(format!("unknown --on-error policy {other:?} (fail|skip)")))
        }
    };
    let max_quarantined: usize = parse_flag(&flags, "max-quarantined")?.unwrap_or(usize::MAX);
    let checkpoint_dir = match flags.get("checkpoint-dir").copied() {
        Some("") => {
            return Err(CliError::Usage("--checkpoint-dir requires a directory path".into()))
        }
        Some(d) => Some(PathBuf::from(d)),
        None => None,
    };
    let resume = flags.contains_key("resume");
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage("--resume requires --checkpoint-dir <dir>".into()));
    }
    let stage_timeout = parse_flag::<u64>(&flags, "stage-timeout-ms")?.map(Duration::from_millis);
    let trace_dir = match flags.get("trace").copied() {
        Some("") => return Err(CliError::Usage("--trace requires a directory path".into())),
        Some(d) => Some(PathBuf::from(d)),
        None => None,
    };
    let want_metrics = flags.contains_key("metrics");
    let failure_report_dir = match flags.get("failure-report").copied() {
        Some("") => {
            return Err(CliError::Usage("--failure-report requires a directory path".into()))
        }
        Some(d) => Some(PathBuf::from(d)),
        None => None,
    };
    if failure_report_dir.is_some() && (checkpoint_dir.is_some() || resume) {
        return Err(CliError::Usage(
            "--failure-report is incompatible with --checkpoint-dir/--resume: the explained \
             run keeps its artifacts in memory, not in checkpoints"
                .into(),
        ));
    }

    let (dirty, dirty_ingest) = load_lake(&dirty_dir, &read)?;
    let (clean, _clean_ingest) = load_lake(&clean_dir, &read)?;
    print_ingest_notes("dirty", &dirty_ingest);
    if dirty.n_tables() != clean.n_tables() {
        return Err(CliError::Ingest("dirty and clean lakes have different table counts".into()));
    }
    let budget: usize = parse_flag(&flags, "budget-cells")?.unwrap_or(2 * dirty.n_columns());

    // threads = 0 means "available parallelism" (the executor's default).
    let threads: usize = parse_flag(&flags, "threads")?.unwrap_or(0);
    let mem_budget_bytes: Option<u64> = parse_flag(&flags, "mem-budget-bytes")?;
    let mut config =
        MateldaConfig { threads, on_error, stage_timeout, mem_budget_bytes, ..Default::default() };
    match flags.get("variant").copied().unwrap_or("standard") {
        "standard" => {}
        "edf" => config.domain_folding = DomainFolding::ExtremeDomainFolding,
        "rs" => config.domain_folding = DomainFolding::RowSampling(0.1),
        "santos" => config.domain_folding = DomainFolding::SantosLike,
        "sf" => config.syntactic_refinement = true,
        "tpdf" => config.training = TrainingStrategy::PerDomainFold,
        "tucf" => config.training = TrainingStrategy::UnlabeledCellFolds,
        other => return Err(CliError::Usage(format!("unknown variant {other:?}"))),
    }

    let truth = diff_lakes(&dirty, &clean);
    let mut oracle = Oracle::new(&truth);
    let durability = Durability { checkpoint_dir, resume, ..Default::default() };
    let start = std::time::Instant::now();
    // Under `--on-error fail` the engine aborts by panicking at the first
    // fault (incl. a blown --stage-timeout-ms deadline). That is the
    // documented runtime-failure class: map it to exit 1, not a raw
    // panic trace with exit 101.
    let obs = if trace_dir.is_some() || want_metrics { Obs::enabled() } else { Obs::disabled() };
    let pipeline = Matelda::new(config).with_obs(obs.clone());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<(matelda::core::DetectionResult, Option<RunArtifacts>), CkptError> {
            if failure_report_dir.is_some() {
                // The explained run keeps the stage artifacts for the
                // failure report; it is bit-identical to detect_durable
                // without a checkpoint store (guarded above).
                let (result, artifacts) = pipeline.detect_explained(&dirty, &mut oracle, budget);
                Ok((result, Some(artifacts)))
            } else {
                pipeline
                    .detect_durable(&dirty, &mut oracle, budget, &durability)
                    .map(|result| (result, None))
            }
        },
    ))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("stage fault");
        CliError::Runtime(format!("run aborted (--on-error fail): {msg}"))
    });
    // Export the trace before propagating any failure: a degraded or
    // aborted run leaves its diagnostics behind (spans up to the fault
    // are closed by unwinding). Best-effort — an unwritable trace dir
    // warns but never masks the run's own exit code.
    if let Some(dir) = &trace_dir {
        match obs.write_dir(dir) {
            Ok(()) => println!("trace written to {}", dir.display()),
            Err(e) => eprintln!("warning: writing trace to {}: {e}", dir.display()),
        }
    }
    let (result, artifacts) = outcome??;
    let elapsed = start.elapsed();

    println!(
        "detected in {:.2}s — {} labels over {} domain folds / {} quality folds ({} threads)",
        elapsed.as_secs_f64(),
        result.labels_used,
        result.n_domain_folds,
        result.n_quality_folds,
        result.report.threads
    );
    println!("digest: {:016x}", result.digest());
    if flags.contains_key("report") {
        println!("{}", result.report.to_json());
    }
    if want_metrics {
        println!("{}", obs.metrics_json());
    }
    let quarantine = &result.quarantine;
    if !quarantine.is_empty() {
        println!(
            "degraded run: {} table(s) quarantined, {} column fallback(s), {} fold fallback(s)",
            quarantine.tables.len(),
            quarantine.columns.len(),
            quarantine.fold_fallbacks.len()
        );
    }
    println!("\nper-table report:");
    for (t, table) in dirty.tables.iter().enumerate() {
        let hits = result.predicted.iter_set().filter(|id| id.table == t).count();
        let mark = if quarantine.table_quarantined(t) { "  [quarantined]" } else { "" };
        println!(
            "  {:<28} {:>5} suspicious / {:>6} cells{mark}",
            table.name,
            hits,
            table.n_cells()
        );
    }
    // Quarantined tables are unscored, not clean — evaluate only over
    // the tables the run actually scored.
    let (predicted, truth_scored) = (
        result.predicted.without_tables(&quarantine.tables),
        truth.without_tables(&quarantine.tables),
    );
    let conf = Confusion::from_masks(&predicted, &truth_scored);
    let scope = if quarantine.tables.is_empty() { "" } else { " (scored tables only)" };
    println!(
        "\nevaluation vs clean{scope}: precision {:.1}%  recall {:.1}%  f1 {:.1}%",
        100.0 * conf.precision(),
        100.0 * conf.recall(),
        100.0 * conf.f1()
    );
    if let Some(dir) = &failure_report_dir {
        let artifacts = artifacts.as_ref().expect("explained run kept its artifacts");
        // Ground-truth error types are not on disk — recover them from
        // the (dirty, clean) diff via the mutation signatures.
        let typed = matelda::errorgen::infer_typed_masks(&dirty, &clean);
        let report = analyze_failures(&dirty, &result.predicted, &truth, &typed, artifacts, 10);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("creating {}: {e}", dir.display())))?;
        for (name, contents) in [
            ("failure_report.md", report.render_markdown()),
            ("failure_report.json", report.render_json()),
        ] {
            std::fs::write(dir.join(name), contents)
                .map_err(|e| CliError::Runtime(format!("writing {name}: {e}")))?;
        }
        println!(
            "failure report ({} false negative(s), {} false positive(s), {} exemplar(s)) \
             written to {}",
            report.n_false_negatives,
            report.n_false_positives,
            report.exemplars.len(),
            dir.display()
        );
    }
    if quarantine.tables.len() > max_quarantined {
        return Err(CliError::Quarantine(format!(
            "{} tables quarantined, more than --max-quarantined {max_quarantined}",
            quarantine.tables.len()
        )));
    }

    if flags.contains_key("repair") {
        let spell = matelda::text::SpellChecker::english();
        let repairs = matelda::core::suggest_repairs(&dirty, &result.predicted, &spell);
        let restored = repairs.iter().filter(|r| r.proposed == clean.cell(r.cell)).count();
        println!(
            "\nrepair suggestions: {} proposed, {} ({:.0}%) restore the clean value exactly",
            repairs.len(),
            restored,
            100.0 * restored as f64 / repairs.len().max(1) as f64
        );
        for r in repairs.iter().take(10) {
            println!(
                "  [{:?} conf {:.2}] {}[{}][{}]: {:?} -> {:?}",
                r.strategy,
                r.confidence,
                dirty[r.cell.table].name,
                r.cell.row,
                dirty[r.cell.table].columns[r.cell.col].name,
                r.current,
                r.proposed
            );
        }
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    let (pos, flags) = parse_flags(args);
    check_flags(&flags, &["read"])?;
    let dir =
        PathBuf::from(pos.first().ok_or_else(|| CliError::Usage("profile: missing <dir>".into()))?);
    let (lake, ingest) = load_lake(&dir, &read_options(&flags)?)?;
    print_ingest_notes("profile", &ingest);
    println!(
        "{}: {} tables, {} columns, {} cells",
        dir.display(),
        lake.n_tables(),
        lake.n_columns(),
        lake.n_cells()
    );
    for table in &lake.tables {
        println!("\n{} ({} rows):", table.name, table.n_rows());
        for profile in matelda::table::profile_table(table) {
            let extra = match &profile.numeric {
                Some(s) => format!("range [{:.4}, {:.4}] mean {:.4}", s.min, s.max, s.mean),
                None => format!(
                    "top {:?}",
                    profile.top_values.iter().map(|(v, _)| v.as_str()).take(3).collect::<Vec<_>>()
                ),
            };
            println!(
                "  {:<24} {:?} distinct {} complete {:.0}% {}",
                profile.name,
                profile.data_type,
                profile.n_distinct,
                100.0 * profile.completeness(),
                extra
            );
        }
        let fds = mine_approximate(table, 0.05);
        if !fds.is_empty() {
            let named: Vec<String> = fds
                .iter()
                .take(8)
                .map(|fd| format!("{}→{}", table.columns[fd.lhs].name, table.columns[fd.rhs].name))
                .collect();
            println!(
                "  FDs (≤5% error): {}{}",
                named.join(", "),
                if fds.len() > 8 { ", …" } else { "" }
            );
        }
    }
    Ok(())
}
