//! # matelda
//!
//! Umbrella crate for **MaTElDa-rs**, a from-scratch Rust reproduction of
//! *"MaTElDa: Multi-Table Error Detection"* (Ahmadi, Kuhlmann, Speckmann,
//! Abedjan — EDBT 2025).
//!
//! This crate simply re-exports the workspace members under stable module
//! names so downstream users can depend on a single crate:
//!
//! ```
//! use matelda::core::{Matelda, MateldaConfig};
//! use matelda::lakegen::quintet;
//!
//! let gen = quintet::QuintetLake::default().generate(7);
//! let result = Matelda::new(MateldaConfig::default())
//!     .detect(&gen.dirty, &mut matelda::core::Oracle::new(&gen.errors), 40);
//! assert!(result.predicted.count() > 0);
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! the paper-vs-measured experiment log.

pub use matelda_baselines as baselines;
pub use matelda_ckpt as ckpt;
pub use matelda_cluster as cluster;
pub use matelda_core as core;
pub use matelda_detect as detect;
pub use matelda_embed as embed;
pub use matelda_errorgen as errorgen;
pub use matelda_exec as exec;
pub use matelda_fd as fd;
pub use matelda_lakegen as lakegen;
pub use matelda_ml as ml;
pub use matelda_obs as obs;
pub use matelda_serve as serve;
pub use matelda_table as table;
pub use matelda_text as text;
