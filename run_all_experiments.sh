#!/bin/sh
# Runs the full experiment suite sequentially, teeing per-experiment logs
# into results/logs/. MATELDA_SCALE defaults to full.
#
# Every binary appends its accuracy rows to the shared EVAL_matrix.json
# (override the path with MATELDA_EVAL_OUT); rows are keyed by
# (experiment, scale), so runs at different scales accumulate side by
# side instead of overwriting each other — a large-tier pass never
# collides with the quick-scale baseline cells. A failing experiment no
# longer vanishes silently — the script reports each exit status and
# exits non-zero listing every experiment that failed.
cd "$(dirname "$0")" || exit 1
export MATELDA_SCALE="${MATELDA_SCALE:-full}"
BIN=target/release
mkdir -p results/logs
case "$MATELDA_SCALE" in
  large-ci|large)
    # The large tiers exercise the out-of-core scale path, not the
    # paper sweeps: scale_bench generates the tier's lake on disk,
    # streams it through detection and records its accuracy row under
    # this scale key.
    exps="scale_bench"
    ;;
  *)
    exps="table1 table3 table2 fig4 fig5 fig6 fig7 fig8 ablation_deviations ablation_classifier ablation_labeling fig3 fig9"
    ;;
esac
failed=""
for exp in $exps; do
  echo "=== running $exp (scale $MATELDA_SCALE) at $(date +%H:%M:%S) ==="
  $BIN/$exp > results/logs/$exp.txt 2>&1
  status=$?
  echo "=== $exp done (exit $status) at $(date +%H:%M:%S) ==="
  if [ "$status" -ne 0 ]; then
    failed="$failed $exp"
  fi
done
if [ -n "$failed" ]; then
  echo "FAILED:$failed" >&2
  exit 1
fi
echo ALL-DONE
