#!/bin/sh
# Runs the full experiment suite sequentially, teeing per-experiment logs
# into results/logs/. MATELDA_SCALE defaults to full.
cd /root/repo
export MATELDA_SCALE="${MATELDA_SCALE:-full}"
BIN=target/release
for exp in table1 table3 table2 fig4 fig5 fig6 fig7 fig8 ablation_deviations ablation_classifier ablation_labeling fig3 fig9; do
  echo "=== running $exp (scale $MATELDA_SCALE) at $(date +%H:%M:%S) ==="
  $BIN/$exp > results/logs/$exp.txt 2>&1
  echo "=== $exp done (exit $?) at $(date +%H:%M:%S) ==="
done
echo ALL-DONE
