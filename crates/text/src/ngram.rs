//! Stable string hashing and n-gram utilities.
//!
//! `std::collections::hash_map::DefaultHasher` is not guaranteed stable
//! across releases, and embeddings must be reproducible, so we ship FNV-1a
//! here and use it everywhere a hashed feature index is needed.

/// 64-bit FNV-1a hash of a byte string — stable across platforms and Rust
/// versions, which keeps embeddings and experiments reproducible.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Hashes a string token into a bucket index in `[0, dim)` plus a ±1 sign,
/// the classic signed feature-hashing trick (Weinberger et al.): the sign
/// bit makes colliding tokens cancel in expectation instead of piling up.
pub fn signed_bucket(token: &str, dim: usize) -> (usize, f32) {
    debug_assert!(dim > 0);
    let h = fnv1a64(token.as_bytes());
    let bucket = (h % dim as u64) as usize;
    let sign = if (h >> 63) & 1 == 0 { 1.0 } else { -1.0 };
    (bucket, sign)
}

/// Word n-grams (n = 1..=max_n) over a token slice, joined with `_`.
pub fn word_ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        if tokens.len() < n {
            break;
        }
        for w in tokens.windows(n) {
            out.push(w.join("_"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_ne!(fnv1a64(b""), fnv1a64(b"a"));
    }

    #[test]
    fn signed_bucket_in_range() {
        for t in ["a", "hello", "FRANCE", "1994", ""] {
            let (b, s) = signed_bucket(t, 64);
            assert!(b < 64);
            assert!(s == 1.0 || s == -1.0);
        }
    }

    #[test]
    fn word_ngrams_enumerate() {
        let toks: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let g = word_ngrams(&toks, 2);
        assert_eq!(g, vec!["a", "b", "c", "a_b", "b_c"]);
        assert_eq!(word_ngrams(&toks[..0], 2), Vec::<String>::new());
        assert_eq!(word_ngrams(&toks[..1], 3), vec!["a"]);
    }
}
