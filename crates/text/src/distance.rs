//! String distances: Levenshtein, Damerau-Levenshtein (optimal string
//! alignment) and token Jaccard similarity.

/// Classic Levenshtein edit distance (insert / delete / substitute), O(n·m)
/// with a two-row rolling buffer.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Damerau-Levenshtein distance in the *optimal string alignment* variant:
/// like Levenshtein plus adjacent transposition. This is what spell
/// checkers (including Aspell's typo model) use to rank suggestions, since
/// swapped letters are the most common typing error.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut row2: Vec<usize> = vec![0; m + 1];
    let mut row1: Vec<usize> = (0..=m).collect();
    let mut row0: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        row0[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (row1[j] + 1).min(row0[j - 1] + 1).min(row1[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(row2[j - 2] + 1);
            }
            row0[j] = d;
        }
        std::mem::swap(&mut row2, &mut row1);
        std::mem::swap(&mut row1, &mut row0);
    }
    row1[m]
}

/// Jaccard similarity of two token sets: `|A ∩ B| / |A ∪ B|`, with the
/// convention that two empty sets are perfectly similar (1.0).
pub fn jaccard<T: std::hash::Hash + Eq>(a: &[T], b: &[T]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&T> = a.iter().collect();
    let sb: HashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn damerau_counts_transpositions_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("drama", "derama"), 1);
        assert_eq!(damerau_levenshtein("abcdef", "abcdef"), 0);
        assert_eq!(damerau_levenshtein("", "xy"), 2);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        let pairs = [("monday", "mnoday"), ("france", "franke"), ("a", "b"), ("xy", "yx")];
        for (a, b) in pairs {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard::<u8>(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard(&[1, 2, 3], &[2, 3, 4]), 0.5);
        assert_eq!(jaccard(&[1, 1, 2], &[2, 1]), 1.0, "multisets collapse to sets");
    }
}
