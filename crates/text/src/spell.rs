//! Dictionary-based spell checking — the Aspell substitute (paper Eq. 4).
//!
//! The paper's typo detector marks a cell erroneous iff any of its words is
//! missing from the dictionary:
//!
//! ```text
//! d_TD(t[i,j]) = 0  iff ∀w ∈ t[i,j]. ∃w' ∈ Dict. w = w'
//!               1  otherwise
//! ```
//!
//! We embed a word list covering a common-English core plus the domain
//! vocabularies of the synthetic lake generators (see DESIGN.md,
//! substitution table). Proper nouns that are *not* in the list (player
//! names, movie titles) are flagged just like Aspell flags unknown proper
//! nouns — which is exactly why the paper reports low typo recall on name
//! heavy columns (Table 3: TYP recall 14%).

use crate::distance::damerau_levenshtein;
use crate::token::words;
use std::collections::HashSet;

/// The embedded English + domain word list, one lowercase word per line.
pub const EMBEDDED_WORDS: &str = include_str!("words_en.txt");

/// A dictionary-based spell checker with Damerau-Levenshtein suggestions.
///
/// ```
/// use matelda_text::SpellChecker;
/// let spell = SpellChecker::english();
/// assert!(!spell.flags_cell("crime drama"));
/// assert!(spell.flags_cell("crime derama")); // the paper's typo example
/// assert_eq!(spell.suggest("derama", 1, 1), vec!["drama".to_string()]);
/// ```
#[derive(Debug, Clone)]
pub struct SpellChecker {
    dict: HashSet<String>,
}

impl Default for SpellChecker {
    fn default() -> Self {
        Self::english()
    }
}

impl SpellChecker {
    /// Builds a checker over the embedded English + domain dictionary.
    pub fn english() -> Self {
        let dict = EMBEDDED_WORDS
            .lines()
            .map(|w| w.trim().to_string())
            .filter(|w| !w.is_empty())
            .collect();
        Self { dict }
    }

    /// Builds a checker over a custom word list (words are lowercased).
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self { dict: words.into_iter().map(|w| w.as_ref().to_lowercase()).collect() }
    }

    /// Adds extra vocabulary (e.g. a corpus-specific glossary).
    pub fn extend<I, S>(&mut self, words: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.dict.extend(words.into_iter().map(|w| w.as_ref().to_lowercase()));
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// `true` if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Checks a single word (case-insensitive).
    pub fn knows(&self, word: &str) -> bool {
        self.dict.contains(&word.to_lowercase())
    }

    /// The paper's cell-level typo test `d_TD`: `true` (= flagged) iff the
    /// cell contains at least one alphabetic word not in the dictionary.
    /// Cells with no alphabetic words (numbers, dates, empty) are never
    /// flagged — there is nothing to spell-check. Single-letter tokens are
    /// ignored, matching Aspell's treatment of initials and unit letters.
    pub fn flags_cell(&self, cell: &str) -> bool {
        words(cell).iter().any(|w| w.chars().count() > 1 && !self.dict.contains(w))
    }

    /// Suggests up to `limit` dictionary words within Damerau-Levenshtein
    /// distance `max_dist` of `word`, nearest first (ties broken
    /// alphabetically for determinism). Linear scan — the dictionary is
    /// small and suggestion is not on the hot path.
    pub fn suggest(&self, word: &str, max_dist: usize, limit: usize) -> Vec<String> {
        let lowered = word.to_lowercase();
        let mut cands: Vec<(usize, &String)> = self
            .dict
            .iter()
            .filter(|w| w.len().abs_diff(lowered.len()) <= max_dist)
            .map(|w| (damerau_levenshtein(&lowered, w), w))
            .filter(|(d, _)| *d <= max_dist)
            .collect();
        cands.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
        cands.into_iter().take(limit).map(|(_, w)| w.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_dictionary_loads() {
        let sc = SpellChecker::english();
        assert!(sc.len() > 1000, "dictionary too small: {}", sc.len());
        assert!(sc.knows("france"));
        assert!(sc.knows("France"), "case-insensitive lookup");
        assert!(sc.knows("drama"));
        assert!(!sc.knows("franke"));
        assert!(!sc.knows("derama"));
    }

    #[test]
    fn cell_flagging_follows_eq4() {
        let sc = SpellChecker::english();
        // All words known -> clean.
        assert!(!sc.flags_cell("crime drama"));
        // One unknown word -> flagged (the paper's "Derama" example).
        assert!(sc.flags_cell("crime derama"));
        // Pure numbers / dates / empty cells have no words to check.
        assert!(!sc.flags_cell("28,341,469"));
        assert!(!sc.flags_cell("1994-07-05"));
        assert!(!sc.flags_cell(""));
    }

    #[test]
    fn suggestions_ranked_by_distance() {
        let sc = SpellChecker::from_words(["france", "franc", "frame", "trance", "xyz"]);
        let s = sc.suggest("franke", 2, 10);
        assert_eq!(s.first().map(String::as_str), Some("france"));
        assert!(!s.contains(&"xyz".to_string()));
    }

    #[test]
    fn extend_adds_vocabulary() {
        let mut sc = SpellChecker::from_words(["alpha"]);
        assert!(!sc.knows("mbappe"));
        sc.extend(["Mbappe"]);
        assert!(sc.knows("mbappe"));
        assert!(!sc.is_empty());
    }

    #[test]
    fn suggest_handles_no_matches() {
        let sc = SpellChecker::from_words(["alpha"]);
        assert!(sc.suggest("qqqqqqqq", 1, 5).is_empty());
    }
}
