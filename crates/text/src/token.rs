//! Tokenization helpers shared by the spell checker, embeddings and
//! detectors.

/// Splits a cell value into lowercase alphabetic words.
///
/// Digits and punctuation act as separators; tokens that contain any digit
/// are dropped (they are data, not words, and should not be spell-checked —
/// Aspell behaves the same way on `42nd`-free numeric tokens).
pub fn words(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && t.chars().all(|c| c.is_alphabetic()))
        .map(|t| t.to_lowercase())
        .collect()
}

/// Lowercased word tokens *including* alphanumeric mixes (`a4`, `3rd`),
/// used by the embedding layer where every token is signal.
pub fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Character trigrams of the lowercased input with `^`/`$` boundary
/// padding. Exposes sub-word shape to the embedding layer so that columns
/// with shared formats (dates, codes) look similar even with disjoint
/// vocabulary.
pub fn char_trigrams(s: &str) -> Vec<String> {
    let lowered = s.to_lowercase();
    let padded: Vec<char> =
        std::iter::once('^').chain(lowered.chars()).chain(std::iter::once('$')).collect();
    if padded.len() < 3 {
        return vec![padded.iter().collect()];
    }
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

/// The multiset of characters of a string, as (char, count) pairs sorted by
/// char — Raha's bag-of-characters typo features are built on this.
pub fn char_bag(s: &str) -> Vec<(char, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for c in s.chars() {
        *counts.entry(c).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_and_lowercase() {
        assert_eq!(words("Chelsea FC"), vec!["chelsea", "fc"]);
        assert_eq!(words("The Dark Knight"), vec!["the", "dark", "knight"]);
        assert_eq!(words("28,341,469"), Vec::<String>::new());
        assert_eq!(words("Feb 9, 1940"), vec!["feb"]);
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn tokens_keep_alphanumerics() {
        assert_eq!(tokens("A4 paper"), vec!["a4", "paper"]);
        assert_eq!(tokens("1994-07-05"), vec!["1994", "07", "05"]);
    }

    #[test]
    fn trigram_padding() {
        assert_eq!(char_trigrams("ab"), vec!["^ab", "ab$"]);
        assert_eq!(char_trigrams(""), vec!["^$"]);
        assert_eq!(char_trigrams("a"), vec!["^a$"]);
        let t = char_trigrams("abc");
        assert_eq!(t, vec!["^ab", "abc", "bc$"]);
    }

    #[test]
    fn char_bag_counts() {
        assert_eq!(char_bag("aba"), vec![('a', 2), ('b', 1)]);
        assert_eq!(char_bag(""), vec![]);
    }
}
