//! # matelda-text
//!
//! Text-processing substrate for MaTElDa: tokenization, string distances,
//! character n-grams and a dictionary-based spell checker.
//!
//! The spell checker is this repo's substitute for **GNU Aspell**, which
//! the paper uses as its typo detector `d_TD` (Eq. 4): a cell is flagged
//! when any of its words is missing from the dictionary. Aspell's role in
//! the pipeline is a pure membership test, so a static embedded word list
//! (common English core + the domain vocabularies the synthetic lake
//! generators draw from) reproduces its behaviour: injected typos fall out
//! of the dictionary exactly as real-world typos fall out of Aspell's.

pub mod distance;
pub mod ngram;
pub mod spell;
pub mod token;

pub use distance::{damerau_levenshtein, jaccard, levenshtein};
pub use spell::SpellChecker;
pub use token::{char_trigrams, words};
