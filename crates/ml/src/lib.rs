//! # matelda-ml
//!
//! The machine-learning substrate for MaTElDa, built from scratch:
//!
//! * [`tree`] — CART regression trees (variance-reduction splits),
//! * [`gbm`] — a binary **Gradient Boosting Classifier** (Friedman 2001)
//!   with logistic loss and Newton leaf values — the per-column error
//!   classifier of the paper (Alg. 1 lines 20–22: "Similar to prior work,
//!   we use the Gradient Boosting Classifier, which has shown robust
//!   performance"),
//! * [`metrics`] — accuracy and log-loss helpers for model-level tests.
//!
//! The classifier intentionally mirrors scikit-learn's
//! `GradientBoostingClassifier` defaults in spirit (shallow trees, shrinkage)
//! while staying dependency-free.

pub mod binned;
pub mod classifier;
pub mod forest;
pub mod gbm;
pub mod metrics;
pub mod tree;

pub use binned::BinnedDataset;
pub use classifier::{ClassifierKind, FittedClassifier};
pub use forest::{RandomForestClassifier, RandomForestConfig};
pub use gbm::{GradientBoostingClassifier, GradientBoostingConfig};
pub use tree::{RegressionTree, TreeConfig};
