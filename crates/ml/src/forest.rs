//! Random forest classification (Breiman 2001): bagged CART trees with
//! per-tree feature subsampling.
//!
//! The Raha paper evaluates several classifier families before settling
//! on gradient boosting; this forest is the natural alternative and backs
//! the classifier ablation in `matelda-bench` (`ablation_classifier`).

use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random forest hyperparameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Depth limit per tree (forests like them deeper than boosting).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features sampled per tree; `None` = ⌈√d⌉.
    pub max_features: Option<usize>,
    /// Bootstrap / feature-sampling seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self { n_trees: 40, max_depth: 8, min_samples_leaf: 1, max_features: None, seed: 0 }
    }
}

/// A fitted random forest (binary classification by vote averaging).
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    /// `(feature indices used, tree fitted on the projected data)`.
    trees: Vec<(Vec<usize>, RegressionTree)>,
    /// Fallback prior when no trees could be fitted.
    prior: f64,
}

impl RandomForestClassifier {
    /// Fits on row-major features and boolean labels.
    pub fn fit(x: &[Vec<f32>], y: &[bool], config: &RandomForestConfig) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n = x.len();
        let pos = y.iter().filter(|b| **b).count();
        let prior = if n == 0 { 0.0 } else { pos as f64 / n as f64 };
        let mut model = Self { trees: Vec::new(), prior };
        if n == 0 || pos == 0 || pos == n {
            return model; // constant predictor
        }
        let d = x[0].len();
        let k =
            config.max_features.unwrap_or_else(|| (d as f64).sqrt().ceil() as usize).clamp(1, d);
        let tree_config =
            TreeConfig { max_depth: config.max_depth, min_samples_leaf: config.min_samples_leaf };
        let mut rng = StdRng::seed_from_u64(config.seed);

        for _ in 0..config.n_trees {
            // Bootstrap rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            // Sample features without replacement.
            let mut features: Vec<usize> = (0..d).collect();
            for i in 0..k {
                let j = rng.random_range(i..d);
                features.swap(i, j);
            }
            features.truncate(k);
            features.sort_unstable();

            let bx: Vec<Vec<f32>> =
                rows.iter().map(|&r| features.iter().map(|&f| x[r][f]).collect()).collect();
            let by: Vec<f64> = rows.iter().map(|&r| f64::from(u8::from(y[r]))).collect();
            // Skip single-class bootstrap samples: the tree would be a
            // constant and only dilute the vote.
            if by.iter().all(|&v| v == by[0]) {
                continue;
            }
            let hess = vec![1.0; bx.len()];
            let tree = RegressionTree::fit(&bx, &by, &hess, &tree_config);
            model.trees.push((features, tree));
        }
        model
    }

    /// Mean leaf vote in `[0, 1]`.
    pub fn predict_proba(&self, sample: &[f32]) -> f64 {
        if self.trees.is_empty() {
            return self.prior;
        }
        let total: f64 = self
            .trees
            .iter()
            .map(|(features, tree)| {
                let projected: Vec<f32> = features.iter().map(|&f| sample[f]).collect();
                tree.predict(&projected).clamp(0.0, 1.0)
            })
            .sum();
        total / self.trees.len() as f64
    }

    /// Hard decision at 0.5.
    pub fn predict(&self, sample: &[f32]) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_separable_data() {
        let x: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i % 3) as f32]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let m = RandomForestClassifier::fit(&x, &y, &RandomForestConfig::default());
        assert!(m.n_trees() > 0);
        assert!(!m.predict(&[2.0, 1.0]));
        assert!(m.predict(&[35.0, 0.0]));
    }

    #[test]
    fn single_class_collapses_to_prior() {
        let x = vec![vec![1.0f32], vec![2.0]];
        let m = RandomForestClassifier::fit(&x, &[false, false], &RandomForestConfig::default());
        assert_eq!(m.n_trees(), 0);
        assert!(!m.predict(&[5.0]));
        let m = RandomForestClassifier::fit(&x, &[true, true], &RandomForestConfig::default());
        assert!(m.predict(&[5.0]));
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f32>> = (0..30).map(|i| vec![(i % 7) as f32, (i % 5) as f32]).collect();
        let y: Vec<bool> = (0..30).map(|i| i % 4 == 0).collect();
        let cfg = RandomForestConfig { seed: 9, ..Default::default() };
        let a = RandomForestClassifier::fit(&x, &y, &cfg);
        let b = RandomForestClassifier::fit(&x, &y, &cfg);
        for s in &x {
            assert_eq!(a.predict_proba(s), b.predict_proba(s));
        }
    }

    #[test]
    fn feature_subsampling_respects_bounds() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32; 9]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let cfg = RandomForestConfig { max_features: Some(2), ..Default::default() };
        let m = RandomForestClassifier::fit(&x, &y, &cfg);
        assert!(m.n_trees() > 0);
        // Still learns: with 9 redundant copies any 2 features suffice.
        assert!(m.predict(&[15.0; 9]));
        assert!(!m.predict(&[3.0; 9]));
    }

    #[test]
    fn empty_input_predicts_negative() {
        let m = RandomForestClassifier::fit(&[], &[], &RandomForestConfig::default());
        assert!(!m.predict(&[0.0]));
    }
}
