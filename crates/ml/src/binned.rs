//! Pre-binned (histogram) feature representation for tree training.
//!
//! Classic histogram GBM (LightGBM-style) quantizes every feature column
//! into at most 256 bins once, so per-node split search scans bin codes
//! instead of re-sorting raw feature vectors. Our detector feature space
//! (33 mostly-binary flags per cell) has very few distinct values per
//! column, so binning is *lossless* here: a bin is simply the rank of the
//! value among the column's sorted distinct values. Bin-code comparison is
//! therefore order-isomorphic to raw-value comparison, which is what lets
//! the binned split search in [`crate::tree::RegressionTree::fit_binned`]
//! reproduce the exact-split reference bit for bit (see DESIGN.md
//! "Performance contract").
//!
//! Columns with more than [`MAX_BINS`] distinct values or any NaN are not
//! representable; [`BinnedDataset::build`] returns `None` and callers fall
//! back to the exact reference path.

/// Maximum number of distinct values a feature may have to be binnable
/// (bin codes are `u8`).
pub const MAX_BINS: usize = 256;

/// A dataset pre-binned for histogram tree training.
///
/// Codes are stored feature-major (SoA): `codes[f * n_samples + i]` is the
/// bin of sample `i` in feature `f`, so per-feature scans during split
/// search are contiguous.
#[derive(Debug, Clone)]
pub struct BinnedDataset {
    n_samples: usize,
    n_features: usize,
    /// Widest per-feature bin count (for sizing histograms).
    max_bins: usize,
    /// Feature-major bin codes, `n_features × n_samples`.
    codes: Vec<u8>,
    /// Per-feature ascending distinct values; `bin_values[f][b]` is the raw
    /// value every sample with code `b` holds in feature `f`.
    bin_values: Vec<Vec<f32>>,
}

impl BinnedDataset {
    /// Bins `x` (row-major samples). Returns `None` when any feature
    /// column is not losslessly binnable: more than [`MAX_BINS`] distinct
    /// values, or a NaN (the exact path's ordering contract rejects NaN
    /// too, by panicking — the fallback preserves that behavior).
    pub fn build(x: &[Vec<f32>]) -> Option<Self> {
        let n_samples = x.len();
        if n_samples == 0 {
            return None;
        }
        let n_features = x[0].len();
        let mut codes = vec![0u8; n_features * n_samples];
        let mut bin_values: Vec<Vec<f32>> = Vec::with_capacity(n_features);
        let mut max_bins = 1usize;
        let mut column: Vec<f32> = Vec::with_capacity(n_samples);
        for f in 0..n_features {
            column.clear();
            for row in x {
                let v = row[f];
                if v.is_nan() {
                    return None;
                }
                column.push(v);
            }
            let mut distinct = column.clone();
            distinct.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
            distinct.dedup();
            if distinct.len() > MAX_BINS {
                return None;
            }
            max_bins = max_bins.max(distinct.len());
            let dst = &mut codes[f * n_samples..(f + 1) * n_samples];
            for (slot, &v) in dst.iter_mut().zip(&column) {
                // First index with distinct[i] >= v, i.e. the rank of `v`.
                let b = distinct.partition_point(|&d| d < v);
                debug_assert!(distinct[b] == v);
                *slot = b as u8;
            }
            bin_values.push(distinct);
        }
        Some(Self { n_samples, n_features, max_bins, codes, bin_values })
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Widest per-feature bin count (histogram row stride).
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Contiguous bin codes of feature `f`, one per sample.
    pub fn codes_of(&self, f: usize) -> &[u8] {
        &self.codes[f * self.n_samples..(f + 1) * self.n_samples]
    }

    /// Number of bins (distinct values) in feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.bin_values[f].len()
    }

    /// The raw feature value represented by bin `b` of feature `f`. Used
    /// as the split threshold: `value <= threshold` ⟺ `code <= b`.
    pub fn threshold(&self, f: usize, b: u8) -> f32 {
        self.bin_values[f][b as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_rank_distinct_values() {
        let x = vec![vec![3.0f32, 0.0], vec![1.0, 1.0], vec![3.0, 0.0], vec![-2.0, 1.0]];
        let d = BinnedDataset::build(&x).expect("binnable");
        assert_eq!(d.n_samples(), 4);
        assert_eq!(d.n_features(), 2);
        // Feature 0 distinct: [-2, 1, 3] -> codes [2, 1, 2, 0].
        assert_eq!(d.codes_of(0), &[2, 1, 2, 0]);
        assert_eq!(d.n_bins(0), 3);
        assert_eq!(d.threshold(0, 1), 1.0);
        // Feature 1 distinct: [0, 1] -> codes [0, 1, 0, 1].
        assert_eq!(d.codes_of(1), &[0, 1, 0, 1]);
        assert_eq!(d.max_bins(), 3);
    }

    #[test]
    fn nan_is_not_binnable() {
        let x = vec![vec![0.0f32], vec![f32::NAN]];
        assert!(BinnedDataset::build(&x).is_none());
    }

    #[test]
    fn too_many_distinct_values_is_not_binnable() {
        let x: Vec<Vec<f32>> = (0..300).map(|i| vec![i as f32]).collect();
        assert!(BinnedDataset::build(&x).is_none());
    }

    #[test]
    fn exactly_256_distinct_values_is_binnable() {
        let x: Vec<Vec<f32>> = (0..256).map(|i| vec![i as f32]).collect();
        let d = BinnedDataset::build(&x).expect("256 distinct fits u8 codes");
        assert_eq!(d.n_bins(0), 256);
        assert_eq!(d.codes_of(0)[255], 255);
    }

    #[test]
    fn empty_input_is_not_binnable() {
        assert!(BinnedDataset::build(&[]).is_none());
    }

    #[test]
    fn infinities_are_binnable() {
        // partial_cmp handles ±inf; only NaN breaks ordering.
        let x = vec![vec![f32::NEG_INFINITY], vec![0.0], vec![f32::INFINITY]];
        let d = BinnedDataset::build(&x).expect("inf is ordered");
        assert_eq!(d.codes_of(0), &[0, 1, 2]);
    }
}
