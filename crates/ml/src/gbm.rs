//! Binary gradient boosting with logistic loss (Friedman 2001).
//!
//! This is the per-column classifier of Matelda's step 5 and of the Raha
//! baseline: given propagated labels over a column's cells (unified feature
//! vectors), predict the error probability of every cell.

use crate::binned::BinnedDataset;
use crate::tree::{RegressionTree, TreeConfig};
use matelda_exec::Executor;

/// Gradient boosting hyperparameters. Defaults mirror the spirit of
/// scikit-learn's `GradientBoostingClassifier` (shrinkage 0.1, shallow
/// trees), which the paper uses with default parameters (§4.1.3).
#[derive(Debug, Clone)]
pub struct GradientBoostingConfig {
    /// Number of boosting stages.
    pub n_trees: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Depth of each stage's tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        Self { n_trees: 50, learning_rate: 0.1, max_depth: 3, min_samples_leaf: 1 }
    }
}

/// A fitted binary gradient boosting classifier.
///
/// ```
/// use matelda_ml::{GradientBoostingClassifier, GradientBoostingConfig};
/// let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
/// let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
/// let model = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
/// assert!(model.predict(&[15.0]));
/// assert!(!model.predict(&[2.0]));
/// ```
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    base_score: f64,
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    used_binned: bool,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl GradientBoostingClassifier {
    /// Fits on `x` (row-major features) and boolean labels (`true` =
    /// positive / erroneous).
    ///
    /// Degenerate inputs are handled the way the pipeline needs them to
    /// be: with a single class (or no samples) the model collapses to a
    /// constant predictor at the empirical rate.
    pub fn fit(x: &[Vec<f32>], y: &[bool], config: &GradientBoostingConfig) -> Self {
        Self::fit_with(x, y, config, &Executor::single())
    }

    /// [`GradientBoostingClassifier::fit`] with binned-histogram
    /// construction parallelized across features on `exec`. Training is
    /// bit-identical to the serial path at every thread count (integer
    /// bin counts, unchanged f64 accumulation order); the parallelism
    /// only engages for nodes large enough to beat the pool wake — and
    /// never when the fit itself already runs inside a pool task (the
    /// nested map inlines).
    pub fn fit_with(
        x: &[Vec<f32>],
        y: &[bool],
        config: &GradientBoostingConfig,
        exec: &Executor,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n = x.len();
        let pos = y.iter().filter(|b| **b).count();

        // Prior log-odds, clamped away from ±inf for single-class data.
        // With no data at all, default to "clean" (negative class): in the
        // pipeline an untrained column classifier must not flood the
        // predictions with false positives.
        let p0 = if n == 0 {
            1e-6
        } else {
            ((pos as f64 + 0.5) / (n as f64 + 1.0)).clamp(1e-6, 1.0 - 1e-6)
        };
        let base_score = (p0 / (1.0 - p0)).ln();
        let mut model = Self {
            base_score,
            trees: Vec::new(),
            learning_rate: config.learning_rate,
            used_binned: false,
        };
        if n == 0 || pos == 0 || pos == n {
            // Constant predictor: nothing for boosting to learn.
            return model;
        }

        // Bin the feature matrix once; every boosting stage reuses the
        // codes, so per-node split search never re-sorts raw vectors.
        // Columns that are not losslessly binnable (>256 distinct values,
        // NaN) fall back to the exact reference path — both paths grow
        // bit-identical trees (see crate::tree equivalence tests).
        let binned = BinnedDataset::build(x);
        model.used_binned = binned.is_some();

        let tree_config =
            TreeConfig { max_depth: config.max_depth, min_samples_leaf: config.min_samples_leaf };
        let mut margins = vec![base_score; n];
        let mut gradients = vec![0.0f64; n];
        let mut hessians = vec![0.0f64; n];
        for _ in 0..config.n_trees {
            for i in 0..n {
                let p = sigmoid(margins[i]);
                gradients[i] = f64::from(u8::from(y[i])) - p; // y - p
                hessians[i] = (p * (1.0 - p)).max(1e-9);
            }
            let tree = match &binned {
                Some(data) => {
                    RegressionTree::fit_binned_with(data, &gradients, &hessians, &tree_config, exec)
                }
                None => RegressionTree::fit(x, &gradients, &hessians, &tree_config),
            };
            if tree.n_nodes() == 1 && model.trees.len() > 1 {
                // A stump-less tree means the gradients are no longer
                // separable — further stages would add constant shifts.
                let delta = tree.predict(&x[0]);
                if delta.abs() < 1e-9 {
                    break;
                }
            }
            for (i, m) in margins.iter_mut().enumerate() {
                *m += config.learning_rate * tree.predict(&x[i]);
            }
            model.trees.push(tree);
        }
        model
    }

    /// Probability that `sample` is positive.
    pub fn predict_proba(&self, sample: &[f32]) -> f64 {
        let margin: f64 = self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(sample)).sum::<f64>();
        sigmoid(margin)
    }

    /// Hard decision at the 0.5 threshold.
    pub fn predict(&self, sample: &[f32]) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Number of fitted boosting stages.
    pub fn n_stages(&self) -> usize {
        self.trees.len()
    }

    /// Whether training ran on the binned (histogram) kernel rather than
    /// the exact-split fallback. Surfaced as an obs metric by the
    /// classify stage.
    pub fn used_binned(&self) -> bool {
        self.used_binned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..8 {
                    x.push(vec![a as f32, b as f32]);
                    y.push((a ^ b) == 1);
                }
            }
        }
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        assert!(!m.predict(&[3.0]));
        assert!(m.predict(&[17.0]));
        assert!(m.predict_proba(&[0.0]) < 0.1);
        assert!(m.predict_proba(&[19.0]) > 0.9);
    }

    #[test]
    fn learns_xor_thanks_to_depth() {
        let (x, y) = xor_data();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        assert!(!m.predict(&[0.0, 0.0]));
        assert!(m.predict(&[0.0, 1.0]));
        assert!(m.predict(&[1.0, 0.0]));
        assert!(!m.predict(&[1.0, 1.0]));
    }

    #[test]
    fn single_class_collapses_to_constant() {
        let x = vec![vec![1.0f32], vec![2.0], vec![3.0]];
        let all_neg = vec![false; 3];
        let m = GradientBoostingClassifier::fit(&x, &all_neg, &GradientBoostingConfig::default());
        assert_eq!(m.n_stages(), 0);
        assert!(!m.predict(&[1.0]));
        assert!(m.predict_proba(&[99.0]) < 0.2);

        let all_pos = vec![true; 3];
        let m = GradientBoostingClassifier::fit(&x, &all_pos, &GradientBoostingConfig::default());
        assert!(m.predict(&[-5.0]));
    }

    #[test]
    fn empty_training_set_predicts_negative() {
        let m = GradientBoostingClassifier::fit(&[], &[], &GradientBoostingConfig::default());
        assert!(!m.predict(&[0.0]));
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        // More positive-looking samples get higher probabilities.
        let x: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32 / 40.0]).collect();
        let y: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        let p_low = m.predict_proba(&[0.1]);
        let p_mid = m.predict_proba(&[0.5]);
        let p_high = m.predict_proba(&[0.9]);
        assert!(p_low < p_mid || p_low < p_high);
        assert!(p_low < p_high);
    }

    #[test]
    fn class_imbalance_still_finds_minority() {
        // 5% positives concentrated in a feature corner — the class
        // imbalance situation §3.3.2 describes for error detection.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let is_err = i % 20 == 0;
            x.push(vec![if is_err { 1.0 } else { 0.0 }, (i % 7) as f32]);
            y.push(is_err);
        }
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        assert!(m.predict(&[1.0, 3.0]));
        assert!(!m.predict(&[0.0, 3.0]));
    }

    #[test]
    fn binnable_data_uses_histogram_kernel() {
        let (x, y) = xor_data();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        assert!(m.used_binned(), "small-palette features must take the binned path");
    }

    #[test]
    fn high_cardinality_data_falls_back_to_exact_path() {
        // >256 distinct values in a column cannot be coded in u8 bins.
        let x: Vec<Vec<f32>> = (0..600).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..600).map(|i| i >= 300).collect();
        let m = GradientBoostingClassifier::fit(&x, &y, &GradientBoostingConfig::default());
        assert!(!m.used_binned());
        assert!(!m.predict(&[3.0]));
        assert!(m.predict(&[500.0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = GradientBoostingClassifier::fit(
            &[vec![0.0]],
            &[true, false],
            &GradientBoostingConfig::default(),
        );
    }
}
