//! CART regression trees with variance-reduction splits and optional
//! Newton leaf values (for use inside gradient boosting).

/// Tree growth limits.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Boosting uses shallow trees.
    pub max_depth: usize,
    /// Minimum number of samples required in each child of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 3, min_samples_leaf: 1 }
    }
}

/// A node of the regression tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on `x` (row-major) against `targets`, using per-sample
    /// `hessians` for Newton leaf values (`leaf = Σtarget / (Σhessian + λ)`).
    /// Pass all-ones hessians for plain mean-target leaves.
    ///
    /// # Panics
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit(x: &[Vec<f32>], targets: &[f64], hessians: &[f64], config: &TreeConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on zero samples");
        assert_eq!(x.len(), targets.len());
        assert_eq!(x.len(), hessians.len());
        let mut tree = Self { nodes: Vec::new() };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, targets, hessians, &idx, 0, config);
        tree
    }

    /// Predicts the regression value for one sample.
    pub fn predict(&self, sample: &[f32]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    cur = if sample[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Grows the subtree over `idx`, returning the new node's arena index.
    fn grow(
        &mut self,
        x: &[Vec<f32>],
        targets: &[f64],
        hessians: &[f64],
        idx: &[usize],
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let leaf_value = |ids: &[usize]| -> f64 {
            let g: f64 = ids.iter().map(|&i| targets[i]).sum();
            let h: f64 = ids.iter().map(|&i| hessians[i]).sum();
            g / (h + 1e-9)
        };

        let pure = {
            let first = targets[idx[0]];
            idx.iter().all(|&i| (targets[i] - first).abs() < 1e-12)
        };
        if pure
            || depth >= config.max_depth
            || idx.len() < 2 * config.min_samples_leaf
            || idx.len() < 2
        {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { value: leaf_value(idx) });
            return id;
        }

        match best_split(x, targets, idx, config.min_samples_leaf) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                id
            }
            Some((feature, threshold)) => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                if l.is_empty() || r.is_empty() {
                    // Defensive: a degenerate split (NaN features or float
                    // rounding) must not recurse on an empty child.
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                    return id;
                }
                let id = self.nodes.len();
                // Reserve the split slot, then grow children.
                self.nodes.push(Node::Leaf { value: 0.0 });
                let left = self.grow(x, targets, hessians, &l, depth + 1, config);
                let right = self.grow(x, targets, hessians, &r, depth + 1, config);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }
}

/// Finds the split (feature, threshold) with the largest weighted-variance
/// reduction; `None` if no valid split improves on the parent.
fn best_split(
    x: &[Vec<f32>],
    targets: &[f64],
    idx: &[usize],
    min_leaf: usize,
) -> Option<(usize, f32)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
    let n_features = x[0].len();
    let mut best: Option<(usize, f32, f64)> = None;

    let mut order: Vec<usize> = idx.to_vec();
    for f in 0..n_features {
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
        // Prefix sums over the sorted order; candidate thresholds sit
        // between distinct consecutive feature values.
        let mut left_sum = 0.0f64;
        for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += targets[i];
            let nl = (pos + 1) as f64;
            let nr = n - nl;
            let (a, b) = (x[i][f], x[order[pos + 1]][f]);
            if a == b {
                continue; // not a boundary between distinct values
            }
            if (pos + 1) < min_leaf || (order.len() - pos - 1) < min_leaf {
                continue;
            }
            // Maximizing variance reduction == maximizing
            // left_sum²/nl + right_sum²/nr (parent terms are constant).
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / nl + right_sum * right_sum / nr;
            // Split at `a` exactly (f <= a goes left). A midpoint
            // (a + b) / 2 can round up to `b` in f32 when the two values
            // are adjacent, which would leave the right child empty.
            let threshold = a;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((f, threshold, score));
            }
        }
    }

    // Accept the best valid split even at zero improvement (like CART in
    // scikit-learn): on XOR-shaped targets every top-level split has zero
    // variance reduction, yet splitting is what makes the children
    // separable. Pure nodes never reach this function (the grower leafs
    // them), so this cannot loop on constant targets.
    let _ = (total_sum, n);
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &ones(10), &TreeConfig::default());
        assert!(t.predict(&[2.0]) < 0.01);
        assert!(t.predict(&[7.0]) > 0.99);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32]).collect();
        let y = vec![3.5; 6];
        let t = RegressionTree::fit(&x, &y, &ones(6), &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1, "no split should be made on constant targets");
        assert!((t.predict(&[100.0]) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &ones(64),
            &TreeConfig { max_depth: 1, min_samples_leaf: 1 },
        );
        // Depth 1 => at most one split and two leaves.
        assert!(t.n_nodes() <= 3);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32]).collect();
        // Outlier at position 0 would be isolated by an unconstrained split.
        let mut y = vec![0.0; 8];
        y[0] = 100.0;
        let t = RegressionTree::fit(
            &x,
            &y,
            &ones(8),
            &TreeConfig { max_depth: 1, min_samples_leaf: 4 },
        );
        // The only legal split is 4|4; prediction for x=0 is the mean of
        // the left half, not 100.
        let p = t.predict(&[0.0]);
        assert!(p < 50.0, "prediction {p} leaked a tiny leaf");
    }

    #[test]
    fn multifeature_split_selects_informative_feature() {
        // Feature 0 is noise (constant), feature 1 carries the signal.
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![1.0, (i % 2) as f32]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let t = RegressionTree::fit(&x, &y, &ones(10), &TreeConfig::default());
        assert!(t.predict(&[1.0, 0.0]) < 0.01);
        assert!(t.predict(&[1.0, 1.0]) > 0.99);
    }

    #[test]
    fn newton_leaves_divide_by_hessian() {
        // Single leaf: value = Σg / (Σh + λ).
        let x = vec![vec![0.0f32], vec![0.0]];
        let g = vec![1.0, 1.0];
        let h = vec![4.0, 4.0];
        let t = RegressionTree::fit(&x, &g, &h, &TreeConfig::default());
        assert!((t.predict(&[0.0]) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn adjacent_f32_values_do_not_create_empty_children() {
        // Regression test: with two adjacent f32 values the midpoint
        // (a + b) / 2 rounds to b, which used to partition every sample
        // into the left child and recurse on an empty right child.
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1); // next representable
        let x = vec![vec![a], vec![a], vec![b], vec![b]];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let t = RegressionTree::fit(&x, &y, &ones(4), &TreeConfig::default());
        assert!(t.predict(&[a]) < 0.5);
        assert!(t.predict(&[b]) > 0.5);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        let _ = RegressionTree::fit(&[], &[], &[], &TreeConfig::default());
    }
}
