//! CART regression trees with variance-reduction splits and optional
//! Newton leaf values (for use inside gradient boosting).
//!
//! Two training paths produce bit-identical trees:
//!
//! * [`RegressionTree::fit`] — the exact reference: per node, per feature,
//!   stable comparison sort of the sample order, prefix-sum split scan.
//! * [`RegressionTree::fit_binned`] — the histogram path over a
//!   [`BinnedDataset`]: per-node bin-count histograms (with the sibling =
//!   parent − child subtraction trick) drive a *stable counting sort*, so
//!   the split scan visits samples in exactly the order the reference's
//!   comparison sort would, and every f64 accumulation happens in the same
//!   sequence. Equivalence is pinned by tests, not approximate.

use crate::binned::BinnedDataset;
use matelda_exec::Executor;

/// Tree growth limits.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0). Boosting uses shallow trees.
    pub max_depth: usize,
    /// Minimum number of samples required in each child of a split.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 3, min_samples_leaf: 1 }
    }
}

/// A node of the regression tree, stored in a flat arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
///
/// `PartialEq` compares arena structure node for node — used by the
/// equivalence tests that pin the binned path to the exact path.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on `x` (row-major) against `targets`, using per-sample
    /// `hessians` for Newton leaf values (`leaf = Σtarget / (Σhessian + λ)`).
    /// Pass all-ones hessians for plain mean-target leaves.
    ///
    /// # Panics
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit(x: &[Vec<f32>], targets: &[f64], hessians: &[f64], config: &TreeConfig) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on zero samples");
        assert_eq!(x.len(), targets.len());
        assert_eq!(x.len(), hessians.len());
        let mut tree = Self { nodes: Vec::new() };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, targets, hessians, &idx, 0, config);
        tree
    }

    /// Fits a tree on a pre-binned dataset — same contract and same result
    /// as [`RegressionTree::fit`] on the raw samples the dataset was built
    /// from, but split search scans bin histograms instead of re-sorting
    /// raw feature vectors per node.
    ///
    /// # Panics
    /// Panics if the dataset is empty or lengths disagree.
    pub fn fit_binned(
        data: &BinnedDataset,
        targets: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
    ) -> Self {
        Self::fit_binned_with(data, targets, hessians, config, &Executor::single())
    }

    /// [`RegressionTree::fit_binned`] with per-node histogram
    /// construction parallelized across features on `exec` (bin counts
    /// are integers and features are independent, so the histogram — and
    /// therefore the tree — is bit-identical at every thread count).
    /// Small nodes stay serial, below a cells threshold that keeps
    /// the pool wake cheaper than the work it offloads.
    pub fn fit_binned_with(
        data: &BinnedDataset,
        targets: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
        exec: &Executor,
    ) -> Self {
        assert!(data.n_samples() > 0, "cannot fit a tree on zero samples");
        assert_eq!(data.n_samples(), targets.len());
        assert_eq!(data.n_samples(), hessians.len());
        let mut tree = Self { nodes: Vec::new() };
        let idx: Vec<usize> = (0..data.n_samples()).collect();
        let hist = node_histogram_with(data, &idx, exec);
        tree.grow_binned(data, targets, hessians, &idx, &hist, 0, config, exec);
        tree
    }

    /// Predicts the regression value for one sample.
    pub fn predict(&self, sample: &[f32]) -> f64 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    cur = if sample[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (leaves + splits).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Grows the subtree over `idx`, returning the new node's arena index.
    fn grow(
        &mut self,
        x: &[Vec<f32>],
        targets: &[f64],
        hessians: &[f64],
        idx: &[usize],
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let leaf_value = |ids: &[usize]| -> f64 {
            let g: f64 = ids.iter().map(|&i| targets[i]).sum();
            let h: f64 = ids.iter().map(|&i| hessians[i]).sum();
            g / (h + 1e-9)
        };

        let pure = {
            let first = targets[idx[0]];
            idx.iter().all(|&i| (targets[i] - first).abs() < 1e-12)
        };
        if pure
            || depth >= config.max_depth
            || idx.len() < 2 * config.min_samples_leaf
            || idx.len() < 2
        {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { value: leaf_value(idx) });
            return id;
        }

        match best_split(x, targets, idx, config.min_samples_leaf) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                id
            }
            Some((feature, threshold)) => {
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| x[i][feature] <= threshold);
                if l.is_empty() || r.is_empty() {
                    // Defensive: a degenerate split (NaN features or float
                    // rounding) must not recurse on an empty child.
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                    return id;
                }
                let id = self.nodes.len();
                // Reserve the split slot, then grow children.
                self.nodes.push(Node::Leaf { value: 0.0 });
                let left = self.grow(x, targets, hessians, &l, depth + 1, config);
                let right = self.grow(x, targets, hessians, &r, depth + 1, config);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }

    /// Binned counterpart of [`RegressionTree::grow`]. `hist` is this
    /// node's per-feature bin-count histogram (`n_features × max_bins`).
    #[allow(clippy::too_many_arguments)]
    fn grow_binned(
        &mut self,
        data: &BinnedDataset,
        targets: &[f64],
        hessians: &[f64],
        idx: &[usize],
        hist: &[u32],
        depth: usize,
        config: &TreeConfig,
        exec: &Executor,
    ) -> usize {
        let leaf_value = |ids: &[usize]| -> f64 {
            let g: f64 = ids.iter().map(|&i| targets[i]).sum();
            let h: f64 = ids.iter().map(|&i| hessians[i]).sum();
            g / (h + 1e-9)
        };

        let pure = {
            let first = targets[idx[0]];
            idx.iter().all(|&i| (targets[i] - first).abs() < 1e-12)
        };
        if pure
            || depth >= config.max_depth
            || idx.len() < 2 * config.min_samples_leaf
            || idx.len() < 2
        {
            let id = self.nodes.len();
            self.nodes.push(Node::Leaf { value: leaf_value(idx) });
            return id;
        }

        match best_split_binned(data, targets, idx, hist, config.min_samples_leaf) {
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                id
            }
            Some((feature, split_bin)) => {
                let codes = data.codes_of(feature);
                // `code <= split_bin` ⟺ `value <= threshold` (codes are
                // ranks of distinct values), so this partition matches the
                // reference's exactly, in the same stable order.
                let (l, r): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| codes[i] <= split_bin);
                if l.is_empty() || r.is_empty() {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: leaf_value(idx) });
                    return id;
                }
                // Subtraction trick: count the smaller child directly and
                // derive the sibling as parent − child. Counts are
                // integers, so the subtraction is exact.
                let small = if l.len() <= r.len() { &l } else { &r };
                let small_hist = node_histogram_with(data, small, exec);
                let mut other_hist = hist.to_vec();
                for (o, s) in other_hist.iter_mut().zip(&small_hist) {
                    *o -= s;
                }
                let (l_hist, r_hist) = if l.len() <= r.len() {
                    (small_hist, other_hist)
                } else {
                    (other_hist, small_hist)
                };
                let threshold = data.threshold(feature, split_bin);
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: 0.0 });
                let left =
                    self.grow_binned(data, targets, hessians, &l, &l_hist, depth + 1, config, exec);
                let right =
                    self.grow_binned(data, targets, hessians, &r, &r_hist, depth + 1, config, exec);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }
}

/// Per-feature bin-count histogram over the samples in `idx`, laid out
/// `hist[f * max_bins + bin]`.
fn node_histogram(data: &BinnedDataset, idx: &[usize]) -> Vec<u32> {
    let max_bins = data.max_bins();
    let mut hist = vec![0u32; data.n_features() * max_bins];
    for f in 0..data.n_features() {
        let codes = data.codes_of(f);
        let row = &mut hist[f * max_bins..(f + 1) * max_bins];
        for &i in idx {
            row[codes[i] as usize] += 1;
        }
    }
    hist
}

/// A node below this many `samples × features` cells builds its
/// histogram serially — per-feature scans of a small node are cheaper
/// than a pool wake, and deep-tree nodes shrink geometrically.
const PARALLEL_HIST_MIN_CELLS: usize = 1 << 16;

/// [`node_histogram`] parallelized across features on `exec`: every
/// feature's count row is independent and counts are integers, so the
/// concatenated histogram equals the serial one exactly. Falls back to
/// the serial scan for small nodes (and on 1-thread executors).
fn node_histogram_with(data: &BinnedDataset, idx: &[usize], exec: &Executor) -> Vec<u32> {
    let n_features = data.n_features();
    if exec.threads() <= 1 || idx.len().saturating_mul(n_features) < PARALLEL_HIST_MIN_CELLS {
        return node_histogram(data, idx);
    }
    let max_bins = data.max_bins();
    let rows = exec.map_n(n_features, |f| {
        let codes = data.codes_of(f);
        let mut row = vec![0u32; max_bins];
        for &i in idx {
            row[codes[i] as usize] += 1;
        }
        row
    });
    rows.concat()
}

/// Binned counterpart of [`best_split`], returning `(feature, split_bin)`.
///
/// Bit-exactness note: the reference reuses one `order` vector across
/// features, so ties under feature `f`'s stable sort preserve the order
/// left by feature `f − 1`. This function reproduces that by applying a
/// *stable counting sort* (bucket offsets from the node histogram) to the
/// same carried-over order, then accumulating the prefix sum point by
/// point in that order — the f64 additions happen in the identical
/// sequence, so scores (and thus the argmax under strict `>`) are
/// bit-identical, not merely close.
fn best_split_binned(
    data: &BinnedDataset,
    targets: &[f64],
    idx: &[usize],
    hist: &[u32],
    min_leaf: usize,
) -> Option<(usize, u8)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
    let max_bins = data.max_bins();
    let mut best: Option<(usize, u8, f64)> = None;

    let mut order: Vec<usize> = idx.to_vec();
    let mut sorted: Vec<usize> = vec![0; idx.len()];
    let mut cursor: Vec<usize> = vec![0; max_bins + 1];
    for f in 0..data.n_features() {
        let nb = data.n_bins(f);
        let counts = &hist[f * max_bins..f * max_bins + nb];
        if counts.iter().filter(|&&c| c > 0).count() <= 1 {
            // Feature is constant within this node: the reference's stable
            // sort is the identity (order carries over unchanged) and no
            // bin boundary exists, so it generates no candidates either.
            continue;
        }

        // Stable counting sort of `order` by this feature's bin code.
        cursor[0] = 0;
        for b in 0..nb {
            cursor[b + 1] = cursor[b] + counts[b] as usize;
        }
        let codes = data.codes_of(f);
        for &i in &order {
            let b = codes[i] as usize;
            sorted[cursor[b]] = i;
            cursor[b] += 1;
        }
        std::mem::swap(&mut order, &mut sorted);

        let mut left_sum = 0.0f64;
        for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += targets[i];
            let nl = (pos + 1) as f64;
            let nr = n - nl;
            let (a, b) = (codes[i], codes[order[pos + 1]]);
            if a == b {
                continue; // not a boundary between distinct values
            }
            if (pos + 1) < min_leaf || (order.len() - pos - 1) < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / nl + right_sum * right_sum / nr;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((f, a, score));
            }
        }
    }

    best.map(|(f, b, _)| (f, b))
}

/// Finds the split (feature, threshold) with the largest weighted-variance
/// reduction; `None` if no valid split improves on the parent.
fn best_split(
    x: &[Vec<f32>],
    targets: &[f64],
    idx: &[usize],
    min_leaf: usize,
) -> Option<(usize, f32)> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
    let n_features = x[0].len();
    let mut best: Option<(usize, f32, f64)> = None;

    let mut order: Vec<usize> = idx.to_vec();
    for f in 0..n_features {
        order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
        // Prefix sums over the sorted order; candidate thresholds sit
        // between distinct consecutive feature values.
        let mut left_sum = 0.0f64;
        for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += targets[i];
            let nl = (pos + 1) as f64;
            let nr = n - nl;
            let (a, b) = (x[i][f], x[order[pos + 1]][f]);
            if a == b {
                continue; // not a boundary between distinct values
            }
            if (pos + 1) < min_leaf || (order.len() - pos - 1) < min_leaf {
                continue;
            }
            // Maximizing variance reduction == maximizing
            // left_sum²/nl + right_sum²/nr (parent terms are constant).
            let right_sum = total_sum - left_sum;
            let score = left_sum * left_sum / nl + right_sum * right_sum / nr;
            // Split at `a` exactly (f <= a goes left). A midpoint
            // (a + b) / 2 can round up to `b` in f32 when the two values
            // are adjacent, which would leave the right child empty.
            let threshold = a;
            if best.is_none_or(|(_, _, s)| score > s) {
                best = Some((f, threshold, score));
            }
        }
    }

    // Accept the best valid split even at zero improvement (like CART in
    // scikit-learn): on XOR-shaped targets every top-level split has zero
    // variance reduction, yet splitting is what makes the children
    // separable. Pure nodes never reach this function (the grower leafs
    // them), so this cannot loop on constant targets.
    let _ = (total_sum, n);
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn fits_a_step_function() {
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit(&x, &y, &ones(10), &TreeConfig::default());
        assert!(t.predict(&[2.0]) < 0.01);
        assert!(t.predict(&[7.0]) > 0.99);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32]).collect();
        let y = vec![3.5; 6];
        let t = RegressionTree::fit(&x, &y, &ones(6), &TreeConfig::default());
        assert_eq!(t.n_nodes(), 1, "no split should be made on constant targets");
        assert!((t.predict(&[100.0]) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &x,
            &y,
            &ones(64),
            &TreeConfig { max_depth: 1, min_samples_leaf: 1 },
        );
        // Depth 1 => at most one split and two leaves.
        assert!(t.n_nodes() <= 3);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let x: Vec<Vec<f32>> = (0..8).map(|i| vec![i as f32]).collect();
        // Outlier at position 0 would be isolated by an unconstrained split.
        let mut y = vec![0.0; 8];
        y[0] = 100.0;
        let t = RegressionTree::fit(
            &x,
            &y,
            &ones(8),
            &TreeConfig { max_depth: 1, min_samples_leaf: 4 },
        );
        // The only legal split is 4|4; prediction for x=0 is the mean of
        // the left half, not 100.
        let p = t.predict(&[0.0]);
        assert!(p < 50.0, "prediction {p} leaked a tiny leaf");
    }

    #[test]
    fn multifeature_split_selects_informative_feature() {
        // Feature 0 is noise (constant), feature 1 carries the signal.
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![1.0, (i % 2) as f32]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        let t = RegressionTree::fit(&x, &y, &ones(10), &TreeConfig::default());
        assert!(t.predict(&[1.0, 0.0]) < 0.01);
        assert!(t.predict(&[1.0, 1.0]) > 0.99);
    }

    #[test]
    fn newton_leaves_divide_by_hessian() {
        // Single leaf: value = Σg / (Σh + λ).
        let x = vec![vec![0.0f32], vec![0.0]];
        let g = vec![1.0, 1.0];
        let h = vec![4.0, 4.0];
        let t = RegressionTree::fit(&x, &g, &h, &TreeConfig::default());
        assert!((t.predict(&[0.0]) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn adjacent_f32_values_do_not_create_empty_children() {
        // Regression test: with two adjacent f32 values the midpoint
        // (a + b) / 2 rounds to b, which used to partition every sample
        // into the left child and recurse on an empty right child.
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1); // next representable
        let x = vec![vec![a], vec![a], vec![b], vec![b]];
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let t = RegressionTree::fit(&x, &y, &ones(4), &TreeConfig::default());
        assert!(t.predict(&[a]) < 0.5);
        assert!(t.predict(&[b]) > 0.5);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_input_panics() {
        let _ = RegressionTree::fit(&[], &[], &[], &TreeConfig::default());
    }

    fn assert_binned_equals_exact(
        x: &[Vec<f32>],
        targets: &[f64],
        hessians: &[f64],
        config: &TreeConfig,
    ) {
        let data = BinnedDataset::build(x).expect("binnable input");
        let exact = RegressionTree::fit(x, targets, hessians, config);
        let binned = RegressionTree::fit_binned(&data, targets, hessians, config);
        assert_eq!(exact, binned, "binned tree must equal exact tree node for node");
    }

    #[test]
    fn binned_equals_exact_on_step_function() {
        let x: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 1.0 }).collect();
        assert_binned_equals_exact(&x, &y, &ones(10), &TreeConfig::default());
    }

    #[test]
    fn binned_equals_exact_on_xor_with_tie_carryover() {
        // XOR exercises the stable-sort tie-carryover: every top-level
        // split has an identical (zero-improvement) score, so the winning
        // split depends on the exact scan order across features.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..4 {
                    x.push(vec![a as f32, b as f32]);
                    y.push(f64::from(a ^ b));
                }
            }
        }
        let h = ones(x.len());
        assert_binned_equals_exact(&x, &y, &h, &TreeConfig::default());
    }

    #[test]
    fn binned_equals_exact_with_min_leaf_and_depth_limits() {
        let x: Vec<Vec<f32>> = (0..16).map(|i| vec![(i % 4) as f32, (i / 4) as f32]).collect();
        let y: Vec<f64> = (0..16).map(|i| f64::from(u8::from(i % 3 == 0))).collect();
        for min_leaf in [1, 2, 4] {
            for depth in [1, 2, 5] {
                assert_binned_equals_exact(
                    &x,
                    &y,
                    &ones(16),
                    &TreeConfig { max_depth: depth, min_samples_leaf: min_leaf },
                );
            }
        }
    }

    #[test]
    fn parallel_histogram_trees_are_bit_identical_to_serial() {
        // 2200 samples × 33 features clears PARALLEL_HIST_MIN_CELLS, so
        // the root histogram really fans out across features; the fitted
        // trees must match the serial build arena-for-arena.
        let n = 2200usize;
        let nf = 33usize;
        let x: Vec<Vec<f32>> =
            (0..n).map(|i| (0..nf).map(|f| ((i * (f + 3)) % 7) as f32).collect()).collect();
        let targets: Vec<f64> = (0..n).map(|i| ((i % 11) as f64 - 5.0) * 0.125).collect();
        let hessians: Vec<f64> = (0..n).map(|i| 0.5 + (i % 3) as f64).collect();
        let config = TreeConfig { max_depth: 4, min_samples_leaf: 1 };
        let data = BinnedDataset::build(&x).expect("palette data is binnable");
        let serial = RegressionTree::fit_binned(&data, &targets, &hessians, &config);
        for threads in [2, 4, 8] {
            let exec = Executor::new(threads);
            let parallel =
                RegressionTree::fit_binned_with(&data, &targets, &hessians, &config, &exec);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        // The binned path is pinned to the exact-split reference: same
        // arena, same split features, thresholds, and leaf values, bit
        // for bit. Feature values come from a small palette so columns
        // carry heavy ties (the hard case for stable-order carryover).
        #[test]
        fn binned_tree_equals_exact_tree(
            rows in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 3),
                2usize..40,
            ),
            targets_raw in proptest::collection::vec(-4i8..4, 40),
            max_depth in 1usize..4,
            min_leaf in 1usize..3,
        ) {
            let x: Vec<Vec<f32>> = rows
                .iter()
                .map(|r| r.iter().map(|&v| f32::from(v) * 0.25 - 0.5).collect())
                .collect();
            let targets: Vec<f64> =
                (0..x.len()).map(|i| f64::from(targets_raw[i]) * 0.125).collect();
            let hessians: Vec<f64> =
                (0..x.len()).map(|i| 0.5 + f64::from(targets_raw[i].unsigned_abs())).collect();
            let config = TreeConfig { max_depth, min_samples_leaf: min_leaf };
            let data = BinnedDataset::build(&x).expect("palette data is binnable");
            let exact = RegressionTree::fit(&x, &targets, &hessians, &config);
            let binned = RegressionTree::fit_binned(&data, &targets, &hessians, &config);
            proptest::prop_assert_eq!(exact, binned);
        }
    }
}
