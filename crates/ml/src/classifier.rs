//! A small classifier abstraction so the pipeline can swap learners
//! (the paper uses gradient boosting "similar to prior work"; the
//! classifier ablation compares it against a random forest).

use crate::forest::{RandomForestClassifier, RandomForestConfig};
use crate::gbm::{GradientBoostingClassifier, GradientBoostingConfig};
use matelda_exec::Executor;

/// Which learner to fit per column/fold.
#[derive(Debug, Clone)]
pub enum ClassifierKind {
    /// Gradient boosting (the paper's choice).
    GradientBoosting(GradientBoostingConfig),
    /// Bagged random forest.
    RandomForest(RandomForestConfig),
}

impl Default for ClassifierKind {
    fn default() -> Self {
        ClassifierKind::GradientBoosting(GradientBoostingConfig::default())
    }
}

/// A fitted learner of either kind.
#[derive(Debug, Clone)]
pub enum FittedClassifier {
    /// Fitted boosting model.
    Gbm(GradientBoostingClassifier),
    /// Fitted forest.
    Forest(RandomForestClassifier),
}

impl FittedClassifier {
    /// Fits the configured learner.
    pub fn fit(kind: &ClassifierKind, x: &[Vec<f32>], y: &[bool]) -> Self {
        Self::fit_with(kind, x, y, &Executor::single())
    }

    /// [`FittedClassifier::fit`] with the GBM's binned-histogram build
    /// parallelized across features on `exec` (bit-identical; see
    /// [`GradientBoostingClassifier::fit_with`]). Forests have no
    /// histogram path and ignore the executor.
    pub fn fit_with(kind: &ClassifierKind, x: &[Vec<f32>], y: &[bool], exec: &Executor) -> Self {
        match kind {
            ClassifierKind::GradientBoosting(cfg) => {
                FittedClassifier::Gbm(GradientBoostingClassifier::fit_with(x, y, cfg, exec))
            }
            ClassifierKind::RandomForest(cfg) => {
                FittedClassifier::Forest(RandomForestClassifier::fit(x, y, cfg))
            }
        }
    }

    /// Positive-class probability.
    pub fn predict_proba(&self, sample: &[f32]) -> f64 {
        match self {
            FittedClassifier::Gbm(m) => m.predict_proba(sample),
            FittedClassifier::Forest(m) => m.predict_proba(sample),
        }
    }

    /// Hard decision at 0.5.
    pub fn predict(&self, sample: &[f32]) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Whether training ran on the binned histogram kernel (always
    /// `false` for forests, which have no binned path).
    pub fn used_binned(&self) -> bool {
        match self {
            FittedClassifier::Gbm(m) => m.used_binned(),
            FittedClassifier::Forest(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_kinds_fit_and_agree_on_easy_data() {
        let x: Vec<Vec<f32>> = (0..30).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..30).map(|i| i >= 15).collect();
        for kind in
            [ClassifierKind::default(), ClassifierKind::RandomForest(RandomForestConfig::default())]
        {
            let m = FittedClassifier::fit(&kind, &x, &y);
            assert!(!m.predict(&[2.0]), "{kind:?}");
            assert!(m.predict(&[28.0]), "{kind:?}");
        }
    }
}
