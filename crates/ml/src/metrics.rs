//! Model-level evaluation helpers (cell-level P/R/F1 lives in
//! `matelda-table::metrics`; these are for validating the learners
//! themselves).

/// Fraction of predictions equal to the labels.
///
/// # Panics
/// Panics on length mismatch; returns 0.0 on empty input.
pub fn accuracy(predictions: &[bool], labels: &[bool]) -> f64 {
    assert_eq!(predictions.len(), labels.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f64 / predictions.len() as f64
}

/// Binary cross-entropy of predicted probabilities against labels, with
/// probability clamping for numerical safety.
pub fn log_loss(probabilities: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), labels.len());
    if probabilities.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&p, &y) in probabilities.iter().zip(labels) {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        total -= if y { p.ln() } else { (1.0 - p).ln() };
    }
    total / probabilities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let confident = log_loss(&[0.99, 0.01], &[true, false]);
        let unsure = log_loss(&[0.6, 0.4], &[true, false]);
        let wrong = log_loss(&[0.01, 0.99], &[true, false]);
        assert!(confident < unsure);
        assert!(unsure < wrong);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        let l = log_loss(&[0.0, 1.0], &[true, false]);
        assert!(l.is_finite());
    }
}
