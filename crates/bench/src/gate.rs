//! The bench-regression gate: compares a freshly produced
//! `BENCH_stages.json` against the committed baseline and reports every
//! violated performance-contract clause (see `DESIGN.md`, "Performance
//! contract"). CI runs this after the stages bench via the `bench_gate`
//! binary; an empty violation list is a pass.
//!
//! Gate clauses:
//!
//! * every baseline stage must still be present in the fresh results,
//!   and its single-thread throughput (`items_per_sec_1t`) must not
//!   drop by more than [`GateConfig::max_drop_pct`] percent;
//! * every overhead section (`fault_isolation`, `checkpoint`,
//!   `observability`, `serve`, `storage`) must stay within its own
//!   `target_pct` budget in the fresh results;
//! * the two files must have been produced at the same `MATELDA_SCALE`
//!   (throughput at different scales is not comparable).
//!
//! By default only single-thread throughput is gated: multi-thread
//! speedups on shared CI runners are noise-dominated, while
//! `items_per_sec_1t` on the same runner class is stable enough for a
//! 25% band. A dedicated CI leg opts into the per-thread-count
//! baseline with [`GateConfig::require_2t`] (the `--require-2t` flag):
//! it additionally gates each stage's `items_per_sec_2t` and its
//! 2-thread scaling ratio `speedup_2t`, so a change that quietly
//! serializes a parallel stage (speedup collapses while 1-thread
//! throughput is unchanged) fails the gate. The JSON parsing lives in
//! [`crate::json`], shared with the accuracy gate (`eval`) — the bench
//! emits a small, known shape and the crate policy is no third-party
//! dependencies.

pub use crate::json::Json;

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated single-thread throughput drop, in percent of
    /// the baseline's `items_per_sec_1t`. With [`GateConfig::require_2t`]
    /// the same band also applies to `items_per_sec_2t` and `speedup_2t`.
    pub max_drop_pct: f64,
    /// Also gate the per-thread-count baseline: each baseline stage's
    /// `items_per_sec_2t` and `speedup_2t` must be present in the fresh
    /// results and must not drop by more than `max_drop_pct` percent.
    /// Off by default — only the dedicated 2-thread CI leg (which pins
    /// runner class and thread count) opts in via `--require-2t`.
    pub require_2t: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        // 25%: wide enough for shared-runner noise on sub-100ms stages,
        // tight enough to catch an accidental algorithmic regression
        // (the fallback paths this PR replaces were 2×+ slower).
        GateConfig { max_drop_pct: 25.0, require_2t: false }
    }
}

/// The overhead sections the gate checks against their own budgets.
const OVERHEAD_SECTIONS: [&str; 5] =
    ["fault_isolation", "checkpoint", "observability", "serve", "storage"];

/// Compares fresh bench results against the committed baseline and
/// returns every violation as a human-readable line. Empty = pass.
pub fn compare(baseline: &Json, fresh: &Json, cfg: GateConfig) -> Vec<String> {
    let mut violations = Vec::new();

    let b_scale = baseline.get("scale").and_then(Json::as_str).unwrap_or("?");
    let f_scale = fresh.get("scale").and_then(Json::as_str).unwrap_or("?");
    if b_scale != f_scale {
        violations.push(format!(
            "scale mismatch: baseline ran at `{b_scale}`, fresh at `{f_scale}` — throughput not comparable"
        ));
        return violations;
    }

    let empty: [Json; 0] = [];
    let fresh_stages = fresh.get("stages").and_then(Json::as_arr).unwrap_or(&empty);
    for stage in baseline.get("stages").and_then(Json::as_arr).unwrap_or(&empty) {
        let name = stage.get("stage").and_then(Json::as_str).unwrap_or("?");
        let Some(base_ips) = stage.get("items_per_sec_1t").and_then(Json::as_num) else {
            continue;
        };
        let found =
            fresh_stages.iter().find(|s| s.get("stage").and_then(Json::as_str) == Some(name));
        let Some(found) = found else {
            violations
                .push(format!("stage `{name}` present in baseline but missing from fresh results"));
            continue;
        };
        let fresh_ips = found.get("items_per_sec_1t").and_then(Json::as_num).unwrap_or(0.0);
        if base_ips > 0.0 {
            let drop_pct = 100.0 * (base_ips - fresh_ips) / base_ips;
            if drop_pct > cfg.max_drop_pct {
                violations.push(format!(
                    "stage `{name}`: items_per_sec_1t dropped {drop_pct:.1}% \
                     ({base_ips:.1}/s -> {fresh_ips:.1}/s, limit {limit:.0}%)",
                    limit = cfg.max_drop_pct
                ));
            }
        }
        if cfg.require_2t {
            for key in ["items_per_sec_2t", "speedup_2t"] {
                let Some(base) = stage.get(key).and_then(Json::as_num) else {
                    continue;
                };
                let Some(fresh_val) = found.get(key).and_then(Json::as_num) else {
                    violations.push(format!(
                        "stage `{name}`: `{key}` in baseline but missing from fresh results \
                         (per-thread baseline required)"
                    ));
                    continue;
                };
                if base > 0.0 {
                    let drop_pct = 100.0 * (base - fresh_val) / base;
                    if drop_pct > cfg.max_drop_pct {
                        violations.push(format!(
                            "stage `{name}`: {key} dropped {drop_pct:.1}% \
                             ({base:.3} -> {fresh_val:.3}, limit {limit:.0}%)",
                            limit = cfg.max_drop_pct
                        ));
                    }
                }
            }
        }
    }

    for section in OVERHEAD_SECTIONS {
        if baseline.get(section).is_none() {
            continue;
        }
        let Some(s) = fresh.get(section) else {
            violations.push(format!("overhead section `{section}` missing from fresh results"));
            continue;
        };
        let overhead = s.get("overhead_pct").and_then(Json::as_num).unwrap_or(f64::INFINITY);
        let target = s.get("target_pct").and_then(Json::as_num).unwrap_or(0.0);
        if overhead > target {
            violations.push(format!(
                "overhead `{section}`: {overhead:.2}% exceeds its {target:.1}% budget"
            ));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_baseline() -> Json {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stages.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_stages.json");
        Json::parse(&text).expect("baseline parses")
    }

    /// Rebuilds the baseline with one stage's throughput scaled.
    fn with_scaled_stage(doc: &Json, stage_name: &str, factor: f64) -> Json {
        with_scaled_stage_key(doc, stage_name, "items_per_sec_1t", factor)
    }

    /// Rebuilds the baseline with one numeric key of one stage scaled.
    fn with_scaled_stage_key(doc: &Json, stage_name: &str, key: &str, factor: f64) -> Json {
        let Json::Obj(fields) = doc else { panic!("doc is an object") };
        let fields = fields
            .iter()
            .map(|(k, v)| {
                if k != "stages" {
                    return (k.clone(), v.clone());
                }
                let stages = v
                    .as_arr()
                    .expect("stages array")
                    .iter()
                    .map(|s| {
                        if s.get("stage").and_then(Json::as_str) != Some(stage_name) {
                            return s.clone();
                        }
                        let Json::Obj(sf) = s else { panic!("stage is an object") };
                        Json::Obj(
                            sf.iter()
                                .map(|(sk, sv)| {
                                    let sv = if sk == key {
                                        Json::Num(sv.as_num().unwrap() * factor)
                                    } else {
                                        sv.clone()
                                    };
                                    (sk.clone(), sv)
                                })
                                .collect(),
                        )
                    })
                    .collect();
                (k.clone(), Json::Arr(stages))
            })
            .collect();
        Json::Obj(fields)
    }

    #[test]
    fn committed_baseline_parses_and_passes_against_itself() {
        let doc = committed_baseline();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("stages"));
        assert!(!doc.get("stages").and_then(Json::as_arr).unwrap_or(&[]).is_empty());
        let violations = compare(&doc, &doc, GateConfig::default());
        assert!(violations.is_empty(), "self-comparison must pass: {violations:?}");
    }

    #[test]
    fn gate_rejects_a_thirty_percent_regression() {
        // The negative control the CI job relies on: a synthetic 30%
        // single-thread throughput drop on the classify stage must trip
        // the 25% gate.
        let baseline = committed_baseline();
        let regressed = with_scaled_stage(&baseline, "classify", 0.70);
        let violations = compare(&baseline, &regressed, GateConfig::default());
        assert_eq!(violations.len(), 1, "exactly the classify clause: {violations:?}");
        assert!(violations[0].contains("classify") && violations[0].contains("30.0%"));
        // A 20% drop stays inside the band.
        let ok = with_scaled_stage(&baseline, "classify", 0.80);
        assert!(compare(&baseline, &ok, GateConfig::default()).is_empty());
        // A tighter configured limit catches it.
        let tight =
            compare(&baseline, &ok, GateConfig { max_drop_pct: 10.0, ..Default::default() });
        assert_eq!(tight.len(), 1);
    }

    #[test]
    fn require_2t_rejects_a_scaling_regression() {
        // The negative control for the per-thread baseline: halving a
        // stage's 2-thread scaling ratio — a change that serializes the
        // stage without touching its single-thread throughput — must
        // trip the `--require-2t` gate and pass the default one.
        let baseline = committed_baseline();
        let regressed = with_scaled_stage_key(&baseline, "classify", "speedup_2t", 0.5);
        assert!(
            compare(&baseline, &regressed, GateConfig::default()).is_empty(),
            "default gate does not watch scaling"
        );
        let strict = GateConfig { require_2t: true, ..Default::default() };
        let v = compare(&baseline, &regressed, strict);
        assert_eq!(v.len(), 1, "exactly the speedup_2t clause: {v:?}");
        assert!(v[0].contains("classify") && v[0].contains("speedup_2t"));

        // Dropping 2-thread throughput past the band also trips it.
        let slow2 = with_scaled_stage_key(&baseline, "embed", "items_per_sec_2t", 0.5);
        let v = compare(&baseline, &slow2, strict);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("embed") && v[0].contains("items_per_sec_2t"));

        // A fresh file missing the per-thread keys entirely fails too.
        let bare = Json::parse(
            r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":1e9,
                "items_per_sec_2t":1e9,"speedup_2t":9.9}]}"#,
        )
        .unwrap();
        let stripped =
            Json::parse(r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":1e9}]}"#)
                .unwrap();
        assert!(compare(&bare, &stripped, GateConfig::default()).is_empty());
        let v = compare(&bare, &stripped, strict);
        assert_eq!(v.len(), 2, "both per-thread keys reported missing: {v:?}");

        // The committed baseline passes against itself under the strict
        // gate — the keys it requires are present.
        assert!(compare(&baseline, &baseline, strict).is_empty());
    }

    #[test]
    fn gate_flags_missing_stage_and_scale_mismatch() {
        let baseline = Json::parse(
            r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":100.0}]}"#,
        )
        .unwrap();
        let empty = Json::parse(r#"{"scale":"full","stages":[]}"#).unwrap();
        let v = compare(&baseline, &empty, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));

        let quick = Json::parse(r#"{"scale":"quick","stages":[]}"#).unwrap();
        let v = compare(&baseline, &quick, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("scale mismatch"));
    }

    #[test]
    fn gate_flags_blown_overhead_budget() {
        let baseline = Json::parse(
            r#"{"scale":"full","stages":[],
                "observability":{"overhead_pct":1.0,"target_pct":5.0}}"#,
        )
        .unwrap();
        let blown = Json::parse(
            r#"{"scale":"full","stages":[],
                "observability":{"overhead_pct":7.5,"target_pct":5.0}}"#,
        )
        .unwrap();
        assert!(compare(&baseline, &baseline, GateConfig::default()).is_empty());
        let v = compare(&baseline, &blown, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("observability") && v[0].contains("7.50%"));
        // Section disappearing entirely is also a violation.
        let gone = Json::parse(r#"{"scale":"full","stages":[]}"#).unwrap();
        let v = compare(&baseline, &gone, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
    }
}
