//! The bench-regression gate: compares a freshly produced
//! `BENCH_stages.json` against the committed baseline and reports every
//! violated performance-contract clause (see `DESIGN.md`, "Performance
//! contract"). CI runs this after the stages bench via the `bench_gate`
//! binary; an empty violation list is a pass.
//!
//! Gate clauses:
//!
//! * every baseline stage must still be present in the fresh results,
//!   and its single-thread throughput (`items_per_sec_1t`) must not
//!   drop by more than [`GateConfig::max_drop_pct`] percent;
//! * every overhead section (`fault_isolation`, `checkpoint`,
//!   `observability`, `serve`, `storage`) must stay within its own
//!   `target_pct` budget in the fresh results;
//! * the two files must have been produced at the same `MATELDA_SCALE`
//!   sweep size (throughput at different sweep sizes is not comparable;
//!   the key is `sweep`, with a fallback to the legacy `scale` string);
//! * when the baseline carries a `scale` section (the out-of-core scale
//!   tier produced by `scale_bench`), the fresh results must carry one
//!   too, at the same tier, with `digest_ok` true, peak RSS under both
//!   the absolute `rss_budget_bytes` and 1.5× the baseline's peak, and
//!   per-stage `cells_per_sec` within the throughput band.
//!
//! By default only single-thread throughput is gated: multi-thread
//! speedups on shared CI runners are noise-dominated, while
//! `items_per_sec_1t` on the same runner class is stable enough for a
//! 25% band. A dedicated CI leg opts into the per-thread-count
//! baseline with [`GateConfig::require_2t`] (the `--require-2t` flag):
//! it additionally gates each stage's `items_per_sec_2t` and its
//! 2-thread scaling ratio `speedup_2t`, so a change that quietly
//! serializes a parallel stage (speedup collapses while 1-thread
//! throughput is unchanged) fails the gate. The JSON parsing lives in
//! [`crate::json`], shared with the accuracy gate (`eval`) — the bench
//! emits a small, known shape and the crate policy is no third-party
//! dependencies.

pub use crate::json::Json;

/// Gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Maximum tolerated single-thread throughput drop, in percent of
    /// the baseline's `items_per_sec_1t`. With [`GateConfig::require_2t`]
    /// the same band also applies to `items_per_sec_2t` and `speedup_2t`.
    pub max_drop_pct: f64,
    /// Also gate the per-thread-count baseline: each baseline stage's
    /// `items_per_sec_2t` and `speedup_2t` must be present in the fresh
    /// results and must not drop by more than `max_drop_pct` percent.
    /// Off by default — only the dedicated 2-thread CI leg (which pins
    /// runner class and thread count) opts in via `--require-2t`.
    pub require_2t: bool,
}

impl Default for GateConfig {
    fn default() -> Self {
        // 25%: wide enough for shared-runner noise on sub-100ms stages,
        // tight enough to catch an accidental algorithmic regression
        // (the fallback paths this PR replaces were 2×+ slower).
        GateConfig { max_drop_pct: 25.0, require_2t: false }
    }
}

/// The overhead sections the gate checks against their own budgets.
const OVERHEAD_SECTIONS: [&str; 5] =
    ["fault_isolation", "checkpoint", "observability", "serve", "storage"];

/// Compares fresh bench results against the committed baseline and
/// returns every violation as a human-readable line. Empty = pass.
pub fn compare(baseline: &Json, fresh: &Json, cfg: GateConfig) -> Vec<String> {
    let mut violations = Vec::new();

    // The sweep size lives under `sweep`; older files spelled it
    // `scale` (a string — the modern `scale` key is the out-of-core
    // section object, on which `as_str` is `None`, so the fallback
    // cannot misread it).
    fn sweep_of(doc: &Json) -> &str {
        doc.get("sweep")
            .and_then(Json::as_str)
            .or_else(|| doc.get("scale").and_then(Json::as_str))
            .unwrap_or("?")
    }
    let b_scale = sweep_of(baseline);
    let f_scale = sweep_of(fresh);
    if b_scale != f_scale {
        violations.push(format!(
            "scale mismatch: baseline ran at `{b_scale}`, fresh at `{f_scale}` — throughput not comparable"
        ));
        return violations;
    }

    let empty: [Json; 0] = [];
    let fresh_stages = fresh.get("stages").and_then(Json::as_arr).unwrap_or(&empty);
    for stage in baseline.get("stages").and_then(Json::as_arr).unwrap_or(&empty) {
        let name = stage.get("stage").and_then(Json::as_str).unwrap_or("?");
        let Some(base_ips) = stage.get("items_per_sec_1t").and_then(Json::as_num) else {
            continue;
        };
        let found =
            fresh_stages.iter().find(|s| s.get("stage").and_then(Json::as_str) == Some(name));
        let Some(found) = found else {
            violations
                .push(format!("stage `{name}` present in baseline but missing from fresh results"));
            continue;
        };
        let fresh_ips = found.get("items_per_sec_1t").and_then(Json::as_num).unwrap_or(0.0);
        if base_ips > 0.0 {
            let drop_pct = 100.0 * (base_ips - fresh_ips) / base_ips;
            if drop_pct > cfg.max_drop_pct {
                violations.push(format!(
                    "stage `{name}`: items_per_sec_1t dropped {drop_pct:.1}% \
                     ({base_ips:.1}/s -> {fresh_ips:.1}/s, limit {limit:.0}%)",
                    limit = cfg.max_drop_pct
                ));
            }
        }
        if cfg.require_2t {
            for key in ["items_per_sec_2t", "speedup_2t"] {
                let Some(base) = stage.get(key).and_then(Json::as_num) else {
                    continue;
                };
                let Some(fresh_val) = found.get(key).and_then(Json::as_num) else {
                    violations.push(format!(
                        "stage `{name}`: `{key}` in baseline but missing from fresh results \
                         (per-thread baseline required)"
                    ));
                    continue;
                };
                if base > 0.0 {
                    let drop_pct = 100.0 * (base - fresh_val) / base;
                    if drop_pct > cfg.max_drop_pct {
                        violations.push(format!(
                            "stage `{name}`: {key} dropped {drop_pct:.1}% \
                             ({base:.3} -> {fresh_val:.3}, limit {limit:.0}%)",
                            limit = cfg.max_drop_pct
                        ));
                    }
                }
            }
        }
    }

    for section in OVERHEAD_SECTIONS {
        if baseline.get(section).is_none() {
            continue;
        }
        let Some(s) = fresh.get(section) else {
            violations.push(format!("overhead section `{section}` missing from fresh results"));
            continue;
        };
        let overhead = s.get("overhead_pct").and_then(Json::as_num).unwrap_or(f64::INFINITY);
        let target = s.get("target_pct").and_then(Json::as_num).unwrap_or(0.0);
        if overhead > target {
            violations.push(format!(
                "overhead `{section}`: {overhead:.2}% exceeds its {target:.1}% budget"
            ));
        }
    }

    check_scale_section(baseline, fresh, cfg, &mut violations);

    violations
}

/// How much a fresh peak RSS may exceed the baseline's before the gate
/// trips. 1.5× absorbs allocator and runner noise while rejecting a
/// genuine memory-behavior regression (the negative test doubles RSS).
const RSS_GROWTH_LIMIT: f64 = 1.5;

/// Gates the out-of-core `scale` section (written by `scale_bench`):
/// tier identity, digest equivalence with the in-memory path, peak RSS
/// against both the absolute budget and the baseline, and per-stage
/// streaming throughput. Skipped entirely when the baseline has no
/// section — sweeps that never ran the scale tier are not penalised.
fn check_scale_section(
    baseline: &Json,
    fresh: &Json,
    cfg: GateConfig,
    violations: &mut Vec<String>,
) {
    // Only the modern object form counts; a legacy `"scale":"full"`
    // string is the sweep size, not this section.
    let Some(base) = baseline.get("scale").filter(|s| matches!(s, Json::Obj(_))) else {
        return;
    };
    let Some(found) = fresh.get("scale").filter(|s| matches!(s, Json::Obj(_))) else {
        violations.push("scale section present in baseline but missing from fresh results".into());
        return;
    };
    let b_tier = base.get("tier").and_then(Json::as_str).unwrap_or("?");
    let f_tier = found.get("tier").and_then(Json::as_str).unwrap_or("?");
    if b_tier != f_tier {
        violations
            .push(format!("scale tier mismatch: baseline ran `{b_tier}`, fresh ran `{f_tier}`"));
        return;
    }
    if found.get("digest_ok").and_then(Json::as_bool) != Some(true) {
        violations.push(
            "scale: out-of-core digest no longer matches the in-memory path (digest_ok)".into(),
        );
    }
    let fresh_rss = found.get("peak_rss_bytes").and_then(Json::as_num).unwrap_or(f64::INFINITY);
    let rss_budget = found.get("rss_budget_bytes").and_then(Json::as_num).unwrap_or(0.0);
    if fresh_rss > rss_budget {
        violations.push(format!(
            "scale: peak RSS {fresh_rss:.0} bytes exceeds the {rss_budget:.0}-byte budget \
             (out-of-core path held too much resident)"
        ));
    }
    if let Some(base_rss) = base.get("peak_rss_bytes").and_then(Json::as_num) {
        if base_rss > 0.0 && fresh_rss > base_rss * RSS_GROWTH_LIMIT {
            violations.push(format!(
                "scale: peak RSS grew {ratio:.2}x over baseline \
                 ({base_rss:.0} -> {fresh_rss:.0} bytes, limit {RSS_GROWTH_LIMIT}x)",
                ratio = fresh_rss / base_rss
            ));
        }
    }
    let empty: [Json; 0] = [];
    let fresh_stages = found.get("stages").and_then(Json::as_arr).unwrap_or(&empty);
    for stage in base.get("stages").and_then(Json::as_arr).unwrap_or(&empty) {
        let name = stage.get("stage").and_then(Json::as_str).unwrap_or("?");
        let Some(base_cps) = stage.get("cells_per_sec").and_then(Json::as_num) else {
            continue;
        };
        let found_stage =
            fresh_stages.iter().find(|s| s.get("stage").and_then(Json::as_str) == Some(name));
        let Some(found_stage) = found_stage else {
            violations.push(format!(
                "scale stage `{name}` present in baseline but missing from fresh results"
            ));
            continue;
        };
        let fresh_cps = found_stage.get("cells_per_sec").and_then(Json::as_num).unwrap_or(0.0);
        if base_cps > 0.0 {
            let drop_pct = 100.0 * (base_cps - fresh_cps) / base_cps;
            if drop_pct > cfg.max_drop_pct {
                violations.push(format!(
                    "scale stage `{name}`: cells_per_sec dropped {drop_pct:.1}% \
                     ({base_cps:.1}/s -> {fresh_cps:.1}/s, limit {limit:.0}%)",
                    limit = cfg.max_drop_pct
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_baseline() -> Json {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stages.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_stages.json");
        Json::parse(&text).expect("baseline parses")
    }

    /// Rebuilds the baseline with one stage's throughput scaled.
    fn with_scaled_stage(doc: &Json, stage_name: &str, factor: f64) -> Json {
        with_scaled_stage_key(doc, stage_name, "items_per_sec_1t", factor)
    }

    /// Rebuilds the baseline with one numeric key of one stage scaled.
    fn with_scaled_stage_key(doc: &Json, stage_name: &str, key: &str, factor: f64) -> Json {
        let Json::Obj(fields) = doc else { panic!("doc is an object") };
        let fields = fields
            .iter()
            .map(|(k, v)| {
                if k != "stages" {
                    return (k.clone(), v.clone());
                }
                let stages = v
                    .as_arr()
                    .expect("stages array")
                    .iter()
                    .map(|s| {
                        if s.get("stage").and_then(Json::as_str) != Some(stage_name) {
                            return s.clone();
                        }
                        let Json::Obj(sf) = s else { panic!("stage is an object") };
                        Json::Obj(
                            sf.iter()
                                .map(|(sk, sv)| {
                                    let sv = if sk == key {
                                        Json::Num(sv.as_num().unwrap() * factor)
                                    } else {
                                        sv.clone()
                                    };
                                    (sk.clone(), sv)
                                })
                                .collect(),
                        )
                    })
                    .collect();
                (k.clone(), Json::Arr(stages))
            })
            .collect();
        Json::Obj(fields)
    }

    #[test]
    fn committed_baseline_parses_and_passes_against_itself() {
        let doc = committed_baseline();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("stages"));
        assert!(!doc.get("stages").and_then(Json::as_arr).unwrap_or(&[]).is_empty());
        let violations = compare(&doc, &doc, GateConfig::default());
        assert!(violations.is_empty(), "self-comparison must pass: {violations:?}");
    }

    #[test]
    fn gate_rejects_a_thirty_percent_regression() {
        // The negative control the CI job relies on: a synthetic 30%
        // single-thread throughput drop on the classify stage must trip
        // the 25% gate.
        let baseline = committed_baseline();
        let regressed = with_scaled_stage(&baseline, "classify", 0.70);
        let violations = compare(&baseline, &regressed, GateConfig::default());
        assert_eq!(violations.len(), 1, "exactly the classify clause: {violations:?}");
        assert!(violations[0].contains("classify") && violations[0].contains("30.0%"));
        // A 20% drop stays inside the band.
        let ok = with_scaled_stage(&baseline, "classify", 0.80);
        assert!(compare(&baseline, &ok, GateConfig::default()).is_empty());
        // A tighter configured limit catches it.
        let tight =
            compare(&baseline, &ok, GateConfig { max_drop_pct: 10.0, ..Default::default() });
        assert_eq!(tight.len(), 1);
    }

    #[test]
    fn require_2t_rejects_a_scaling_regression() {
        // The negative control for the per-thread baseline: halving a
        // stage's 2-thread scaling ratio — a change that serializes the
        // stage without touching its single-thread throughput — must
        // trip the `--require-2t` gate and pass the default one.
        let baseline = committed_baseline();
        let regressed = with_scaled_stage_key(&baseline, "classify", "speedup_2t", 0.5);
        assert!(
            compare(&baseline, &regressed, GateConfig::default()).is_empty(),
            "default gate does not watch scaling"
        );
        let strict = GateConfig { require_2t: true, ..Default::default() };
        let v = compare(&baseline, &regressed, strict);
        assert_eq!(v.len(), 1, "exactly the speedup_2t clause: {v:?}");
        assert!(v[0].contains("classify") && v[0].contains("speedup_2t"));

        // Dropping 2-thread throughput past the band also trips it.
        let slow2 = with_scaled_stage_key(&baseline, "embed", "items_per_sec_2t", 0.5);
        let v = compare(&baseline, &slow2, strict);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("embed") && v[0].contains("items_per_sec_2t"));

        // A fresh file missing the per-thread keys entirely fails too.
        let bare = Json::parse(
            r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":1e9,
                "items_per_sec_2t":1e9,"speedup_2t":9.9}]}"#,
        )
        .unwrap();
        let stripped =
            Json::parse(r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":1e9}]}"#)
                .unwrap();
        assert!(compare(&bare, &stripped, GateConfig::default()).is_empty());
        let v = compare(&bare, &stripped, strict);
        assert_eq!(v.len(), 2, "both per-thread keys reported missing: {v:?}");

        // The committed baseline passes against itself under the strict
        // gate — the keys it requires are present.
        assert!(compare(&baseline, &baseline, strict).is_empty());
    }

    #[test]
    fn gate_flags_missing_stage_and_scale_mismatch() {
        let baseline = Json::parse(
            r#"{"scale":"full","stages":[{"stage":"embed","items_per_sec_1t":100.0}]}"#,
        )
        .unwrap();
        let empty = Json::parse(r#"{"scale":"full","stages":[]}"#).unwrap();
        let v = compare(&baseline, &empty, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));

        let quick = Json::parse(r#"{"scale":"quick","stages":[]}"#).unwrap();
        let v = compare(&baseline, &quick, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("scale mismatch"));
    }

    /// A document with the modern `sweep` key plus a `scale` section.
    fn scale_doc(peak_rss: f64, digest_ok: bool, fold_cps: f64) -> Json {
        Json::parse(&format!(
            r#"{{"sweep":"full","stages":[],
                "scale":{{"tier":"large-ci","cells":1000000,"lake_bytes":50000000,
                          "peak_rss_bytes":{peak_rss},"rss_budget_bytes":900000000,
                          "spill_count":150,"digest_ok":{digest_ok},
                          "stages":[{{"stage":"featurize","cells_per_sec":200000.0}},
                                    {{"stage":"domain_folds","cells_per_sec":{fold_cps}}}]}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn legacy_scale_string_and_modern_sweep_key_interoperate() {
        // Pre-rename files spell the sweep size `"scale":"full"`; the
        // modern writer spells it `"sweep":"full"` and uses `scale` for
        // the out-of-core section. Both directions must compare cleanly.
        let legacy = Json::parse(r#"{"scale":"full","stages":[]}"#).unwrap();
        let modern = scale_doc(400e6, true, 100e3);
        assert!(compare(&legacy, &modern, GateConfig::default()).is_empty());
        // A modern baseline against a legacy fresh file: the scale
        // section is missing from fresh, which is a violation — but the
        // sweep sizes still match (no spurious "scale mismatch").
        let v = compare(&modern, &legacy, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("scale section") && v[0].contains("missing"));
        // Genuinely different sweep sizes are still caught across forms.
        let quick = Json::parse(r#"{"sweep":"quick","stages":[]}"#).unwrap();
        let v = compare(&legacy, &quick, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("scale mismatch"));
    }

    #[test]
    fn gate_rejects_a_scale_rss_blowup() {
        // The negative control for the scale tier: a synthetic 2× peak-RSS
        // blowup (a change that quietly re-materialises the lake in
        // memory) must trip the 1.5× growth clause.
        let baseline = scale_doc(400e6, true, 100e3);
        let blown = scale_doc(800e6, true, 100e3);
        let v = compare(&baseline, &blown, GateConfig::default());
        assert_eq!(v.len(), 1, "exactly the RSS clause: {v:?}");
        assert!(v[0].contains("peak RSS grew") && v[0].contains("2.00x"));
        // 1.4× stays inside the band.
        let ok = scale_doc(560e6, true, 100e3);
        assert!(compare(&baseline, &ok, GateConfig::default()).is_empty());
        // Blowing the absolute budget trips even without baseline growth:
        // both legs at 2× budget report growth AND budget violations.
        let huge = scale_doc(2000e6, true, 100e3);
        let v = compare(&huge, &huge, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("exceeds the") && v[0].contains("budget"));
    }

    #[test]
    fn gate_rejects_scale_digest_and_throughput_regressions() {
        let baseline = scale_doc(400e6, true, 100e3);
        // Digest divergence between the out-of-core and in-memory paths
        // is a correctness failure, not a perf number.
        let diverged = scale_doc(400e6, false, 100e3);
        let v = compare(&baseline, &diverged, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("digest_ok"));
        // A >25% cells/s drop on one streaming stage trips its clause.
        let slow = scale_doc(400e6, true, 60e3);
        let v = compare(&baseline, &slow, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("domain_folds") && v[0].contains("40.0%"));
        // Tier mismatch short-circuits the rest of the section.
        let other_text = scale_doc(400e6, true, 100e3).render().replace("large-ci", "large");
        let other = Json::parse(&other_text).unwrap();
        let v = compare(&baseline, &other, GateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("tier mismatch"));
        // Self-comparison passes.
        assert!(compare(&baseline, &baseline, GateConfig::default()).is_empty());
    }

    #[test]
    fn gate_flags_blown_overhead_budget() {
        let baseline = Json::parse(
            r#"{"scale":"full","stages":[],
                "observability":{"overhead_pct":1.0,"target_pct":5.0}}"#,
        )
        .unwrap();
        let blown = Json::parse(
            r#"{"scale":"full","stages":[],
                "observability":{"overhead_pct":7.5,"target_pct":5.0}}"#,
        )
        .unwrap();
        assert!(compare(&baseline, &baseline, GateConfig::default()).is_empty());
        let v = compare(&baseline, &blown, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("observability") && v[0].contains("7.50%"));
        // Section disappearing entirely is also a violation.
        let gone = Json::parse(r#"{"scale":"full","stages":[]}"#).unwrap();
        let v = compare(&baseline, &gone, GateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"));
    }
}
