//! # matelda-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§4). Each `src/bin/figN.rs` / `src/bin/tableN.rs`
//! binary sweeps the corresponding workload and prints the same rows or
//! series the paper reports; `benches/` holds Criterion micro-benchmarks
//! for the substrates.
//!
//! Conventions:
//!
//! * results are averaged over independent seeds (the paper averages 3–5
//!   runs) and printed as aligned text tables, and also written as CSV to
//!   `results/`;
//! * the environment variable `MATELDA_SCALE` picks the sweep size:
//!   `quick` (sanity), `small` (reduced lakes), or `full` (paper-shaped
//!   lakes; the default).

pub mod eval;
pub mod gate;
pub mod json;

use matelda_baselines::{Budget, ErrorDetector};
use matelda_core::{Matelda, MateldaConfig};
pub use matelda_exec::RunReport;
use matelda_lakegen::GeneratedLake;
use matelda_table::{CellMask, Confusion, Labeler, Lake, Oracle};
use std::fmt::Write as _;
use std::time::Instant;

/// Sweep size selected via `MATELDA_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny lakes, two budgets — wiring checks.
    Quick,
    /// Reduced table counts — minutes.
    Small,
    /// Paper-shaped lakes — the real reproduction.
    Full,
    /// The out-of-core CI tier: a generated lake of ≥10⁶ cells streamed
    /// through the out-of-core driver under a peak-RSS budget (see
    /// `scale_bench`).
    LargeCi,
    /// The unbounded out-of-core tier: ≥10⁷ cells, hundreds of tables.
    Large,
}

impl Scale {
    /// Reads `MATELDA_SCALE` (default `full`).
    pub fn from_env() -> Self {
        match std::env::var("MATELDA_SCALE").unwrap_or_default().as_str() {
            "quick" => Scale::Quick,
            "small" => Scale::Small,
            "large-ci" => Scale::LargeCi,
            "large" => Scale::Large,
            _ => Scale::Full,
        }
    }

    /// Scales a table count down for the smaller profiles. The large
    /// tiers never shrink an experiment sweep — they exist for the
    /// out-of-core path, which sizes its lake from
    /// `matelda_lakegen::ScaleTier` instead.
    pub fn tables(self, full: usize) -> usize {
        match self {
            Scale::Quick => full.min(8),
            Scale::Small => (full / 4).max(8).min(full),
            Scale::Full | Scale::LargeCi | Scale::Large => full,
        }
    }

    /// The scale's name as recorded in bench/eval result files.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Small => "small",
            Scale::Full => "full",
            Scale::LargeCi => "large-ci",
            Scale::Large => "large",
        }
    }

    /// Number of independent seeds to average over. The paper averages
    /// 3–5 runs on a 64-core machine; this reproduction defaults to 2 at
    /// full scale to fit a single-core budget (set `MATELDA_SEEDS` to
    /// override). The large tiers run one seed — a single pass is the
    /// point.
    pub fn seeds(self) -> u64 {
        if let Ok(s) = std::env::var("MATELDA_SEEDS") {
            if let Ok(n) = s.parse::<u64>() {
                return n.max(1);
            }
        }
        match self {
            Scale::Quick => 1,
            Scale::Small => 2,
            Scale::Full => 2,
            Scale::LargeCi | Scale::Large => 1,
        }
    }
}

/// The Matelda pipeline behind the uniform [`ErrorDetector`] interface.
pub struct MateldaSystem {
    /// Display name (e.g. `Matelda`, `Matelda-EDF`).
    pub label: String,
    /// Pipeline configuration.
    pub config: MateldaConfig,
}

impl MateldaSystem {
    /// The standard configuration.
    pub fn standard() -> Self {
        Self { label: "Matelda".to_string(), config: MateldaConfig::default() }
    }

    /// A named variant.
    pub fn variant(label: &str, config: MateldaConfig) -> Self {
        Self { label: label.to_string(), config }
    }
}

impl ErrorDetector for MateldaSystem {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: Budget) -> CellMask {
        Matelda::new(self.config.clone()).detect(lake, labeler, budget.total_cells(lake)).predicted
    }

    fn detect_with_report(
        &self,
        lake: &Lake,
        labeler: &mut dyn Labeler,
        budget: Budget,
    ) -> (CellMask, RunReport) {
        let result =
            Matelda::new(self.config.clone()).detect(lake, labeler, budget.total_cells(lake));
        (result.predicted, result.report)
    }
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Cell-level precision.
    pub precision: f64,
    /// Cell-level recall.
    pub recall: f64,
    /// Cell-level F1.
    pub f1: f64,
    /// Wall-clock seconds for the detect call.
    pub seconds: f64,
    /// Labels drawn from the oracle.
    pub labels: usize,
    /// Per-stage instrumentation of the (last) run; empty for systems
    /// without staged internals.
    pub report: RunReport,
    /// The predicted error mask — kept so the eval recorder can break
    /// recall down per error type against the lake's typed truth.
    pub predicted: CellMask,
}

/// Runs one system once on a generated lake.
pub fn run_once(system: &dyn ErrorDetector, lake: &GeneratedLake, budget: Budget) -> RunResult {
    let mut oracle = Oracle::new(&lake.errors);
    let start = Instant::now();
    let (predicted, report) = system.detect_with_report(&lake.dirty, &mut oracle, budget);
    let seconds = start.elapsed().as_secs_f64();
    let conf = Confusion::from_masks(&predicted, &lake.errors);
    RunResult {
        precision: conf.precision(),
        recall: conf.recall(),
        f1: conf.f1(),
        seconds,
        labels: oracle.labels_used(),
        report,
        predicted,
    }
}

/// Averages runs over lakes generated from several seeds. The returned
/// report and predicted mask are the last seed's (stage proportions are
/// stable across seeds; metrics stay attributable to one concrete run).
pub fn run_averaged(
    system: &dyn ErrorDetector,
    generate: &dyn Fn(u64) -> GeneratedLake,
    budget: Budget,
    seeds: u64,
) -> RunResult {
    let (mut precision, mut recall, mut f1, mut seconds) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut labels = 0usize;
    let mut last: Option<RunResult> = None;
    for seed in 0..seeds {
        let lake = generate(seed + 1);
        let r = run_once(system, &lake, budget);
        precision += r.precision;
        recall += r.recall;
        f1 += r.f1;
        seconds += r.seconds;
        labels += r.labels;
        last = Some(r);
    }
    let last = last.expect("at least one seed");
    let k = seeds as f64;
    RunResult {
        precision: precision / k,
        recall: recall / k,
        f1: f1 / k,
        seconds: seconds / k,
        labels: (labels as f64 / k).round() as usize,
        report: last.report,
        predicted: last.predicted,
    }
}

/// Prints one system's per-stage report (used by every bench binary to
/// surface stage timings for its headline runs). Systems without staged
/// internals produce no output.
pub fn print_stage_report(label: &str, report: &RunReport) {
    if report.stages.is_empty() {
        return;
    }
    println!("\n[stages] {label}");
    print!("{}", report.render());
}

/// An aligned text table builder for harness output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(n_cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>width$}", width = widths.get(i).copied().unwrap_or(0));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV under `results/`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        let mut s = String::new();
        s.push_str(&self.header.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        std::fs::write(format!("results/{name}.csv"), s)
    }
}

/// Formats a ratio as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats seconds.
pub fn secs(x: f64) -> String {
    format!("{x:.2}s")
}

/// The paper's Figure 3/4 budget axis: labeled tuples per table.
pub fn budget_axis(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Quick => vec![1.0, 5.0],
        Scale::Small => vec![0.5, 1.0, 2.0, 5.0, 10.0],
        Scale::Full | Scale::LargeCi | Scale::Large => {
            vec![0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_lakegen::QuintetLake;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["sys", "f1"]);
        t.row(vec!["Matelda".into(), "79.0%".into()]);
        t.row(vec!["GX".into(), "0.1%".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sys"));
        assert!(lines[2].ends_with("79.0%"));
    }

    #[test]
    fn run_once_produces_metrics() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(1);
        let sys = MateldaSystem::standard();
        let r = run_once(&sys, &lake, Budget::per_table(2.0));
        assert!(r.f1 >= 0.0 && r.f1 <= 1.0);
        assert!(r.seconds > 0.0);
        assert!(r.labels > 0);
    }

    #[test]
    fn scale_parsing_and_knobs() {
        assert_eq!(Scale::Quick.tables(143), 8);
        assert_eq!(Scale::Full.tables(143), 143);
        assert!(Scale::Small.tables(143) < 143);
        assert_eq!(Scale::Quick.seeds(), 1);
        assert_eq!(budget_axis(Scale::Full).len(), 8);
    }
}
