//! Figure 6 — Domain-folding design impact.
//!
//! Matelda-Standard vs. Matelda-Santos (unionability-score folding) vs.
//! Matelda-RS (row-sampled embeddings) on DGov-NTR: effectiveness per
//! budget plus average runtimes (§4.5.2 quotes 4963s Santos / 1130s
//! Standard / 998s RS at the authors' scale — the *ordering* is the
//! reproducible claim). On Quintet the paper notes SANTOS produces the
//! same folds as the standard method; we verify that too.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, secs, MateldaSystem, RunReport, Scale,
    TextTable,
};
use matelda_core::{domain_folds, DomainFolding, MateldaConfig};
use matelda_embed::encoder::HashedEncoder;
use matelda_lakegen::{DGovLake, QuintetLake};
use std::collections::BTreeMap;

fn variants() -> Vec<MateldaSystem> {
    vec![
        MateldaSystem::standard(),
        MateldaSystem::variant(
            "Matelda-Santos",
            MateldaConfig { domain_folding: DomainFolding::SantosLike, ..Default::default() },
        ),
        MateldaSystem::variant(
            "Matelda-RS",
            // The paper samples 1% of rows; our tables are ~50 rows, so the
            // equivalent "small but non-degenerate" sample is 10%.
            MateldaConfig { domain_folding: DomainFolding::RowSampling(0.1), ..Default::default() },
        ),
        // Extension: SANTOS unionability over MinHash sketches — the
        // scalable variant of the same folding idea.
        MateldaSystem::variant(
            "Matelda-SantosMH",
            MateldaConfig { domain_folding: DomainFolding::SantosSketch(64), ..Default::default() },
        ),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Figure 6: Domain folding design impact (scale: {scale:?}) ===\n");

    // Quintet fold-equality check (the reason the paper shows no Quintet
    // graph for SANTOS).
    let quintet = QuintetLake::default().generate(1);
    let encoder = HashedEncoder::default();
    let norm = |mut folds: Vec<Vec<usize>>| {
        folds.iter_mut().for_each(|f| f.sort_unstable());
        folds.sort();
        folds
    };
    let standard_folds = norm(
        domain_folds(&quintet.dirty, DomainFolding::Hdbscan, &encoder, 0)
            .iter()
            .map(|f| f.tables())
            .collect(),
    );
    let santos_folds = norm(
        domain_folds(&quintet.dirty, DomainFolding::SantosLike, &encoder, 0)
            .iter()
            .map(|f| f.tables())
            .collect(),
    );
    println!(
        "Quintet: SANTOS folds == standard folds? {} ({:?})\n",
        standard_folds == santos_folds,
        santos_folds
    );

    let n = scale.tables(143);
    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("fig6", scale);
    let mut acc: BTreeMap<(String, usize), (f64, f64, usize)> = BTreeMap::new();
    // Last per-stage report per variant, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();
    for seed in 1..=seeds {
        let lake = DGovLake::ntr().with_n_tables(n).generate(seed);
        for (bi, &b) in budgets.iter().enumerate() {
            for sys in variants() {
                let r = run_once(&sys, &lake, Budget::per_table(b));
                rec.record_run("DGov-NTR", &sys.label, b, seed, &r, &lake);
                reports.insert(sys.label.clone(), r.report.clone());
                let e = acc.entry((sys.label.clone(), bi)).or_insert((0.0, 0.0, 0));
                e.0 += r.f1;
                e.1 += r.seconds;
                e.2 += 1;
            }
        }
    }

    let names: Vec<String> = variants().iter().map(|v| v.label.clone()).collect();
    let mut header = vec!["tuples/table".to_string()];
    header.extend(names.iter().cloned());
    header.extend(names.iter().map(|n| format!("{n} [time]")));
    let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
    let mut avg_time: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for (bi, &b) in budgets.iter().enumerate() {
        let mut row = vec![format!("{b}")];
        for name in &names {
            let (f1, _, k) = acc[&(name.clone(), bi)];
            row.push(pct(f1 / k as f64));
        }
        for name in &names {
            let (_, s, k) = acc[&(name.clone(), bi)];
            row.push(secs(s / k as f64));
            let e = avg_time.entry(name.clone()).or_insert((0.0, 0));
            e.0 += s;
            e.1 += k;
        }
        table.row(row);
    }
    println!("--- DGov-NTR: F1 and runtime per domain-folding design ---");
    println!("{}", table.render());
    let _ = table.write_csv("fig6_dgov_ntr");

    rec.flush().expect("write EVAL matrix");

    println!("average runtimes:");
    for (name, (s, k)) in &avg_time {
        println!("  {name}: {}", secs(s / *k as f64));
    }
    for (name, report) in &reports {
        print_stage_report(name, report);
    }

    println!("\nshape checks (paper §4.5.2): Santos ≈ Standard ≈ RS in F1;");
    println!("runtime Santos > Standard > RS. Extension: SantosMH (MinHash-");
    println!("sketched unionability) should match Santos's F1 at a fraction of");
    println!("its folding cost.");
}
