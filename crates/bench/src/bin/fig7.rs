//! Figure 7 — Quality-based cell folding: feature impact analysis.
//!
//! Matelda with all features vs. Matelda-NOD (no outlier detectors), -NTD
//! (no typo detector) and -NRVD (no rule-violation detectors) on Quintet
//! and DGov-NTR.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_core::MateldaConfig;
use matelda_detect::FeatureConfig;
use matelda_lakegen::{DGovLake, GeneratedLake, QuintetLake};
use std::collections::BTreeMap;

fn variants() -> Vec<MateldaSystem> {
    vec![
        MateldaSystem::standard(),
        MateldaSystem::variant(
            "Matelda-NOD",
            MateldaConfig { features: FeatureConfig::no_outliers(), ..Default::default() },
        ),
        MateldaSystem::variant(
            "Matelda-NTD",
            MateldaConfig { features: FeatureConfig::no_typos(), ..Default::default() },
        ),
        MateldaSystem::variant(
            "Matelda-NRVD",
            MateldaConfig { features: FeatureConfig::no_rules(), ..Default::default() },
        ),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Figure 7: Quality-fold feature ablations (scale: {scale:?}) ===\n");

    let n = scale.tables(143);
    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("Quintet", Box::new(|s| QuintetLake::default().generate(s))),
        ("DGov-NTR", Box::new(move |s| DGovLake::ntr().with_n_tables(n).generate(s))),
    ];
    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("fig7", scale);
    // Last per-stage report per variant, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    for (lake_name, generate) in &lakes {
        let mut acc: BTreeMap<(String, usize), (f64, usize)> = BTreeMap::new();
        for seed in 1..=seeds {
            let lake = generate(seed);
            for (bi, &b) in budgets.iter().enumerate() {
                for sys in variants() {
                    let r = run_once(&sys, &lake, Budget::per_table(b));
                    rec.record_run(lake_name, &sys.label, b, seed, &r, &lake);
                    reports.insert(sys.label.clone(), r.report.clone());
                    let e = acc.entry((sys.label.clone(), bi)).or_insert((0.0, 0));
                    e.0 += r.f1;
                    e.1 += 1;
                }
            }
        }
        let names: Vec<String> = variants().iter().map(|v| v.label.clone()).collect();
        let mut header = vec!["tuples/table".to_string()];
        header.extend(names.iter().cloned());
        let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
        for (bi, &b) in budgets.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for name in &names {
                let (f1, k) = acc[&(name.clone(), bi)];
                row.push(pct(f1 / k as f64));
            }
            table.row(row);
        }
        println!("--- {lake_name}: F1 per feature configuration ---");
        println!("{}", table.render());
        let _ = table.write_csv(&format!("fig7_{}", lake_name.to_lowercase().replace('-', "_")));
    }

    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("shape checks (paper §4.5.3): full features win for most budgets;");
    println!("NOD is consistently the worst ablation; the typo/rule detectors'");
    println!("benefit grows with budget on DGov-NTR.");
}
