//! Figure 3 — Effectiveness of Matelda vs. baselines.
//!
//! For each of the four ground-truth lakes (Quintet, REIN, DGov-NTR,
//! DGov-NT) this sweeps the labeling budget (labeled tuples per table,
//! 0.1–20) over all systems and prints the F1 series the paper plots,
//! plus the precision/recall detail at 2 tuples/table that §4.2 quotes.
//!
//! The paper restricts HoloDetect by resources: Quintet at every budget,
//! DGov-NTR only at budgets {2, 5, 10, 20}, not run on REIN/DGov-NT. The
//! same gating applies here.

use matelda_baselines::aspell::Aspell;
use matelda_baselines::deequ::Deequ;
use matelda_baselines::gx::Gx;
use matelda_baselines::holodetect::HoloDetect;
use matelda_baselines::raha::{Raha, RahaVariant};
use matelda_baselines::unidetect::UniDetect;
use matelda_baselines::{Budget, ErrorDetector};
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_lakegen::{DGovLake, GeneratedLake, QuintetLake, ReinLake, WdcLake};
use std::collections::BTreeMap;

fn holodetect_budgets(lake_name: &str) -> Option<Vec<f64>> {
    match lake_name {
        "Quintet" => Some(vec![1.0, 2.0, 5.0, 10.0, 20.0]),
        "DGov-NTR" => Some(vec![2.0, 5.0, 10.0, 20.0]),
        _ => None, // paper: not run on REIN / DGov-NT (resources)
    }
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Figure 3: Effectiveness of Matelda vs. Baselines (scale: {scale:?}) ===\n");

    // Uni-Detect is pre-trained on a clean web-table corpus, per §4.1.4.
    let pretrain = WdcLake { n_tables: scale.tables(60), ..WdcLake::default() }.generate(777);
    let unidetect = UniDetect::pretrain(&[&pretrain.clean]);

    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("Quintet", Box::new(|s| QuintetLake::default().generate(s))),
        ("REIN", Box::new(|s| ReinLake::default().generate(s))),
        ("DGov-NTR", {
            let n = scale.tables(143);
            Box::new(move |s| DGovLake::ntr().with_n_tables(n).generate(s))
        }),
        ("DGov-NT", {
            let n = scale.tables(159);
            Box::new(move |s| DGovLake::nt().with_n_tables(n).generate(s))
        }),
    ];

    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("fig3", scale);
    // Last non-empty per-stage report per system, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    for (lake_name, generate) in &lakes {
        // (system, budget-index) -> (f1 sum, p sum, r sum, count)
        let mut acc: BTreeMap<(String, usize), (f64, f64, f64, usize)> = BTreeMap::new();
        let mut system_order: Vec<String> = Vec::new();

        for seed in 1..=seeds {
            let lake = generate(seed);
            let mut systems: Vec<Box<dyn ErrorDetector>> = vec![
                Box::new(MateldaSystem::standard()),
                Box::new(Raha::new(RahaVariant::Standard)),
                Box::new(Raha::new(RahaVariant::RandomTables)),
                Box::new(Raha::new(RahaVariant::TwoLabelsPerCol)),
                Box::new(Raha::new(RahaVariant::TwentyLabelsPerCol)),
                Box::new(HoloDetect::default()),
                Box::new(unidetect.clone()),
                Box::new(Aspell::new()),
                Box::new(Deequ::new()),
                Box::new(Deequ::oracle(lake.clean.clone())),
                Box::new(Gx::new()),
                Box::new(Gx::oracle(lake.clean.clone())),
            ];
            if system_order.is_empty() {
                system_order = systems.iter().map(|s| s.name()).collect();
            }
            for (bi, &b) in budgets.iter().enumerate() {
                let budget = Budget::per_table(b);
                for system in &mut systems {
                    let name = system.name();
                    if !system.applicable(&lake.dirty, budget) {
                        continue;
                    }
                    if name == "HoloDetect" {
                        match holodetect_budgets(lake_name) {
                            Some(allowed) if allowed.contains(&b) => {}
                            _ => continue,
                        }
                    }
                    let r = run_once(system.as_ref(), &lake, budget);
                    rec.record_run(lake_name, &name, b, seed, &r, &lake);
                    if !r.report.stages.is_empty() {
                        reports.insert(name.clone(), r.report.clone());
                    }
                    let e = acc.entry((name, bi)).or_insert((0.0, 0.0, 0.0, 0));
                    e.0 += r.f1;
                    e.1 += r.precision;
                    e.2 += r.recall;
                    e.3 += 1;
                }
            }
        }

        // F1-vs-budget series (the figure itself).
        let mut header: Vec<&str> = vec!["tuples/table"];
        let names: Vec<String> = system_order.clone();
        for n in &names {
            header.push(n);
        }
        let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
        for (bi, &b) in budgets.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for name in &names {
                row.push(match acc.get(&(name.clone(), bi)) {
                    Some((f1, _, _, k)) if *k > 0 => pct(f1 / *k as f64),
                    _ => "n/a".to_string(),
                });
            }
            table.row(row);
        }
        println!("--- {lake_name}: F1 vs labeling budget ---");
        println!("{}", table.render());
        let _ = table.write_csv(&format!("fig3_{}", lake_name.to_lowercase().replace('-', "_")));

        // Precision/recall detail at 2 tuples per table (§4.2's quotes).
        if let Some(bi2) = budgets.iter().position(|&b| (b - 2.0).abs() < 1e-9) {
            let mut detail = TextTable::new(&["system", "precision", "recall", "f1"]);
            for name in &names {
                if let Some((f1, p, r, k)) = acc.get(&(name.clone(), bi2)) {
                    if *k > 0 {
                        let k = *k as f64;
                        detail.row(vec![name.clone(), pct(p / k), pct(r / k), pct(f1 / k)]);
                    }
                }
            }
            println!("--- {lake_name}: detail at 2 labeled tuples/table ---");
            println!("{}", detail.render());
        }
    }

    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("shape checks (paper expectations):");
    println!("  * Matelda should lead every lake for budgets < 10 tuples/table;");
    println!("  * Raha-Standard should close the gap at >= 10 tuples/table;");
    println!("  * Raha-2LPC/20LPC: high precision, very low recall;");
    println!("  * Uni-Detect & ASPELL: flat lines, precision >> recall;");
    println!("  * GX near zero; Deequ low but > GX; oracles higher.");
}
