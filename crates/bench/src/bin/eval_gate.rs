//! CI accuracy-regression gate (see `crates/bench/src/eval.rs`).
//!
//! ```text
//! eval_gate --baseline EVAL_matrix.json --fresh fresh.json \
//!     [--max-drop-pct 10]
//! ```
//!
//! Compares a freshly assembled accuracy matrix against the committed
//! baseline and exits non-zero listing every violated contract clause:
//! a per-cell F1 or recall drop beyond the band, a missing cell, or a
//! NaN / out-of-[0,1] metric.

use matelda_bench::eval::{compare_eval, EvalGateConfig};
use matelda_bench::json::Json;
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = None;
    let mut fresh = None;
    let mut cfg = EvalGateConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--fresh" => fresh = Some(value("--fresh")?),
            "--max-drop-pct" => {
                cfg.max_drop_pct = value("--max-drop-pct")?
                    .parse()
                    .map_err(|_| "--max-drop-pct needs a number".to_string())?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let baseline_path = baseline.ok_or("--baseline is required")?;
    let fresh_path = fresh.ok_or("--fresh is required")?;

    let violations = compare_eval(&load(&baseline_path)?, &load(&fresh_path)?, cfg);
    if violations.is_empty() {
        println!(
            "eval gate PASS: {fresh_path} within {limit}% of {baseline_path}",
            limit = cfg.max_drop_pct
        );
        return Ok(true);
    }
    eprintln!("eval gate FAIL: {n} violation(s)", n = violations.len());
    for v in &violations {
        eprintln!("  - {v}");
    }
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("eval_gate: {e}");
            eprintln!(
                "usage: eval_gate --baseline <committed.json> --fresh <fresh.json> \
                 [--max-drop-pct N]"
            );
            ExitCode::FAILURE
        }
    }
}
