//! Figure 8 — Training-phase design analysis.
//!
//! Matelda (one classifier per column) vs. Matelda-TPDF (one per domain
//! fold) vs. Matelda-TUCF (per-fold with 2k quality folds, half
//! unlabeled) on Quintet and DGov-NTR — F1 and runtime.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, secs, MateldaSystem, RunReport, Scale,
    TextTable,
};
use matelda_core::{MateldaConfig, TrainingStrategy};
use matelda_lakegen::{DGovLake, GeneratedLake, QuintetLake};
use std::collections::BTreeMap;

fn variants() -> Vec<MateldaSystem> {
    vec![
        MateldaSystem::standard(),
        MateldaSystem::variant(
            "Matelda-TPDF",
            MateldaConfig { training: TrainingStrategy::PerDomainFold, ..Default::default() },
        ),
        MateldaSystem::variant(
            "Matelda-TUCF",
            MateldaConfig { training: TrainingStrategy::UnlabeledCellFolds, ..Default::default() },
        ),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Figure 8: Training strategies (scale: {scale:?}) ===\n");

    let n = scale.tables(143);
    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("Quintet", Box::new(|s| QuintetLake::default().generate(s))),
        ("DGov-NTR", Box::new(move |s| DGovLake::ntr().with_n_tables(n).generate(s))),
    ];
    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("fig8", scale);
    // Last per-stage report per variant, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    for (lake_name, generate) in &lakes {
        let mut acc: BTreeMap<(String, usize), (f64, f64, usize)> = BTreeMap::new();
        for seed in 1..=seeds {
            let lake = generate(seed);
            for (bi, &b) in budgets.iter().enumerate() {
                for sys in variants() {
                    let r = run_once(&sys, &lake, Budget::per_table(b));
                    rec.record_run(lake_name, &sys.label, b, seed, &r, &lake);
                    reports.insert(sys.label.clone(), r.report.clone());
                    let e = acc.entry((sys.label.clone(), bi)).or_insert((0.0, 0.0, 0));
                    e.0 += r.f1;
                    e.1 += r.seconds;
                    e.2 += 1;
                }
            }
        }
        let names: Vec<String> = variants().iter().map(|v| v.label.clone()).collect();
        let mut header = vec!["tuples/table".to_string()];
        header.extend(names.iter().cloned());
        header.extend(names.iter().map(|n| format!("{n} [time]")));
        let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
        for (bi, &b) in budgets.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for name in &names {
                let (f1, _, k) = acc[&(name.clone(), bi)];
                row.push(pct(f1 / k as f64));
            }
            for name in &names {
                let (_, s, k) = acc[&(name.clone(), bi)];
                row.push(secs(s / k as f64));
            }
            table.row(row);
        }
        println!("--- {lake_name}: F1 and runtime per training strategy ---");
        println!("{}", table.render());
        let _ = table.write_csv(&format!("fig8_{}", lake_name.to_lowercase().replace('-', "_")));
    }

    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("shape checks (paper §4.5.4): Matelda and TPDF deliver the best F1;");
    println!("the standard per-column training is the most runtime-efficient of the");
    println!("two; TUCF is fastest but loses F1 to unlabeled folds.");
}
