//! Figure 4 — Ablation study on error types.
//!
//! Matelda vs. the strongest baselines (Raha variants, ASPELL) on three
//! single-error-type lakes: DGov-NO (numeric outliers only), DGov-Typo
//! (formatting & typos only), DGov-RV (rule violations only), sweeping the
//! labeling budget.

use matelda_baselines::aspell::Aspell;
use matelda_baselines::raha::{Raha, RahaVariant};
use matelda_baselines::{Budget, ErrorDetector};
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_lakegen::{DGovLake, GeneratedLake};
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Figure 4: Ablation on error types (scale: {scale:?}) ===\n");

    let n = scale.tables(96);
    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("DGov-NO", Box::new(move |s| DGovLake::no().with_n_tables(n).generate(s))),
        ("DGov-Typo", Box::new(move |s| DGovLake::typo().with_n_tables(n).generate(s))),
        ("DGov-RV", Box::new(move |s| DGovLake::rv().with_n_tables(n).generate(s))),
    ];
    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("fig4", scale);
    // Last non-empty per-stage report per system, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    for (lake_name, generate) in &lakes {
        let mut acc: BTreeMap<(String, usize), (f64, usize)> = BTreeMap::new();
        let mut order: Vec<String> = Vec::new();
        for seed in 1..=seeds {
            let lake = generate(seed);
            let systems: Vec<Box<dyn ErrorDetector>> = vec![
                Box::new(MateldaSystem::standard()),
                Box::new(Raha::new(RahaVariant::Standard)),
                Box::new(Raha::new(RahaVariant::RandomTables)),
                Box::new(Raha::new(RahaVariant::TwoLabelsPerCol)),
                Box::new(Raha::new(RahaVariant::TwentyLabelsPerCol)),
                Box::new(Aspell::new()),
            ];
            if order.is_empty() {
                order = systems.iter().map(|s| s.name()).collect();
            }
            for (bi, &b) in budgets.iter().enumerate() {
                let budget = Budget::per_table(b);
                for system in &systems {
                    if !system.applicable(&lake.dirty, budget) {
                        continue;
                    }
                    let r = run_once(system.as_ref(), &lake, budget);
                    rec.record_run(lake_name, &system.name(), b, seed, &r, &lake);
                    if !r.report.stages.is_empty() {
                        reports.insert(system.name(), r.report.clone());
                    }
                    let e = acc.entry((system.name(), bi)).or_insert((0.0, 0));
                    e.0 += r.f1;
                    e.1 += 1;
                }
            }
        }

        let mut header = vec!["tuples/table".to_string()];
        header.extend(order.iter().cloned());
        let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
        for (bi, &b) in budgets.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for name in &order {
                row.push(match acc.get(&(name.clone(), bi)) {
                    Some((f1, k)) if *k > 0 => pct(f1 / *k as f64),
                    _ => "n/a".to_string(),
                });
            }
            table.row(row);
        }
        println!("--- {lake_name}: F1 vs labeling budget ---");
        println!("{}", table.render());
        let _ = table.write_csv(&format!("fig4_{}", lake_name.to_lowercase().replace('-', "_")));
    }

    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("shape checks (paper §4.4):");
    println!("  * DGov-NO: Matelda above all baselines at every budget;");
    println!("  * DGov-Typo: Matelda ahead once ~0.3 tuples/table are labeled; Raha");
    println!("    catches up above ~15;");
    println!("  * DGov-RV: Matelda ≈ Raha from 1 tuple/table on (rule features work");
    println!("    across tables); ASPELL flat and weak everywhere except DGov-Typo.");
}
