//! Table 3 — Recall in capturing different error types in Quintet.
//!
//! The paper labels every Quintet error with a type (MV / REP / SEM /
//! TYP), runs each system with two labeled tuples per table, and reports
//! per-type recall plus total precision/recall. Here the generator's
//! injection report provides the typed masks directly (MV = missing
//! values, REP = formatting issues, SEM = FD violations, TYP = typos).

use matelda_baselines::holodetect::HoloDetect;
use matelda_baselines::raha::{Raha, RahaVariant};
use matelda_baselines::{Budget, ErrorDetector};
use matelda_bench::eval::{paper_category, EvalRecorder};
use matelda_bench::{pct, print_stage_report, MateldaSystem, RunReport, Scale, TextTable};
use matelda_lakegen::QuintetLake;
use matelda_table::{Confusion, Oracle, PerTypeRecall};

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Table 3: Recall per error type on Quintet (2 labeled tuples/table) ===\n");

    let systems: Vec<Box<dyn ErrorDetector>> = vec![
        Box::new(MateldaSystem::standard()),
        Box::new(Raha::new(RahaVariant::Standard)),
        Box::new(HoloDetect::default()),
    ];
    let budget = Budget::per_table(2.0);
    let categories = ["MV", "REP", "SEM", "TYP"];
    let mut rec = EvalRecorder::for_experiment("table3", scale);

    let mut table =
        TextTable::new(&["System", "MV", "REP", "SEM", "TYP", "Total Precision", "Total Recall"]);
    // Last per-stage report per system, printed once at the end.
    let mut last_report: Vec<(String, RunReport)> = Vec::new();
    for system in &systems {
        let mut recall_sums = [0.0f64; 4];
        let mut recall_counts = [0usize; 4];
        let (mut p_sum, mut r_sum) = (0.0f64, 0.0f64);
        for seed in 1..=seeds {
            let lake = QuintetLake::default().generate(seed);
            let mut oracle = Oracle::new(&lake.errors);
            let (predicted, report) = system.detect_with_report(&lake.dirty, &mut oracle, budget);
            if seed == seeds {
                last_report.push((system.name(), report));
            }
            let conf = Confusion::from_masks(&predicted, &lake.errors);
            p_sum += conf.precision();
            r_sum += conf.recall();
            rec.record_metrics(
                "Quintet",
                &system.name(),
                2.0,
                seed,
                conf.precision(),
                conf.recall(),
                conf.f1(),
            );
            rec.record_types("Quintet", &system.name(), 2.0, seed, &predicted, &lake.typed_errors);
            let typed: Vec<(String, matelda_table::CellMask)> = lake
                .typed_errors
                .iter()
                .map(|(n, m)| (paper_category(n).to_string(), m.clone()))
                .collect();
            let per = PerTypeRecall::compute(&predicted, &typed);
            for tr in &per.recalls {
                let Some(recall) = tr.recall else {
                    continue; // no errors of this type in this lake
                };
                if let Some(i) = categories.iter().position(|c| *c == tr.name) {
                    recall_sums[i] += recall;
                    recall_counts[i] += 1;
                }
            }
        }
        let k = seeds as f64;
        let mut row = vec![system.name()];
        for i in 0..4 {
            row.push(if recall_counts[i] > 0 {
                pct(recall_sums[i] / recall_counts[i] as f64)
            } else {
                "n/a".to_string()
            });
        }
        row.push(pct(p_sum / k));
        row.push(pct(r_sum / k));
        table.row(row);
    }
    println!("{}", table.render());
    let _ = table.write_csv("table3_quintet_error_types");
    rec.flush().expect("write EVAL matrix");

    for (name, report) in &last_report {
        print_stage_report(name, report);
    }
    println!();

    println!("shape checks (paper Table 3):");
    println!("  * Matelda leads every column; MV recall highest (~95%), REP high (~84%),");
    println!("    SEM moderate (~44%), TYP low (~14%);");
    println!("  * HoloDetect's total recall collapses (paper: 2%).");
}
