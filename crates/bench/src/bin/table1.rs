//! Table 1 — Dataset characteristics.
//!
//! Prints the realized characteristics of every generated lake (number of
//! tables, total cells, measured cell error rate, injected error types),
//! mirroring the paper's Table 1. Row counts are scaled to laptop size
//! (DESIGN.md), so `#Cells` is smaller than the paper's; table counts,
//! error rates and type mixes match.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{print_stage_report, run_once, MateldaSystem, Scale, TextTable};
use matelda_lakegen::{DGovLake, GeneratedLake, GitTablesLake, QuintetLake, ReinLake, WdcLake};

fn describe(table: &mut TextTable, name: &str, lake: &GeneratedLake) {
    let types: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
    table.row(vec![
        name.to_string(),
        lake.dirty.n_tables().to_string(),
        lake.dirty.n_cells().to_string(),
        format!("{:.1}%", 100.0 * lake.error_rate()),
        types.join(", "),
    ]);
}

fn main() {
    let scale = Scale::from_env();
    println!("=== Table 1: Dataset characteristics (scale: {scale:?}) ===\n");
    let mut t = TextTable::new(&["Name", "#Tables", "#Cells", "Error Rate", "Error Types"]);

    describe(&mut t, "Quintet", &QuintetLake::default().generate(1));
    describe(&mut t, "REIN", &ReinLake::default().generate(1));
    describe(&mut t, "DGov-NTR", &DGovLake::ntr().with_n_tables(scale.tables(143)).generate(1));
    describe(&mut t, "DGov-NT", &DGovLake::nt().with_n_tables(scale.tables(159)).generate(1));
    describe(&mut t, "DGov-NO", &DGovLake::no().with_n_tables(scale.tables(96)).generate(1));
    describe(&mut t, "DGov-Typo", &DGovLake::typo().with_n_tables(scale.tables(96)).generate(1));
    describe(&mut t, "DGov-RV", &DGovLake::rv().with_n_tables(scale.tables(96)).generate(1));
    describe(&mut t, "DGov-1K", &DGovLake::dgov_1k().with_n_tables(scale.tables(1173)).generate(1));
    describe(
        &mut t,
        "WDC",
        &WdcLake { n_tables: scale.tables(100), ..WdcLake::default() }.generate(1),
    );
    describe(
        &mut t,
        "GitTables",
        &GitTablesLake::default().with_n_tables(scale.tables(1000)).generate(1),
    );

    println!("{}", t.render());
    let _ = t.write_csv("table1_datasets");

    // One instrumented pipeline run on the smallest lake, so the dataset
    // table also records what the stages cost on it.
    let quintet = QuintetLake::default().generate(1);
    let r = run_once(&MateldaSystem::standard(), &quintet, Budget::per_table(2.0));
    let mut rec = EvalRecorder::for_experiment("table1", scale);
    rec.record_run("Quintet", "Matelda", 2.0, 1, &r, &quintet);
    rec.flush().expect("write EVAL matrix");
    print_stage_report("Matelda on Quintet (2 tuples/table)", &r.report);
    println!();

    println!("paper Table 1 (for comparison): Quintet 5 tables/9%; REIN 8/13%;");
    println!("DGov-NTR 143/16%; DGov-NT 159/15%; DGov-NO 96/2%; DGov-Typo 96/9%;");
    println!("DGov-RV 96/8%; DGov-1K 1173/unknown; WDC 100/unknown; GitTables 1000/unknown.");
}
