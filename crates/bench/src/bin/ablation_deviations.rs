//! Deviation ablation — empirical justification of the three places this
//! reproduction deliberately departs from the paper's letter (all
//! documented in DESIGN.md §9 and in the module docs):
//!
//! 1. **TF normalization** — Eq. 2 normalizes a value's count by the sum
//!    of all rows' counts; at realistic row counts every ratio collapses
//!    below θ = 0.1 and the histogram flags saturate. We normalize by the
//!    column's max count instead.
//! 2. **FD violation marking** — whole violating groups (Raha's
//!    column-local convention) vs only the minority rows.
//! 3. **Missing-value dimension** — the extra nullness bit that restores
//!    the visibility Raha's bag-of-characters gives empty cells.
//!
//! For each deviation the binary compares this repo's choice against the
//! literal alternative on Quintet and DGov-NTR at 2 labeled tuples/table.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    pct, print_stage_report, run_once, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_core::MateldaConfig;
use matelda_detect::FeatureConfig;
use matelda_lakegen::{DGovLake, GeneratedLake, QuintetLake};

fn with_features(label: &str, features: FeatureConfig) -> MateldaSystem {
    MateldaSystem::variant(label, MateldaConfig { features, ..Default::default() })
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Deviation ablation (scale: {scale:?}, 2 tuples/table) ===\n");

    let n = scale.tables(143);
    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("Quintet", Box::new(|s| QuintetLake::default().generate(s))),
        ("DGov-NTR", Box::new(move |s| DGovLake::ntr().with_n_tables(n).generate(s))),
    ];
    let budget = Budget::per_table(2.0);

    let variants = || {
        vec![
            with_features("this repo", FeatureConfig::default()),
            with_features(
                "Eq.2-literal TF",
                FeatureConfig { tf_eq2_literal: true, ..FeatureConfig::default() },
            ),
            with_features(
                "whole-group FD",
                FeatureConfig { fd_whole_group: true, ..FeatureConfig::default() },
            ),
            with_features(
                "no null flag",
                FeatureConfig { no_null_flag: true, ..FeatureConfig::default() },
            ),
        ]
    };

    let mut rec = EvalRecorder::for_experiment("ablation_deviations", scale);
    let mut table = TextTable::new(&["lake", "variant", "precision", "recall", "f1"]);
    // Last per-stage report per variant, printed once at the end.
    let mut reports: std::collections::BTreeMap<String, RunReport> =
        std::collections::BTreeMap::new();
    for (lake_name, generate) in &lakes {
        for sys in variants() {
            let (mut p, mut r, mut f1) = (0.0, 0.0, 0.0);
            for seed in 1..=seeds {
                let lake = generate(seed);
                let res = run_once(&sys, &lake, budget);
                rec.record_run(lake_name, &sys.label, 2.0, seed, &res, &lake);
                reports.insert(sys.label.clone(), res.report.clone());
                p += res.precision;
                r += res.recall;
                f1 += res.f1;
            }
            let k = seeds as f64;
            table.row(vec![
                lake_name.to_string(),
                sys.label.clone(),
                pct(p / k),
                pct(r / k),
                pct(f1 / k),
            ]);
        }
    }
    println!("{}", table.render());
    let _ = table.write_csv("ablation_deviations");
    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("expected: Eq.2-literal TF and no-null-flag cost F1 outright.");
    println!("whole-group FD marking is close (sometimes ahead) in *total* F1 but");
    println!("collapses the recall of FD-violation errors to near zero (the clean");
    println!("majority cells share the dirty minority's signature) — which would");
    println!("break the paper's §4.4 claim that the rule features capture VAD");
    println!("errors across tables. Minority marking stays the default.");
}
