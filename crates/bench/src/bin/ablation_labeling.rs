//! Labeling-strategy ablation — an *extension experiment* beyond the
//! paper: §6 names "minimizing user labeling efforts" as future work, so
//! we test the obvious active-learning idea (spend half the budget on
//! centroid labels, train preliminary models, spend the rest on the most
//! uncertain folds and split folds on contradicting labels) against the
//! paper's protocol at equal label counts.
//!
//! Result (negative, and worth knowing): the paper's protocol wins. Fold
//! *granularity* — every label buying one more quality fold — is worth
//! more than targeted refinement; halving the fold count costs more F1
//! than uncertainty sampling wins back. This empirically supports the
//! paper's design of tying cluster count to the labeling budget.

use matelda_baselines::Budget;
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    budget_axis, pct, print_stage_report, run_once, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_core::{LabelingStrategy, MateldaConfig};
use matelda_lakegen::{DGovLake, GeneratedLake, QuintetLake};
use std::collections::BTreeMap;

fn variants() -> Vec<MateldaSystem> {
    vec![
        MateldaSystem::variant("centroid-per-fold (paper)", MateldaConfig::default()),
        MateldaSystem::variant(
            "uncertainty-refinement",
            MateldaConfig {
                labeling: LabelingStrategy::UncertaintyRefinement,
                ..Default::default()
            },
        ),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let seeds = scale.seeds();
    println!("=== Labeling-strategy ablation (extension; scale: {scale:?}) ===\n");

    let n = scale.tables(143);
    let lakes: Vec<(&str, Box<dyn Fn(u64) -> GeneratedLake>)> = vec![
        ("Quintet", Box::new(|s| QuintetLake::default().generate(s))),
        ("DGov-NTR", Box::new(move |s| DGovLake::ntr().with_n_tables(n).generate(s))),
    ];
    let budgets = budget_axis(scale);
    let mut rec = EvalRecorder::for_experiment("ablation_labeling", scale);
    // Last per-stage report per variant, printed once at the end.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    for (lake_name, generate) in &lakes {
        let mut acc: BTreeMap<(String, usize), (f64, usize, usize)> = BTreeMap::new();
        for seed in 1..=seeds {
            let lake = generate(seed);
            for (bi, &b) in budgets.iter().enumerate() {
                for sys in variants() {
                    let r = run_once(&sys, &lake, Budget::per_table(b));
                    rec.record_run(lake_name, &sys.label, b, seed, &r, &lake);
                    reports.insert(sys.label.clone(), r.report.clone());
                    let e = acc.entry((sys.label.clone(), bi)).or_insert((0.0, 0, 0));
                    e.0 += r.f1;
                    e.1 += r.labels;
                    e.2 += 1;
                }
            }
        }
        let names: Vec<String> = variants().iter().map(|v| v.label.clone()).collect();
        let mut header = vec!["tuples/table".to_string()];
        header.extend(names.iter().cloned());
        header.extend(names.iter().map(|n| format!("{n} [labels]")));
        let mut table = TextTable::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
        for (bi, &b) in budgets.iter().enumerate() {
            let mut row = vec![format!("{b}")];
            for name in &names {
                let (f1, _, k) = acc[&(name.clone(), bi)];
                row.push(pct(f1 / k as f64));
            }
            for name in &names {
                let (_, l, k) = acc[&(name.clone(), bi)];
                row.push((l / k).to_string());
            }
            table.row(row);
        }
        println!("--- {lake_name}: F1 per labeling strategy (equal label counts) ---");
        println!("{}", table.render());
        let _ = table.write_csv(&format!(
            "ablation_labeling_{}",
            lake_name.to_lowercase().replace('-', "_")
        ));
    }
    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }
    println!();

    println!("expected: the paper's protocol leads at every budget — fold");
    println!("granularity beats targeted refinement (a negative result for the");
    println!("natural active-learning extension).");
}
