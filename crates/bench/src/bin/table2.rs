//! Table 2 — Effectiveness experiments on WDC.
//!
//! The paper has no ground truth on WDC, so the authors sampled 100
//! detected-error cells per system, labeled them manually, and reported
//! TP / FP / FN / P / R / F1 over the combined 400-cell sample. We mirror
//! the protocol exactly — sample 100 detected cells per system, grade
//! against the (generator-known) ground truth, estimate recall on the
//! pooled sample — at 2 labeled tuples per table, the only budget the
//! paper ran here.

use matelda_baselines::aspell::Aspell;
use matelda_baselines::holodetect::HoloDetect;
use matelda_baselines::raha::{Raha, RahaVariant};
use matelda_baselines::{Budget, ErrorDetector};
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{pct, print_stage_report, MateldaSystem, Scale, TextTable};
use matelda_lakegen::WdcLake;
use matelda_table::{CellId, CellMask, Oracle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    println!("=== Table 2: Effectiveness on WDC (2 labeled tuples/table, 100-cell samples) ===\n");

    let lake = WdcLake { n_tables: scale.tables(100), ..WdcLake::default() }.generate(31);
    let budget = Budget::per_table(2.0);
    let systems: Vec<Box<dyn ErrorDetector>> = vec![
        Box::new(MateldaSystem::standard()),
        Box::new(Raha::new(RahaVariant::Standard)),
        Box::new(HoloDetect::default()),
        Box::new(Aspell::new()),
    ];

    // Each system's detections, and the pooled evaluation universe: the
    // union of all sampled cells plus a sample of known errors (the
    // paper's "manual evaluation of 400 cells" with recall measured on
    // the sample).
    let mut rng = StdRng::seed_from_u64(9);
    let mut detections: Vec<(String, CellMask, Vec<CellId>)> = Vec::new();
    for system in &systems {
        let mut oracle = Oracle::new(&lake.errors);
        let (mask, report) = system.detect_with_report(&lake.dirty, &mut oracle, budget);
        print_stage_report(&system.name(), &report);
        let mut detected: Vec<CellId> = mask.iter_set().collect();
        detected.shuffle(&mut rng);
        detected.truncate(100);
        detected.sort_unstable();
        detections.push((system.name(), mask, detected));
    }
    println!();

    // Ground-truth errors sampled into the evaluation pool (for FN/recall,
    // the paper grades the sample cells of the other systems too — the
    // pool is every sampled cell).
    let mut pool: Vec<CellId> = detections.iter().flat_map(|(_, _, s)| s.iter().copied()).collect();
    pool.sort_unstable();
    pool.dedup();

    let mut rec = EvalRecorder::for_experiment("table2", scale);
    let mut t = TextTable::new(&["System", "#TP", "#FP", "#FN", "P", "R", "F1"]);
    for (name, mask, sample) in &detections {
        let tp = sample.iter().filter(|&&id| lake.errors.get(id)).count();
        let fp = sample.len() - tp;
        // FN: pooled cells that are true errors, missed by this system.
        let fn_ = pool.iter().filter(|&&id| lake.errors.get(id) && !mask.get(id)).count();
        let p = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let r = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        // The overall row pins the pooled-sample protocol's numbers;
        // per-type recall uses the full predicted mask against the
        // generator's typed truth (lake seed 31, fixed).
        rec.record_metrics("WDC", name, 2.0, 31, p, r, f1);
        rec.record_types("WDC", name, 2.0, 31, mask, &lake.typed_errors);
        t.row(vec![
            name.clone(),
            tp.to_string(),
            fp.to_string(),
            fn_.to_string(),
            pct(p),
            pct(r),
            pct(f1),
        ]);
    }
    println!("{}", t.render());
    let _ = t.write_csv("table2_wdc");
    rec.flush().expect("write EVAL matrix");

    println!("paper Table 2: Matelda 72%/88%/79%; Raha-Standard 68%/53%/60%;");
    println!("HoloDetect 73%/43%/54%; ASPELL 11%/7%/9%. Shape: Matelda best F1 via");
    println!("recall; HoloDetect precision competitive, recall low; ASPELL weak.");
}
