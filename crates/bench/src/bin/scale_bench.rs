//! The out-of-core scale bench: generates a scale-tier lake straight to
//! disk, converts it to the columnar layout, runs the out-of-core
//! detection path at 1/2/4 threads, and checks the whole contract —
//! digest bit-identity with the in-memory path, peak RSS under a fixed
//! multiple of the on-disk lake size, spill accounting — then merges a
//! `scale` section into `BENCH_stages.json` for the bench gate and an
//! eval row (keyed by the tier, so it never collides with the
//! quick/full baselines) into `EVAL_matrix.json`.
//!
//! Protocol notes:
//!
//! * `MATELDA_SCALE` picks the tier (`quick`/`full`/`large-ci`/`large`,
//!   default `large-ci` — the CI job's bounded tier);
//! * peak RSS is `VmHWM` from `/proc/self/status`, which is monotonic —
//!   so the out-of-core legs run *first* and the high-water mark is read
//!   *before* the in-memory digest leg materializes the lake;
//! * the RSS budget is `lake_bytes × 32 + 128 MiB`: cell values are
//!   never lake-wide resident, but the featurized lake is (quality-fold
//!   k-means clusters all cells at once), and features cost
//!   `FEATURE_DIM × 8` bytes per cell against ~14 columnar bytes per
//!   cell — a fixed ~27× multiple of the lake size, independent of
//!   tier. The constant covers the runtime floor on small lakes.
//!   Exceeding the budget → nonzero exit, which is the CI job's
//!   assertion; the tighter check is the gate's relative clause (fresh
//!   peak ≤ 1.5× the committed baseline's).

use matelda_bench::json::Json;
use matelda_bench::{secs, Scale};
use matelda_core::{Matelda, MateldaConfig, OutOfCoreOpts};
use matelda_lakegen::{ScaleLake, ScaleTier};
use matelda_table::chunked::{csv_dir_to_columnar, read_lake_columnar, DEFAULT_CHUNK_LEN};
use matelda_table::{CellId, Confusion, Labeler, StdFs};
use std::path::PathBuf;
use std::time::Instant;

/// Deterministic id-keyed labeler: the same cell id gets the same label
/// regardless of which path (in-memory or out-of-core) asks, so the
/// digest comparison isolates the pipeline, not the oracle.
struct HashLabeler {
    used: usize,
}

impl Labeler for HashLabeler {
    fn label(&mut self, id: CellId) -> bool {
        self.used += 1;
        (id.table * 31 + id.row * 7 + id.col).is_multiple_of(3)
    }

    fn labels_used(&self) -> usize {
        self.used
    }
}

/// `VmHWM` (peak resident set, bytes) from `/proc/self/status`; 0 when
/// unavailable (non-Linux), which disables the local assertion but
/// still records the field.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Replaces (or adds) the `scale` section in `BENCH_stages.json`,
/// upgrading a legacy top-level `"scale":"<sweep>"` string to the
/// modern `sweep` key on the way. Everything else in the file is
/// preserved — the stages bench owns the rest.
fn merge_scale_section(path: &str, section: Json) -> std::io::Result<()> {
    let doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .unwrap_or(Json::Obj(vec![("bench".into(), Json::Str("stages".into()))]));
    let Json::Obj(fields) = doc else {
        return Err(std::io::Error::other("BENCH_stages.json is not an object"));
    };
    let mut out: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
    for (k, v) in fields {
        match (k.as_str(), &v) {
            ("scale", Json::Str(_)) if !out.iter().any(|(k, _)| k == "sweep") => {
                out.push(("sweep".into(), v));
            }
            ("scale", _) => {} // replaced below
            _ => out.push((k, v)),
        }
    }
    out.push(("scale".into(), section));
    std::fs::write(path, Json::Obj(out).render() + "\n")
}

fn main() {
    let tier_name = std::env::var("MATELDA_SCALE").unwrap_or_default();
    let tier = ScaleTier::parse(&tier_name).unwrap_or(ScaleTier::LargeCi);
    let eval_scale = match tier {
        ScaleTier::Quick => Scale::Quick,
        ScaleTier::Full => Scale::Full,
        ScaleTier::LargeCi => Scale::LargeCi,
        ScaleTier::Large => Scale::Large,
    };
    println!("=== scale bench: out-of-core detection at tier `{}` ===\n", tier.name());

    let work: PathBuf =
        std::env::var("MATELDA_SCALE_DIR").map(PathBuf::from).unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("matelda_scale_bench_{}", std::process::id()))
        });
    let csv_dir = work.join("csv");
    let columnar_dir = work.join("columnar");
    let spill_dir = work.join("spill");
    let _ = std::fs::remove_dir_all(&work);

    // Phase 1: generate the dirty lake straight to disk, one table
    // resident at a time.
    let t0 = Instant::now();
    let on_disk = ScaleLake::new(tier).generate_to_disk(1, &csv_dir).expect("generate lake");
    println!(
        "generated {} tables / {} cells / {} CSV bytes in {}",
        on_disk.n_tables,
        on_disk.n_cells,
        on_disk.bytes_written,
        secs(t0.elapsed().as_secs_f64())
    );

    // Phase 2: CSV → columnar, still one table at a time.
    let fs = StdFs;
    let t0 = Instant::now();
    let n = csv_dir_to_columnar(&fs, &csv_dir, &columnar_dir, DEFAULT_CHUNK_LEN)
        .expect("columnar conversion");
    assert_eq!(n, on_disk.n_tables);
    println!("converted to columnar in {}", secs(t0.elapsed().as_secs_f64()));

    // Phase 3: the out-of-core legs — BEFORE the in-memory leg, so the
    // monotonic VmHWM read below covers only the streaming path.
    let budget = 2 * on_disk.n_tables;
    let mem_budget = std::env::var("MATELDA_MEM_BUDGET_BYTES").ok().and_then(|s| s.parse().ok());
    let opts = OutOfCoreOpts::new(&spill_dir);
    let mut digests = Vec::new();
    let mut one_thread_run = None;
    for threads in [1usize, 2, 4] {
        let config =
            MateldaConfig { threads, mem_budget_bytes: mem_budget, ..MateldaConfig::default() };
        let mut labeler = HashLabeler { used: 0 };
        let t0 = Instant::now();
        let run = Matelda::new(config)
            .detect_out_of_core(&fs, &columnar_dir, &mut labeler, budget, &opts)
            .expect("out-of-core detection");
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "out-of-core @{threads}t: digest {:016x}, {} spills, {} labels, {}",
            run.result.digest(),
            run.spill_count,
            labeler.used,
            secs(wall)
        );
        assert_eq!(run.cells, on_disk.n_cells, "streamed cell count");
        assert_eq!(run.spill_count, on_disk.n_tables, "one spill per table");
        digests.push(run.result.digest());
        if threads == 1 {
            one_thread_run = Some(run);
        }
    }
    let run = one_thread_run.expect("1-thread leg ran");
    let threads_identical = digests.iter().all(|d| *d == digests[0]);

    // Peak RSS of the streaming phase (read before materializing).
    let peak_rss = peak_rss_bytes();
    let rss_budget = run.lake_bytes * 32 + (128 << 20);
    println!(
        "\npeak RSS {peak_rss} bytes over a {} byte columnar lake (budget {rss_budget})",
        run.lake_bytes
    );

    // Phase 4: the in-memory digest leg — the equivalence anchor.
    let lake = read_lake_columnar(&fs, &columnar_dir, DEFAULT_CHUNK_LEN).expect("materialize");
    let mut labeler = HashLabeler { used: 0 };
    let config = MateldaConfig { threads: 1, mem_budget_bytes: mem_budget, ..Default::default() };
    let in_memory = Matelda::new(config).detect(&lake, &mut labeler, budget);
    let in_memory_digest = in_memory.digest();
    let fingerprint_ok = run.fingerprint == matelda_table::lake_fingerprint(&lake);
    let digest_ok = threads_identical && digests[0] == in_memory_digest && fingerprint_ok;
    println!(
        "in-memory digest {in_memory_digest:016x} — {}",
        if digest_ok { "bit-identical" } else { "DIVERGED" }
    );

    // Accuracy against the generator's truth, recorded under this tier's
    // scale key so it cannot collide with the quick/full baseline rows.
    let conf = Confusion::from_masks(&run.result.predicted, &on_disk.errors);
    println!(
        "accuracy: precision {:.3} recall {:.3} f1 {:.3}",
        conf.precision(),
        conf.recall(),
        conf.f1()
    );
    let mut rec = matelda_bench::eval::EvalRecorder::for_experiment("scale_bench", eval_scale);
    rec.record_metrics("scale", "Matelda", 2.0, 1, conf.precision(), conf.recall(), conf.f1());
    rec.flush().expect("flush eval matrix");

    // The per-stage cells/s of the 1-thread leg: the stable numbers the
    // gate bands at 25%.
    let stage_rows: Vec<Json> = run
        .result
        .report
        .stages
        .iter()
        .filter(|s| s.wall_secs > 0.0)
        .map(|s| {
            Json::Obj(vec![
                ("stage".into(), Json::Str(s.name.clone())),
                ("cells_per_sec".into(), Json::Num(on_disk.n_cells as f64 / s.wall_secs)),
            ])
        })
        .collect();
    let section = Json::Obj(vec![
        ("tier".into(), Json::Str(tier.name().into())),
        ("cells".into(), Json::Num(on_disk.n_cells as f64)),
        ("lake_bytes".into(), Json::Num(run.lake_bytes as f64)),
        ("peak_rss_bytes".into(), Json::Num(peak_rss as f64)),
        ("rss_budget_bytes".into(), Json::Num(rss_budget as f64)),
        ("spill_count".into(), Json::Num(run.spill_count as f64)),
        ("digest_ok".into(), Json::Bool(digest_ok)),
        ("stages".into(), Json::Arr(stage_rows)),
    ]);
    let bench_path =
        std::env::var("MATELDA_BENCH_OUT").unwrap_or_else(|_| "BENCH_stages.json".to_string());
    merge_scale_section(&bench_path, section).expect("merge scale section");
    println!("merged `scale` section into {bench_path}");

    let _ = std::fs::remove_dir_all(&work);

    // The CI assertions: digest equivalence is correctness, the RSS
    // budget is the out-of-core promise. Either failing is a red job.
    assert!(digest_ok, "out-of-core digest diverged from the in-memory path");
    if peak_rss > 0 {
        assert!(
            peak_rss <= rss_budget,
            "peak RSS {peak_rss} exceeds budget {rss_budget} ({}x lake size)",
            peak_rss / run.lake_bytes.max(1)
        );
    }
    println!("\nscale bench PASSED");
}
