//! Figure 9 — Scalability over the number of tables.
//!
//! Runtime of Matelda, Matelda-EDF and Raha(-Standard, 2 labeled tuples
//! per table — Raha's minimum) over growing subsets of two lakes:
//! GitTables (100–1000 tables, small tables) and DGov-1K (250–1173
//! tables, larger tables). Execution time covers everything from data
//! intake to prediction; labeling interaction is excluded by design (the
//! oracle answers instantly). Averages over 3 independent runs, like the
//! paper.
//!
//! Mirroring §4.6: Matelda-EDF is not run on the DGov-1K subsets — in the
//! paper it exhausts memory there; here the quadratic cell-clustering
//! blow-up is the same phenomenon, so the harness reports "DNF" for it.

use matelda_baselines::raha::{Raha, RahaVariant};
use matelda_baselines::{Budget, ErrorDetector};
use matelda_bench::eval::EvalRecorder;
use matelda_bench::{
    print_stage_report, run_once, secs, MateldaSystem, RunReport, Scale, TextTable,
};
use matelda_core::{DomainFolding, MateldaConfig};
use matelda_lakegen::{DGovLake, GitTablesLake};
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let runs = scale.seeds();
    println!("=== Figure 9: Scalability (runtime vs #tables, scale: {scale:?}) ===\n");
    let budget = Budget::per_table(2.0);

    let git_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![50, 100],
        Scale::Small => vec![100, 250, 500],
        Scale::Full | Scale::LargeCi | Scale::Large => vec![100, 250, 500, 750, 1000],
    };
    let dgov_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![50, 100],
        Scale::Small => vec![100, 250, 400],
        Scale::Full | Scale::LargeCi | Scale::Large => vec![250, 500, 750, 1000, 1173],
    };

    // Runtime is the headline here, but the accuracy of every sweep point
    // still lands in the eval matrix: a scalability rewrite that trades
    // recall for speed must trip the accuracy gate, not pass silently.
    let mut rec = EvalRecorder::for_experiment("fig9", scale);

    // Per-stage report from the largest sweep point per system, printed at
    // the end — this is where the per-stage runtime split matters most.
    let mut reports: BTreeMap<String, RunReport> = BTreeMap::new();

    // --- GitTables sweep: all three systems. ---
    let mut t = TextTable::new(&["#tables", "Matelda", "Matelda-EDF", "Raha"]);
    for &n in &git_sizes {
        let mut times = [0.0f64; 3];
        for run in 1..=runs {
            let lake = GitTablesLake::default().with_n_tables(n).generate(run);
            let systems: Vec<Box<dyn ErrorDetector>> = vec![
                Box::new(MateldaSystem::standard()),
                Box::new(MateldaSystem::variant(
                    "Matelda-EDF",
                    MateldaConfig {
                        domain_folding: DomainFolding::ExtremeDomainFolding,
                        ..Default::default()
                    },
                )),
                Box::new(Raha::new(RahaVariant::Standard)),
            ];
            for (i, sys) in systems.iter().enumerate() {
                let r = run_once(sys.as_ref(), &lake, budget);
                rec.record_run(&format!("GitTables-{n}"), &sys.name(), 2.0, run, &r, &lake);
                times[i] += r.seconds;
                if !r.report.stages.is_empty() {
                    reports.insert(format!("{} (GitTables)", sys.name()), r.report.clone());
                }
            }
        }
        t.row(vec![
            n.to_string(),
            secs(times[0] / runs as f64),
            secs(times[1] / runs as f64),
            secs(times[2] / runs as f64),
        ]);
        println!("GitTables {n} tables done");
    }
    println!("\n--- GitTables: runtime vs table count (avg rows/table ~16) ---");
    println!("{}", t.render());
    let _ = t.write_csv("fig9_gittables");

    // --- DGov-1K sweep: EDF reported as DNF (paper: out of memory). ---
    let mut t = TextTable::new(&["#tables", "Matelda", "Matelda-EDF", "Raha"]);
    for &n in &dgov_sizes {
        let mut times = [0.0f64; 2];
        for run in 1..=runs {
            let lake = DGovLake::dgov_1k().with_n_tables(n).generate(run);
            let matelda = MateldaSystem::standard();
            let raha = Raha::new(RahaVariant::Standard);
            let rm = run_once(&matelda, &lake, budget);
            let rr = run_once(&raha, &lake, budget);
            rec.record_run(&format!("DGov-1K-{n}"), &matelda.label, 2.0, run, &rm, &lake);
            rec.record_run(&format!("DGov-1K-{n}"), &raha.name(), 2.0, run, &rr, &lake);
            times[0] += rm.seconds;
            times[1] += rr.seconds;
            reports.insert("Matelda (DGov-1K)".to_string(), rm.report);
            reports.insert("Raha (DGov-1K)".to_string(), rr.report);
        }
        t.row(vec![
            n.to_string(),
            secs(times[0] / runs as f64),
            "DNF".to_string(),
            secs(times[1] / runs as f64),
        ]);
        println!("DGov-1K {n} tables done");
    }
    println!("\n--- DGov-1K: runtime vs table count (avg rows/table ~45) ---");
    println!("{}", t.render());
    let _ = t.write_csv("fig9_dgov1k");

    // --- Rows-per-table sweep: the asymptotics behind "Matelda is faster
    // than Raha". The paper's corpora average 126–3100 rows per table;
    // this reproduction scales rows down ~50-100×, which erases Raha's
    // dominant cost — its per-column hierarchical clustering is cubic in
    // rows, while Matelda is linear (§3.5). Sweeping rows at a fixed
    // table count makes the crossover visible at laptop scale.
    let row_sizes: Vec<usize> = match scale {
        Scale::Quick => vec![50, 100],
        Scale::Small => vec![50, 100, 200],
        Scale::Full | Scale::LargeCi | Scale::Large => vec![50, 100, 200, 400],
    };
    let mut t = TextTable::new(&["rows/table", "Matelda", "Raha"]);
    for &rows in &row_sizes {
        let mut times = [0.0f64; 2];
        for run in 1..=runs {
            let lake =
                DGovLake { n_tables: 20, rows: (rows, rows), ..DGovLake::ntr() }.generate(run);
            let matelda = MateldaSystem::standard();
            let raha = Raha::new(RahaVariant::Standard);
            let rm = run_once(&matelda, &lake, budget);
            let rr = run_once(&raha, &lake, budget);
            rec.record_run(&format!("DGov-rows-{rows}"), &matelda.label, 2.0, run, &rm, &lake);
            rec.record_run(&format!("DGov-rows-{rows}"), &raha.name(), 2.0, run, &rr, &lake);
            times[0] += rm.seconds;
            times[1] += rr.seconds;
        }
        t.row(vec![rows.to_string(), secs(times[0] / runs as f64), secs(times[1] / runs as f64)]);
        println!("rows sweep {rows} done");
    }
    println!("\n--- DGov-style, 20 tables: runtime vs rows per table ---");
    println!("{}", t.render());
    let _ = t.write_csv("fig9_rows_sweep");

    rec.flush().expect("write EVAL matrix");

    for (name, report) in &reports {
        print_stage_report(name, report);
    }

    println!("\nshape checks (paper §4.6): Matelda scales better than Matelda-EDF on");
    println!("GitTables (domain folds bound the clustering); Matelda-EDF does not");
    println!("finish DGov-1K subsets; Matelda overtakes Raha as tables approach the");
    println!("paper's row counts (Raha's per-column clustering is cubic in rows,");
    println!("Matelda is linear — §3.5).");
}
