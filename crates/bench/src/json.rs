//! Hand-rolled JSON support shared by the bench gate (`gate`) and the
//! accuracy gate (`eval`): a parser covering just enough of the grammar
//! for the bench/eval files, plus a deterministic serializer for
//! emitting them. Hand-rolled like everything else in the workspace —
//! both gates emit small, known shapes and the crate policy is no
//! third-party dependencies.

/// A parsed JSON value (just enough of the grammar for bench files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact single-line JSON. Numbers use the
    /// shortest `f64` display (NaN/∞, which JSON cannot represent, are
    /// emitted as `null` — the gates treat a null metric as a missing
    /// one). Object key order is preserved, so rendering is
    /// deterministic for deterministically built documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("non-scalar \\u escape")?;
                        out.extend_from_slice(c.to_string().as_bytes());
                    }
                    _ => return Err(format!("unsupported escape \\{}", esc as char)),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_the_bench_shape() {
        let doc = Json::parse(
            r#"{"bench":"stages","scale":"full","neg":-4.28e0,"flag":true,
                "stages":[{"stage":"classify","items_per_sec_1t":128044.9}],
                "none":null,"esc":"a\"b\\cA"}"#,
        )
        .expect("parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("stages"));
        assert_eq!(doc.get("neg").and_then(Json::as_num), Some(-4.28));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        assert_eq!(doc.get("esc").and_then(Json::as_str), Some("a\"b\\cA"));
        let stages = doc.get("stages").and_then(Json::as_arr).expect("array");
        assert_eq!(stages[0].get("items_per_sec_1t").and_then(Json::as_num), Some(128044.9));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn render_round_trips_through_parse() {
        let doc = Json::Obj(vec![
            ("name".to_string(), Json::Str("a\"b\\c\nd".to_string())),
            ("n".to_string(), Json::Num(1.5)),
            ("zero".to_string(), Json::Num(0.0)),
            ("flag".to_string(), Json::Bool(false)),
            ("none".to_string(), Json::Null),
            (
                "arr".to_string(),
                Json::Arr(vec![Json::Num(1.0), Json::Str(String::new()), Json::Obj(vec![])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("rendered JSON parses");
        assert_eq!(back, doc);
        // Rendering is stable: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn render_emits_non_finite_numbers_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(0.25).render(), "0.25");
    }
}
