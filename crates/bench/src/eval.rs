//! The accuracy counterpart of the bench gate (`gate`): every
//! experiment binary appends structured precision/recall/F1 rows — one
//! `ALL` row per run plus one per-error-type recall row — into a shared
//! `EVAL_matrix.json`, keyed by (experiment × lake template × system ×
//! error type × budget × seed). `run_all_experiments.sh` assembles the
//! committed baseline; the `eval_gate` binary compares a fresh matrix
//! against it and fails CI on accuracy regressions (see DESIGN.md,
//! "Accuracy contract").
//!
//! Gate clauses (`compare_eval`):
//!
//! * cells carry the `MATELDA_SCALE` they were produced at and are
//!   gated per scale (accuracy at different lake sizes is not
//!   comparable): a fresh matrix is checked against exactly the
//!   baseline cells whose scale it re-ran, and no scale overlap at all
//!   is a violation;
//! * every fresh metric must be finite and inside `[0, 1]` — a NaN or
//!   out-of-range cell is a harness bug, not a regression band issue;
//! * every baseline cell must still be present in the fresh matrix;
//! * per cell, neither F1 nor recall may drop by more than
//!   [`EvalGateConfig::max_drop_pct`] percent of the baseline value;
//! * a per-type cell that had support in the baseline must not become
//!   vacuous (zero errors of that type) in the fresh matrix.
//!
//! Per-type cells with zero support carry `recall: null` (see
//! `PerTypeRecall`) and are skipped by the gate — "nothing to recall"
//! is not a regression.

use crate::json::Json;
use crate::{RunResult, Scale};
use matelda_lakegen::GeneratedLake;
use matelda_table::{CellMask, PerTypeRecall};
use std::path::PathBuf;

/// The error-type key of a run's overall precision/recall/F1 row.
pub const ALL: &str = "ALL";

/// Maps the generator's error-type abbreviations to the paper's Table 3
/// categories. `NO` (numeric outliers) keeps its own key: the paper
/// folds outliers into its lake-specific taxonomies, but the eval
/// matrix pins them separately so an outlier-recall collapse is
/// attributable.
pub fn paper_category(abbrev: &str) -> &'static str {
    match abbrev {
        "MV" => "MV",
        "FI" => "REP",
        "VAD" => "SEM",
        "T" => "TYP",
        "NO" => "NO",
        _ => "?",
    }
}

/// One accuracy cell: the metrics of one system on one lake at one
/// budget and seed, either overall (`error_type == ALL`) or the recall
/// of one error type.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalCell {
    /// The experiment binary that produced the row (`fig3`, `table2`, …).
    pub experiment: String,
    /// The `MATELDA_SCALE` the row was produced at. Part of the cell
    /// key, so rows from a `large-ci` out-of-core run live alongside the
    /// quick/full baseline cells instead of colliding with them.
    pub scale: String,
    /// Lake template name (`Quintet`, `DGov-NTR`, `GitTables-50`, …).
    pub template: String,
    /// System label (`Matelda`, `Raha`, `Matelda-EDF`, …).
    pub system: String,
    /// [`ALL`] for the overall row, or a `paper_category` key.
    pub error_type: String,
    /// Labeling budget (labeled tuples per table).
    pub budget: f64,
    /// Lake generation seed.
    pub seed: u64,
    /// Overall precision; `None` on per-type rows.
    pub precision: Option<f64>,
    /// Overall or per-type recall; `None` when the type has no errors.
    pub recall: Option<f64>,
    /// Overall F1; `None` on per-type rows.
    pub f1: Option<f64>,
    /// Ground-truth error count behind a per-type row; `None` on `ALL`
    /// rows.
    pub support: Option<usize>,
}

impl EvalCell {
    /// The identity a cell is matched by across matrices.
    fn key(&self) -> (&str, &str, &str, &str, &str, u64, u64) {
        (
            &self.scale,
            &self.experiment,
            &self.template,
            &self.system,
            &self.error_type,
            self.budget.to_bits(),
            self.seed,
        )
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("template".to_string(), Json::Str(self.template.clone())),
            ("system".to_string(), Json::Str(self.system.clone())),
            ("error_type".to_string(), Json::Str(self.error_type.clone())),
            ("budget".to_string(), Json::Num(self.budget)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
        ];
        let mut metric = |name: &str, v: Option<f64>| {
            if let Some(v) = v {
                fields.push((name.to_string(), Json::Num(v)));
            }
        };
        metric("precision", self.precision);
        metric("recall", self.recall);
        metric("f1", self.f1);
        if let Some(s) = self.support {
            fields.push(("support".to_string(), Json::Num(s as f64)));
        }
        Json::Obj(fields)
    }

    /// Parses a cell; `default_scale` (the matrix-level scale) covers
    /// files written before cells carried their own scale.
    fn from_json(v: &Json, default_scale: &str) -> Result<Self, String> {
        let text = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell missing `{key}`"))
        };
        let num = |key: &str| v.get(key).and_then(Json::as_num);
        Ok(EvalCell {
            experiment: text("experiment")?,
            scale: v.get("scale").and_then(Json::as_str).unwrap_or(default_scale).to_string(),
            template: text("template")?,
            system: text("system")?,
            error_type: text("error_type")?,
            budget: num("budget").ok_or("cell missing `budget`")?,
            seed: num("seed").ok_or("cell missing `seed`")? as u64,
            precision: num("precision"),
            recall: num("recall"),
            f1: num("f1"),
            support: num("support").map(|s| s as usize),
        })
    }

    /// Short display form for violation messages.
    fn label(&self) -> String {
        format!(
            "{}@{}/{}/{}/{} @ budget {} seed {}",
            self.experiment,
            self.scale,
            self.template,
            self.system,
            self.error_type,
            self.budget,
            self.seed
        )
    }
}

/// A full accuracy matrix. Cells carry their own scale; the matrix-level
/// `scale` records the last writer's scale (and is the parse-time
/// default for cells from files written before the per-cell field).
#[derive(Debug, Clone, Default)]
pub struct EvalMatrix {
    /// The `MATELDA_SCALE` of the most recent flush into this file.
    pub scale: String,
    /// All accuracy cells, sorted on render.
    pub cells: Vec<EvalCell>,
}

impl EvalMatrix {
    /// Parses a matrix document produced by [`EvalMatrix::render`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let scale =
            doc.get("scale").and_then(Json::as_str).ok_or("matrix missing `scale`")?.to_string();
        let cells = doc
            .get("cells")
            .and_then(Json::as_arr)
            .ok_or("matrix missing `cells`")?
            .iter()
            .map(|c| EvalCell::from_json(c, &scale))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(EvalMatrix { scale, cells })
    }

    /// Renders the matrix with sorted cells, one per line — stable under
    /// re-runs (the pipeline is deterministic) and diffable when
    /// re-baselining.
    pub fn render(&self) -> String {
        let mut cells = self.cells.clone();
        cells.sort_by(|a, b| a.key().cmp(&b.key()));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("\"eval\": \"matelda\",\n");
        out.push_str(&format!("\"scale\": {},\n", Json::Str(self.scale.clone()).render()));
        out.push_str("\"cells\": [\n");
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&cell.to_json().render());
            if i + 1 < cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Collects one experiment binary's accuracy rows and merges them into
/// the shared matrix file on [`EvalRecorder::flush`]. The target path is
/// `EVAL_matrix.json` in the working directory, overridable via
/// `MATELDA_EVAL_OUT` (CI points it at a scratch file to diff against
/// the committed baseline).
#[derive(Debug)]
pub struct EvalRecorder {
    experiment: String,
    scale: String,
    path: PathBuf,
    cells: Vec<EvalCell>,
}

impl EvalRecorder {
    /// A recorder for one experiment binary.
    pub fn for_experiment(experiment: &str, scale: Scale) -> Self {
        let path = std::env::var("MATELDA_EVAL_OUT").unwrap_or_else(|_| "EVAL_matrix.json".into());
        EvalRecorder {
            experiment: experiment.to_string(),
            scale: scale.name().to_string(),
            path: PathBuf::from(path),
            cells: Vec::new(),
        }
    }

    /// Records a full run: the overall `ALL` row plus one recall row per
    /// error type in the lake's typed truth.
    pub fn record_run(
        &mut self,
        template: &str,
        system: &str,
        budget: f64,
        seed: u64,
        result: &RunResult,
        lake: &GeneratedLake,
    ) {
        self.record_metrics(
            template,
            system,
            budget,
            seed,
            result.precision,
            result.recall,
            result.f1,
        );
        self.record_types(template, system, budget, seed, &result.predicted, &lake.typed_errors);
    }

    /// Records just the overall precision/recall/F1 row — for bespoke
    /// protocols (Table 2's pooled sampling) that never build a mask per
    /// error type.
    #[allow(clippy::too_many_arguments)] // mirrors the cell's key + metrics, call sites read flat
    pub fn record_metrics(
        &mut self,
        template: &str,
        system: &str,
        budget: f64,
        seed: u64,
        precision: f64,
        recall: f64,
        f1: f64,
    ) {
        self.cells.push(EvalCell {
            experiment: self.experiment.clone(),
            scale: self.scale.clone(),
            template: template.to_string(),
            system: system.to_string(),
            error_type: ALL.to_string(),
            budget,
            seed,
            precision: Some(precision),
            recall: Some(recall),
            f1: Some(f1),
            support: None,
        });
    }

    /// Records per-type recall rows for a predicted mask against typed
    /// ground truth (generator abbreviations; mapped to paper
    /// categories).
    pub fn record_types(
        &mut self,
        template: &str,
        system: &str,
        budget: f64,
        seed: u64,
        predicted: &CellMask,
        typed_errors: &[(String, CellMask)],
    ) {
        let typed: Vec<(String, CellMask)> =
            typed_errors.iter().map(|(n, m)| (paper_category(n).to_string(), m.clone())).collect();
        for tr in PerTypeRecall::compute(predicted, &typed).recalls {
            self.cells.push(EvalCell {
                experiment: self.experiment.clone(),
                scale: self.scale.clone(),
                template: template.to_string(),
                system: system.to_string(),
                error_type: tr.name,
                budget,
                seed,
                precision: None,
                recall: tr.recall,
                f1: None,
                support: Some(tr.support),
            });
        }
    }

    /// Merges this experiment's rows into the shared matrix file: only
    /// this experiment's old rows *at this scale* are replaced — rows
    /// from other experiments, and rows from the same experiment at
    /// other scales (e.g. a `large-ci` out-of-core run next to the
    /// `full` baseline), are kept. The write is atomic (tmp + rename)
    /// so a crashed experiment cannot tear the matrix.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut matrix = match std::fs::read_to_string(&self.path) {
            Ok(text) => {
                Json::parse(&text).and_then(|doc| EvalMatrix::from_json(&doc)).unwrap_or_default()
            }
            Err(_) => EvalMatrix::default(),
        };
        matrix.scale = self.scale.clone();
        matrix.cells.retain(|c| !(c.experiment == self.experiment && c.scale == self.scale));
        matrix.cells.extend(self.cells.iter().cloned());
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, matrix.render())?;
        std::fs::rename(&tmp, &self.path)
    }
}

/// Accuracy-gate thresholds.
#[derive(Debug, Clone, Copy)]
pub struct EvalGateConfig {
    /// Maximum tolerated relative drop of a cell's F1 or recall, in
    /// percent of the baseline value.
    pub max_drop_pct: f64,
}

impl Default for EvalGateConfig {
    fn default() -> Self {
        // 10%: the pipeline and lake generation are seed-deterministic,
        // so a rerun at the same scale reproduces the baseline exactly —
        // the band only has to absorb cross-platform float noise, and
        // 10% still catches any real sampler or kernel regression.
        EvalGateConfig { max_drop_pct: 10.0 }
    }
}

/// Compares a fresh accuracy matrix against the committed baseline and
/// returns every violation as a human-readable line. Empty = pass.
pub fn compare_eval(baseline: &Json, fresh: &Json, cfg: EvalGateConfig) -> Vec<String> {
    let mut violations = Vec::new();
    let base = match EvalMatrix::from_json(baseline) {
        Ok(m) => m,
        Err(e) => return vec![format!("baseline matrix malformed: {e}")],
    };
    let fresh = match EvalMatrix::from_json(fresh) {
        Ok(m) => m,
        Err(e) => return vec![format!("fresh matrix malformed: {e}")],
    };
    // Scales are compared per cell: a fresh matrix gates exactly the
    // baseline cells whose scale it re-ran (so a `full` re-run never
    // "misses" the baseline's `large-ci` rows and vice versa). No
    // overlap at all means the runs are not comparable.
    let fresh_scales: std::collections::BTreeSet<&str> =
        fresh.cells.iter().map(|c| c.scale.as_str()).collect();
    let base_scales: std::collections::BTreeSet<&str> =
        base.cells.iter().map(|c| c.scale.as_str()).collect();
    if !base.cells.is_empty() && base_scales.intersection(&fresh_scales).next().is_none() {
        violations.push(format!(
            "scale mismatch: baseline ran at {base_scales:?}, fresh at {fresh_scales:?} — \
             accuracy not comparable",
        ));
        return violations;
    }

    // Clause: every fresh metric is finite and inside [0, 1].
    for cell in &fresh.cells {
        for (name, v) in [("precision", cell.precision), ("recall", cell.recall), ("f1", cell.f1)] {
            if let Some(v) = v {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    violations.push(format!(
                        "cell {}: {name} is {v} — not a valid metric in [0, 1]",
                        cell.label()
                    ));
                }
            }
        }
    }

    // Clauses: presence and drop band, per baseline cell whose scale
    // the fresh matrix covers.
    for cell in &base.cells {
        if !fresh_scales.contains(cell.scale.as_str()) {
            continue;
        }
        let Some(found) = fresh.cells.iter().find(|c| c.key() == cell.key()) else {
            violations.push(format!(
                "cell {} present in baseline but missing from fresh matrix",
                cell.label()
            ));
            continue;
        };
        for (name, base_v, fresh_v) in
            [("f1", cell.f1, found.f1), ("recall", cell.recall, found.recall)]
        {
            let Some(base_v) = base_v else {
                continue; // vacuous in the baseline (zero support) — nothing to gate
            };
            let Some(fresh_v) = fresh_v else {
                violations.push(format!(
                    "cell {}: {name} was {base_v:.4} in baseline but is vacuous/absent in fresh \
                     matrix (support collapsed?)",
                    cell.label()
                ));
                continue;
            };
            if base_v > 0.0 {
                let drop_pct = 100.0 * (base_v - fresh_v) / base_v;
                if drop_pct > cfg.max_drop_pct {
                    violations.push(format!(
                        "cell {}: {name} dropped {drop_pct:.1}% ({base_v:.4} -> {fresh_v:.4}, \
                         limit {limit:.0}%)",
                        cell.label(),
                        limit = cfg.max_drop_pct
                    ));
                }
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> EvalMatrix {
        EvalMatrix {
            scale: "quick".to_string(),
            cells: vec![
                EvalCell {
                    experiment: "fig3".into(),
                    scale: "quick".into(),
                    template: "Quintet".into(),
                    system: "Matelda".into(),
                    error_type: ALL.into(),
                    budget: 2.0,
                    seed: 1,
                    precision: Some(0.8),
                    recall: Some(0.75),
                    f1: Some(0.7742),
                    support: None,
                },
                EvalCell {
                    experiment: "fig3".into(),
                    scale: "quick".into(),
                    template: "Quintet".into(),
                    system: "Matelda".into(),
                    error_type: "MV".into(),
                    budget: 2.0,
                    seed: 1,
                    precision: None,
                    recall: Some(0.95),
                    f1: None,
                    support: Some(40),
                },
                EvalCell {
                    experiment: "fig3".into(),
                    scale: "quick".into(),
                    template: "Quintet".into(),
                    system: "Matelda".into(),
                    error_type: "NO".into(),
                    budget: 2.0,
                    seed: 1,
                    precision: None,
                    recall: None,
                    f1: None,
                    support: Some(0),
                },
            ],
        }
    }

    fn reparse(m: &EvalMatrix) -> Json {
        Json::parse(&m.render()).expect("rendered matrix parses")
    }

    /// Rebuilds the matrix with one metric of one cell transformed.
    fn with_metric(
        m: &EvalMatrix,
        error_type: &str,
        metric: &str,
        f: impl Fn(Option<f64>) -> Option<f64>,
    ) -> EvalMatrix {
        let mut out = m.clone();
        for cell in &mut out.cells {
            if cell.error_type == error_type {
                match metric {
                    "precision" => cell.precision = f(cell.precision),
                    "recall" => cell.recall = f(cell.recall),
                    "f1" => cell.f1 = f(cell.f1),
                    _ => unreachable!(),
                }
            }
        }
        out
    }

    #[test]
    fn round_trip_identical_matrices_pass() {
        let m = sample_matrix();
        let doc = reparse(&m);
        let back = EvalMatrix::from_json(&doc).expect("parses back");
        assert_eq!(back.scale, m.scale);
        assert_eq!(back.cells.len(), m.cells.len());
        let v = compare_eval(&doc, &doc, EvalGateConfig::default());
        assert!(v.is_empty(), "identical matrices must pass: {v:?}");
    }

    #[test]
    fn gate_rejects_a_twenty_percent_f1_drop() {
        let base = sample_matrix();
        let dropped = with_metric(&base, ALL, "f1", |v| v.map(|x| x * 0.8));
        let v = compare_eval(&reparse(&base), &reparse(&dropped), EvalGateConfig::default());
        assert_eq!(v.len(), 1, "exactly the F1 clause: {v:?}");
        assert!(v[0].contains("f1 dropped 20.0%"), "{v:?}");
        // A 5% drop stays inside the default 10% band.
        let ok = with_metric(&base, ALL, "f1", |v| v.map(|x| x * 0.95));
        assert!(compare_eval(&reparse(&base), &reparse(&ok), EvalGateConfig::default()).is_empty());
    }

    #[test]
    fn gate_rejects_a_recall_collapse() {
        let base = sample_matrix();
        let collapsed = with_metric(&base, "MV", "recall", |v| v.map(|x| x * 0.2));
        let v = compare_eval(&reparse(&base), &reparse(&collapsed), EvalGateConfig::default());
        assert_eq!(v.len(), 1, "exactly the MV recall clause: {v:?}");
        assert!(v[0].contains("MV") && v[0].contains("recall dropped 80.0%"), "{v:?}");
    }

    #[test]
    fn gate_rejects_a_nan_cell() {
        let base = sample_matrix();
        let poisoned = with_metric(&base, ALL, "recall", |_| Some(f64::NAN));
        // NaN cannot round-trip through JSON (it renders as null), so
        // feed the in-memory document — the gate must reject it before
        // any file ever carries it.
        let mut fields = vec![("scale".to_string(), Json::Str("quick".to_string()))];
        fields.push((
            "cells".to_string(),
            Json::Arr(poisoned.cells.iter().map(|c| c.to_json()).collect()),
        ));
        let poisoned_doc = Json::Obj(fields);
        let v = compare_eval(&reparse(&base), &poisoned_doc, EvalGateConfig::default());
        assert!(
            v.iter().any(|m| m.contains("NaN") || m.contains("not a valid metric")),
            "NaN must be a violation: {v:?}"
        );
        // Out-of-range metrics are rejected the same way.
        let oor = with_metric(&base, ALL, "precision", |_| Some(1.5));
        let v = compare_eval(&reparse(&base), &reparse(&oor), EvalGateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("not a valid metric"), "{v:?}");
    }

    #[test]
    fn gate_flags_missing_cell_and_scale_mismatch() {
        let base = sample_matrix();
        let mut pruned = base.clone();
        pruned.cells.retain(|c| c.error_type != "MV");
        let v = compare_eval(&reparse(&base), &reparse(&pruned), EvalGateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing"), "{v:?}");

        let mut rescaled = base.clone();
        rescaled.scale = "full".to_string();
        for c in &mut rescaled.cells {
            c.scale = "full".to_string();
        }
        let v = compare_eval(&reparse(&base), &reparse(&rescaled), EvalGateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("scale mismatch"), "{v:?}");
    }

    #[test]
    fn gate_scopes_presence_to_the_scales_the_fresh_matrix_covers() {
        // Baseline holds quick + large-ci rows; a fresh quick-only rerun
        // gates the quick cells and leaves the large-ci rows alone.
        let mut base = sample_matrix();
        let mut large = base.cells[0].clone();
        large.scale = "large-ci".to_string();
        large.experiment = "scale_bench".to_string();
        base.cells.push(large);
        let fresh = sample_matrix(); // quick cells only
        let v = compare_eval(&reparse(&base), &reparse(&fresh), EvalGateConfig::default());
        assert!(v.is_empty(), "large-ci baseline rows must not be 'missing': {v:?}");
        // But a quick cell actually missing still trips the gate.
        let mut pruned = sample_matrix();
        pruned.cells.retain(|c| c.error_type != "MV");
        let v = compare_eval(&reparse(&base), &reparse(&pruned), EvalGateConfig::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("missing"), "{v:?}");
    }

    #[test]
    fn zero_support_cells_are_vacuous_not_zero() {
        // The NO row has zero support: its recall must render as absent,
        // parse back as None, and never trip the gate as a 0.0.
        let m = sample_matrix();
        let doc = reparse(&m);
        let back = EvalMatrix::from_json(&doc).unwrap();
        let no = back.cells.iter().find(|c| c.error_type == "NO").unwrap();
        assert_eq!(no.recall, None);
        assert_eq!(no.support, Some(0));
        assert!(compare_eval(&doc, &doc, EvalGateConfig::default()).is_empty());
        // But a cell that *had* support collapsing to vacuous is flagged.
        let mut vacuous = m.clone();
        for c in &mut vacuous.cells {
            if c.error_type == "MV" {
                c.recall = None;
                c.support = Some(0);
            }
        }
        let v = compare_eval(&doc, &reparse(&vacuous), EvalGateConfig::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("vacuous"), "{v:?}");
    }

    #[test]
    fn recorder_merges_per_experiment_and_keeps_other_scales() {
        let dir = std::env::temp_dir().join(format!("matelda-eval-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("EVAL_matrix.json");
        let _ = std::fs::remove_file(&path);

        let mut rec = EvalRecorder::for_experiment("fig3", Scale::Quick);
        rec.path = path.clone();
        rec.record_metrics("Quintet", "Matelda", 2.0, 1, 0.8, 0.7, 0.75);
        rec.flush().unwrap();

        // A second experiment merges alongside the first.
        let mut rec2 = EvalRecorder::for_experiment("table3", Scale::Quick);
        rec2.path = path.clone();
        rec2.record_metrics("Quintet", "Raha", 2.0, 1, 0.5, 0.4, 0.44);
        rec2.flush().unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let m = EvalMatrix::from_json(&doc).unwrap();
        assert_eq!(m.cells.len(), 2);

        // Re-running an experiment replaces its rows instead of duplicating.
        let mut rec3 = EvalRecorder::for_experiment("fig3", Scale::Quick);
        rec3.path = path.clone();
        rec3.record_metrics("Quintet", "Matelda", 2.0, 1, 0.9, 0.8, 0.85);
        rec3.flush().unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let m = EvalMatrix::from_json(&doc).unwrap();
        assert_eq!(m.cells.len(), 2);
        let fig3 = m.cells.iter().find(|c| c.experiment == "fig3").unwrap();
        assert_eq!(fig3.f1, Some(0.85));

        // A flush at another scale keeps the existing cells: rows from
        // different scales coexist under distinct keys instead of
        // colliding (the large-tier runs depend on this).
        let mut rec4 = EvalRecorder::for_experiment("fig3", Scale::LargeCi);
        rec4.path = path.clone();
        rec4.record_metrics("ScaleLake", "Matelda", 2.0, 1, 0.6, 0.6, 0.6);
        rec4.flush().unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let m = EvalMatrix::from_json(&doc).unwrap();
        assert_eq!(m.scale, "large-ci", "matrix-level scale is the last writer's");
        assert_eq!(m.cells.len(), 3, "quick cells survive a large-ci flush");
        assert!(m.cells.iter().any(|c| c.scale == "large-ci" && c.experiment == "fig3"));
        let quick_fig3 =
            m.cells.iter().find(|c| c.scale == "quick" && c.experiment == "fig3").unwrap();
        assert_eq!(quick_fig3.f1, Some(0.85), "same experiment at quick scale untouched");

        // Re-flushing at large-ci replaces only the (fig3, large-ci) row.
        let mut rec5 = EvalRecorder::for_experiment("fig3", Scale::LargeCi);
        rec5.path = path.clone();
        rec5.record_metrics("ScaleLake", "Matelda", 2.0, 1, 0.65, 0.65, 0.65);
        rec5.flush().unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let m = EvalMatrix::from_json(&doc).unwrap();
        assert_eq!(m.cells.len(), 3);
        let large = m.cells.iter().find(|c| c.scale == "large-ci").unwrap();
        assert_eq!(large.f1, Some(0.65));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn committed_baseline_parses_and_passes_against_itself() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EVAL_matrix.json");
        let text = std::fs::read_to_string(path).expect("committed EVAL_matrix.json");
        let doc = Json::parse(&text).expect("baseline parses");
        let m = EvalMatrix::from_json(&doc).expect("baseline has the matrix shape");
        assert!(!m.cells.is_empty());
        // Cells from all 13 experiment binaries, plus the out-of-core
        // scale_bench row at its own (large) scale.
        let mut experiments: Vec<&str> = m.cells.iter().map(|c| c.experiment.as_str()).collect();
        experiments.sort_unstable();
        experiments.dedup();
        assert_eq!(
            experiments.len(),
            14,
            "all 13 experiment binaries plus scale_bench contribute cells: {experiments:?}"
        );
        assert!(experiments.contains(&"scale_bench"));
        assert!(
            m.cells.iter().any(|c| c.experiment == "scale_bench" && c.scale.starts_with("large")),
            "the scale_bench row is keyed by a large tier"
        );
        // Per-type recall rows exist alongside the ALL rows.
        assert!(m.cells.iter().any(|c| c.error_type == "MV" && c.support.unwrap_or(0) > 0));
        let v = compare_eval(&doc, &doc, EvalGateConfig::default());
        assert!(v.is_empty(), "self-comparison must pass: {v:?}");
    }
}
