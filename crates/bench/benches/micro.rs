//! Criterion micro-benchmarks for the substrates: embedding throughput,
//! HDBSCAN, mini-batch k-means, cell featurization, gradient boosting,
//! FD mining, and an end-to-end pipeline sample.
//!
//! Run with `cargo bench -p matelda-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use matelda_cluster::kmeans::MiniBatchKMeansConfig;
use matelda_cluster::{Hdbscan, MiniBatchKMeans};
use matelda_core::{Matelda, MateldaConfig};
use matelda_detect::{featurize_table, FeatureConfig};
use matelda_embed::encoder::{embed_table, HashedEncoder};
use matelda_fd::mine_approximate;
use matelda_lakegen::{domains, QuintetLake};
use matelda_ml::{GradientBoostingClassifier, GradientBoostingConfig};
use matelda_table::Oracle;
use matelda_text::SpellChecker;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn sample_table(rows: usize) -> matelda_table::Table {
    let mut rng = StdRng::seed_from_u64(7);
    domains::HOSPITAL.generate("bench", rows, &mut rng)
}

fn bench_embedding(c: &mut Criterion) {
    let encoder = HashedEncoder::default();
    let table = sample_table(200);
    c.bench_function("embed_table_200rows", |b| {
        b.iter(|| black_box(embed_table(&encoder, black_box(&table))))
    });
}

fn bench_hdbscan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            let cx = (i % 4) as f32 * 10.0;
            vec![cx + rng.random_range(-0.5f32..0.5), rng.random_range(-0.5..0.5)]
        })
        .collect();
    c.bench_function("hdbscan_200points", |b| {
        b.iter(|| black_box(Hdbscan::default().fit_points(black_box(&points))))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<Vec<f32>> =
        (0..2000).map(|_| (0..33).map(|_| rng.random_range(0.0..1.0)).collect()).collect();
    c.bench_function("minibatch_kmeans_2000x33_k16", |b| {
        b.iter(|| {
            let cfg = MiniBatchKMeansConfig { k: 16, seed: 1, ..Default::default() };
            black_box(MiniBatchKMeans::new(cfg).fit(black_box(&points)))
        })
    });
}

fn bench_featurize(c: &mut Criterion) {
    let table = sample_table(200);
    let spell = SpellChecker::english();
    let cfg = FeatureConfig::default();
    c.bench_function("featurize_table_200x7", |b| {
        b.iter(|| black_box(featurize_table(black_box(&table), &spell, &cfg)))
    });
}

fn bench_gbm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let x: Vec<Vec<f32>> =
        (0..200).map(|_| (0..33).map(|_| rng.random_range(0.0..1.0)).collect()).collect();
    let y: Vec<bool> = (0..200).map(|i| i % 7 == 0).collect();
    c.bench_function("gbm_fit_200x33", |b| {
        b.iter(|| {
            black_box(GradientBoostingClassifier::fit(
                black_box(&x),
                black_box(&y),
                &GradientBoostingConfig::default(),
            ))
        })
    });
}

fn bench_fd_mining(c: &mut Criterion) {
    let table = sample_table(300);
    c.bench_function("mine_approximate_300x7", |b| {
        b.iter(|| black_box(mine_approximate(black_box(&table), 0.3)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(1);
    c.bench_function("matelda_pipeline_quintet40", |b| {
        b.iter_batched(
            || Oracle::new(&lake.errors),
            |mut oracle| {
                black_box(Matelda::new(MateldaConfig::default()).detect(
                    &lake.dirty,
                    &mut oracle,
                    60,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_embedding,
    bench_hdbscan,
    bench_kmeans,
    bench_featurize,
    bench_gbm,
    bench_fd_mining,
    bench_pipeline
);
criterion_main!(micro);
