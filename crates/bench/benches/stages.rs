//! Per-stage throughput of the staged pipeline engine at 1 vs N worker
//! threads, for the four parallel hot paths: per-table embedding,
//! per-table featurization, per-domain-fold mini-batch k-means and
//! per-column gradient-boosting training.
//!
//! Besides the criterion console output, the bench records raw
//! measurements (median seconds, items/s, speedup) into
//! `BENCH_stages.json` at the repository root, so the numbers are
//! machine-readable. Two threads is always measured under fixed
//! `secs_2t`/`items_per_sec_2t`/`speedup_2t` keys — the per-thread-count
//! baseline the gate's `--require-2t` clauses compare against — plus
//! the host's full parallelism when that differs from 2. The stage
//! outputs are bit-identical at 1/2/4/8 threads (asserted here as a
//! guard); only wall time may differ.

use criterion::{black_box, criterion_group, Criterion};
use matelda_core::{
    ClassifyStage, DomainFoldStage, Durability, EmbedStage, FeaturizeStage, LabelStage, Matelda,
    MateldaConfig, Oracle, QualityFoldStage, Stage, StageContext,
};
use matelda_lakegen::{GeneratedLake, QuintetLake};

const BUDGET: usize = 40;

fn bench_lake() -> GeneratedLake {
    let rows = match std::env::var("MATELDA_SCALE").unwrap_or_default().as_str() {
        "quick" => 40,
        "small" => 80,
        _ => 160,
    };
    QuintetLake { rows_per_table: rows, error_rate: 0.08 }.generate(1)
}

/// Runs the full staged pipeline at `threads`, returning per-stage wall
/// seconds and the flagged-cell count (for the determinism guard).
fn staged_run(lake: &GeneratedLake, threads: usize) -> (Vec<(String, f64, u64)>, usize, usize) {
    let cfg = MateldaConfig { threads, ..Default::default() };
    let mut oracle = Oracle::new(&lake.errors);
    let result = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, BUDGET);
    let stages =
        result.report.stages.iter().map(|s| (s.name.clone(), s.wall_secs, s.items)).collect();
    (stages, result.predicted.count(), result.labels_used)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Measures what fault isolation costs: the same per-table featurization
/// workload through `Executor::map` (no isolation) vs `Executor::try_map`
/// (one `catch_unwind` per item), single-threaded so per-item overhead is
/// not hidden by parallel slack. Returns (map_secs, try_map_secs).
fn fault_isolation_secs(lake: &GeneratedLake, reps: usize) -> (f64, f64) {
    let exec = matelda_exec::Executor::new(1);
    let spell = matelda_text::SpellChecker::english();
    let cfg = matelda_detect::FeatureConfig::default();
    let time = |isolated: bool| -> f64 {
        median(
            (0..reps)
                .map(|_| {
                    let start = std::time::Instant::now();
                    if isolated {
                        let r = exec.try_map("bench", &lake.dirty.tables, |_, t| {
                            matelda_detect::featurize_table(t, &spell, &cfg)
                        });
                        black_box(r);
                    } else {
                        let r = exec.map(&lake.dirty.tables, |_, t| {
                            matelda_detect::featurize_table(t, &spell, &cfg)
                        });
                        black_box(r);
                    }
                    start.elapsed().as_secs_f64()
                })
                .collect(),
        )
    };
    (time(false), time(true))
}

/// Rows per table of the lake the checkpoint overhead is measured on.
///
/// Deliberately larger than the per-stage bench lake: stage-level
/// durability exists for runs long enough that losing them hurts, so
/// its cost is quoted against a workload of that size. On a tiny lake
/// the fixed price of seven fsync'd commits (~tens of ms on ext4)
/// dwarfs a sub-100ms pipeline and says nothing about real overhead.
const CKPT_ROWS: usize = 1280;

/// Measures what durability costs: the full pipeline uncheckpointed vs
/// committing every stage snapshot (atomic tmp+fsync+rename), plus a
/// warm resume that restores all six stages from disk instead of
/// recomputing. Single-threaded so the I/O is not hidden by parallel
/// slack; plain/durable reps interleave so host drift cancels instead
/// of biasing one side. Returns (plain_secs, durable_secs, resume_secs).
fn checkpoint_secs(reps: usize) -> (f64, f64, f64) {
    let lake = QuintetLake { rows_per_table: CKPT_ROWS, error_rate: 0.08 }.generate(2);
    let dir = std::env::temp_dir().join(format!("matelda-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pipeline = Matelda::new(MateldaConfig { threads: 1, ..Default::default() });
    let run = |durability: Option<&Durability>| -> f64 {
        let mut oracle = Oracle::new(&lake.errors);
        let start = std::time::Instant::now();
        let result = match durability {
            Some(d) => pipeline
                .detect_durable(&lake.dirty, &mut oracle, BUDGET, d)
                .expect("durable bench run"),
            None => pipeline.detect(&lake.dirty, &mut oracle, BUDGET),
        };
        black_box(result);
        start.elapsed().as_secs_f64()
    };
    let write =
        Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
    let (mut plains, mut durables) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        plains.push(run(None));
        durables.push(run(Some(&write)));
    }
    // The snapshots of the last write run are still on disk: every
    // resume rep restores all six stages without recomputation.
    let resume =
        Durability { checkpoint_dir: Some(dir.clone()), resume: true, ..Default::default() };
    let resumed = median((0..reps).map(|_| run(Some(&resume))).collect());
    let _ = std::fs::remove_dir_all(&dir);
    (median(plains), median(durables), resumed)
}

/// Measures what observability costs: the full pipeline with tracing off
/// (a disabled handle — the shipped default) vs on (spans, events and
/// metrics recorded). Single-threaded, off/on reps interleaved so host
/// drift cancels. Returns (off_secs, on_secs, spans, events) with the
/// span/event counts of one traced run as a volume record.
fn observability_secs(lake: &GeneratedLake, reps: usize) -> (f64, f64, usize, usize) {
    let run = |obs: matelda_obs::Obs| -> f64 {
        let pipeline =
            Matelda::new(MateldaConfig { threads: 1, ..Default::default() }).with_obs(obs);
        let mut oracle = Oracle::new(&lake.errors);
        let start = std::time::Instant::now();
        let result = pipeline.detect(&lake.dirty, &mut oracle, BUDGET);
        black_box(result);
        start.elapsed().as_secs_f64()
    };
    let (mut offs, mut ons) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        offs.push(run(matelda_obs::Obs::disabled()));
        ons.push(run(matelda_obs::Obs::enabled()));
    }
    let probe = matelda_obs::Obs::enabled();
    run(probe.clone());
    (median(offs), median(ons), probe.spans().len(), probe.events().len())
}

/// Measures what serving costs: a full durable detection requested
/// through a live `matelda-serve` daemon (loopback TCP, framing,
/// admission, registry lookup, memo-cache key derivation) vs the same
/// `detect_durable` called directly. A distinct seed per rep keeps every
/// run a fresh full pipeline — no memo hits, no stage restores — so the
/// delta is pure request overhead. Direct/served reps interleave so
/// host drift cancels. Returns (direct_secs, served_secs).
fn serve_secs(reps: usize) -> (f64, f64) {
    use matelda_serve::{request, serve, DetectJob, Request, Response, ServeOptions};
    let lake = bench_lake();
    let root = std::env::temp_dir().join(format!("matelda-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dirty_dir = root.join("dirty");
    let clean_dir = root.join("clean");
    matelda_table::write_lake_to_dir(&lake.dirty, &dirty_dir).expect("write dirty lake");
    matelda_table::write_lake_to_dir(&lake.clean, &clean_dir).expect("write clean lake");
    let handle =
        serve(ServeOptions { state_dir: root.join("state"), threads: 1, ..Default::default() })
            .expect("bench daemon");
    let addr = handle.addr();
    let template = DetectJob {
        dirty_dir: dirty_dir.to_str().unwrap().to_string(),
        clean_dir: clean_dir.to_str().unwrap().to_string(),
        budget: BUDGET as u64,
        seed: 999_999,
        variant: "standard".to_string(),
        deadline_ms: 0,
        fresh: true,
    };
    // Warm the registry and the page cache before timing anything.
    request(addr, &Request::Detect(template.clone())).expect("warm request");

    // The direct side works on the same from-disk parse the daemon's
    // registry holds, with the same derived truth, per-request tracing
    // and per-stage checkpointing — only the service layer differs.
    let opts = matelda_table::ReadOptions::strict();
    let (dirty_lake, _) = matelda_table::read_lake_from_dir_with(&dirty_dir, &opts).expect("dirty");
    let (clean_lake, _) = matelda_table::read_lake_from_dir_with(&clean_dir, &opts).expect("clean");
    let truth = matelda_table::diff_lakes(&dirty_lake, &clean_lake);
    let direct_run = |seed: u64| -> f64 {
        let cfg = MateldaConfig { threads: 1, seed, ..Default::default() };
        let durability = Durability {
            checkpoint_dir: Some(root.join(format!("direct-{seed}"))),
            resume: true,
            ..Default::default()
        };
        let mut oracle = Oracle::new(&truth);
        let pipeline = Matelda::new(cfg).with_obs(matelda_obs::Obs::enabled());
        let start = std::time::Instant::now();
        let result = pipeline
            .detect_durable(&dirty_lake, &mut oracle, BUDGET, &durability)
            .expect("direct durable run");
        black_box(result);
        start.elapsed().as_secs_f64()
    };
    let served_run = |seed: u64| -> f64 {
        let job = DetectJob { seed, ..template.clone() };
        let start = std::time::Instant::now();
        match request(addr, &Request::Detect(job)).expect("served run") {
            Response::Result(r) => black_box(r),
            other => panic!("bench request failed: {other:?}"),
        };
        start.elapsed().as_secs_f64()
    };
    let (mut directs, mut serveds) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        let seed = 1_000 + rep as u64;
        directs.push(direct_run(seed));
        serveds.push(served_run(seed));
    }
    let _ = request(addr, &Request::Shutdown);
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
    (median(directs), median(serveds))
}

/// Commits per timed storage rep and the payload size of each — enough
/// fsync'd commits that the seam's per-op cost would show against the
/// dominant I/O if it weren't near-zero.
const STORAGE_COMMITS: usize = 48;
const STORAGE_PAYLOAD: usize = 64 * 1024;

/// Measures what the VFS seam costs: `Vfs::real().write_atomic` (an
/// `Option` check and an atomic op-count bump per operation) vs the
/// identical tmp + fsync + rename + dir-fsync sequence hand-coded on
/// `std::fs`. Direct/seamed reps interleave so host drift cancels.
/// Returns (direct_secs, vfs_secs).
fn storage_secs(reps: usize) -> (f64, f64) {
    use std::io::Write as _;
    let dir = std::env::temp_dir().join(format!("matelda-bench-vfs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench storage dir");
    let payload = vec![0xA5u8; STORAGE_PAYLOAD];

    let direct_run = || -> f64 {
        let start = std::time::Instant::now();
        for i in 0..STORAGE_COMMITS {
            let tmp = dir.join(format!("direct-{i}.tmp"));
            let target = dir.join(format!("direct-{i}.bin"));
            let mut f = std::fs::File::create(&tmp).expect("create tmp");
            f.write_all(&payload).expect("write tmp");
            f.sync_all().expect("fsync tmp");
            std::fs::rename(&tmp, &target).expect("rename");
            if let Ok(d) = std::fs::File::open(&dir) {
                let _ = d.sync_all();
            }
        }
        start.elapsed().as_secs_f64()
    };
    let vfs = matelda_ckpt::Vfs::real();
    let vfs_run = || -> f64 {
        let start = std::time::Instant::now();
        for i in 0..STORAGE_COMMITS {
            vfs.write_atomic(&dir.join(format!("vfs-{i}.bin")), &payload).expect("vfs commit");
        }
        start.elapsed().as_secs_f64()
    };
    let (mut directs, mut vfss) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        directs.push(direct_run());
        vfss.push(vfs_run());
    }
    let _ = std::fs::remove_dir_all(&dir);
    (median(directs), median(vfss))
}

fn bench_stages(c: &mut Criterion) {
    let lake = bench_lake();
    let n_threads = std::thread::available_parallelism().map_or(4, |n| n.get()).max(2);

    // Criterion timings for the individual parallel hot paths.
    for threads in [1usize, n_threads] {
        let cfg = MateldaConfig { threads, ..Default::default() };
        let mut ctx = StageContext::new(&lake.dirty, &cfg);
        let embedded = EmbedStage::from_config(&cfg).run(&mut ctx, ());
        let domain = DomainFoldStage.run(&mut ctx, &embedded);
        let featurized = FeaturizeStage::default().run(&mut ctx, ());
        let quality = QualityFoldStage { budget: BUDGET }.run(&mut ctx, (&domain, &featurized));
        let mut oracle = Oracle::new(&lake.errors);
        let propagated = LabelStage { labeler: &mut oracle, budget: BUDGET }
            .run(&mut ctx, (&quality, &featurized));

        c.bench_function(&format!("embed/t{threads}"), |b| {
            b.iter(|| EmbedStage::from_config(&cfg).run(black_box(&mut ctx), ()))
        });
        c.bench_function(&format!("featurize/t{threads}"), |b| {
            b.iter(|| FeaturizeStage::default().run(black_box(&mut ctx), ()))
        });
        c.bench_function(&format!("quality_folds/t{threads}"), |b| {
            b.iter(|| QualityFoldStage { budget: BUDGET }.run(&mut ctx, (&domain, &featurized)))
        });
        c.bench_function(&format!("classify/t{threads}"), |b| {
            b.iter(|| ClassifyStage.run(&mut ctx, (&domain, &featurized, &propagated)))
        });
    }
}

/// End-to-end per-stage measurement and the JSON record.
fn emit_json() {
    let lake = bench_lake();
    let n_threads = std::thread::available_parallelism().map_or(4, |n| n.get()).max(2);
    let reps = 3;

    // Determinism guard across the pool's whole operating range: the
    // flagged mask and label spend must be identical at 1/2/4/8 threads
    // (the pool's work-stealing schedule may differ; results may not).
    let (_, flagged_1, labels_1) = staged_run(&lake, 1);
    for threads in [2usize, 4, 8] {
        let (_, flagged_t, labels_t) = staged_run(&lake, threads);
        assert_eq!(flagged_1, flagged_t, "results must not depend on thread count ({threads}t)");
        assert_eq!(labels_1, labels_t, "label spend must not depend on thread count ({threads}t)");
    }

    let measure = |threads: usize| -> Vec<(String, f64, u64)> {
        let runs: Vec<Vec<(String, f64, u64)>> =
            (0..reps).map(|_| staged_run(&lake, threads).0).collect();
        (0..runs[0].len())
            .map(|si| {
                let name = runs[0][si].0.clone();
                let secs = median(runs.iter().map(|r| r[si].1).collect());
                (name, secs, runs[0][si].2)
            })
            .collect()
    };
    let single = measure(1);
    // Two threads is measured unconditionally — the per-thread-count
    // baseline the gate's `--require-2t` clauses compare against lives
    // under fixed `*_2t` keys, whatever the host's core count.
    let two = measure(2);
    let multi = if n_threads == 2 { two.clone() } else { measure(n_threads) };

    let mut stages_json = String::new();
    for (i, ((name, s1, items), ((_, s2, _), (_, sn, _)))) in
        single.iter().zip(two.iter().zip(&multi)).enumerate()
    {
        if i > 0 {
            stages_json.push(',');
        }
        let speedup = if *sn > 0.0 { s1 / sn } else { 1.0 };
        let speedup_2 = if *s2 > 0.0 { s1 / s2 } else { 1.0 };
        let thr1 = if *s1 > 0.0 { *items as f64 / s1 } else { 0.0 };
        let thr2 = if *s2 > 0.0 { *items as f64 / s2 } else { 0.0 };
        let thrn = if *sn > 0.0 { *items as f64 / sn } else { 0.0 };
        stages_json.push_str(&format!(
            "{{\"stage\":\"{name}\",\"items\":{items},\"secs_1t\":{s1:.6},\"secs_2t\":{s2:.6},\"items_per_sec_1t\":{thr1:.1},\"items_per_sec_2t\":{thr2:.1},\"speedup_2t\":{speedup_2:.3}"
        ));
        if n_threads != 2 {
            stages_json.push_str(&format!(
                ",\"secs_{n}t\":{sn:.6},\"items_per_sec_{n}t\":{thrn:.1}",
                n = n_threads
            ));
        }
        stages_json.push_str(&format!(",\"speedup\":{speedup:.3}}}"));
    }
    let total_1: f64 = single.iter().map(|s| s.1).sum();
    let total_2: f64 = two.iter().map(|s| s.1).sum();
    let total_n: f64 = multi.iter().map(|s| s.1).sum();
    // Fault-isolation overhead: try_map vs map on the same workload.
    // Target: < 5% (the per-item catch_unwind must be nearly free).
    // Deep sample: each rep is only ~10ms, so a 5-rep median wobbles
    // past the budget on a busy 1-core host; 11 reps hold it steady.
    let (map_secs, try_secs) = fault_isolation_secs(&lake, 11);
    let overhead_pct = if map_secs > 0.0 { 100.0 * (try_secs - map_secs) / map_secs } else { 0.0 };
    // Checkpoint overhead: snapshot write+read on every stage vs an
    // uncheckpointed run. Target: < 5% end-to-end. More reps than the
    // stage timings: the signal is a few percent, so the median needs a
    // deeper sample to beat scheduler noise on small hosts.
    let (plain_secs, durable_secs, resume_secs) = checkpoint_secs(9);
    let ckpt_pct =
        if plain_secs > 0.0 { 100.0 * (durable_secs - plain_secs) / plain_secs } else { 0.0 };
    let resume_speedup = if resume_secs > 0.0 { plain_secs / resume_secs } else { 1.0 };
    // Observability overhead: tracing on vs off on the full pipeline.
    // Target: < 5% with tracing enabled; a disabled handle is the
    // default and must stay at ~0% (an Option branch per record call).
    let (obs_off_secs, obs_on_secs, obs_spans, obs_events) = observability_secs(&lake, 9);
    let obs_pct =
        if obs_off_secs > 0.0 { 100.0 * (obs_on_secs - obs_off_secs) / obs_off_secs } else { 0.0 };
    // Serving overhead: a full durable detection through the daemon vs
    // direct detect_durable. Target: < 5% — the service layer (TCP,
    // framing, admission, registry, cache keying) must be nearly free
    // relative to the detection it wraps.
    let (serve_direct_secs, serve_served_secs) = serve_secs(9);
    let serve_pct = if serve_direct_secs > 0.0 {
        100.0 * (serve_served_secs - serve_direct_secs) / serve_direct_secs
    } else {
        0.0
    };
    // Storage-seam overhead: every durability byte now routes through
    // the injectable Vfs (DESIGN.md §12). Target: < 5% vs hand-coded
    // direct I/O — the seam is an Option check, not a tax.
    let (storage_direct_secs, storage_vfs_secs) = storage_secs(9);
    let storage_pct = if storage_direct_secs > 0.0 {
        100.0 * (storage_vfs_secs - storage_direct_secs) / storage_direct_secs
    } else {
        0.0
    };
    let scale = std::env::var("MATELDA_SCALE").unwrap_or_else(|_| "full".to_string());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stages.json");
    // Preserve the out-of-core `scale` section (written by scale_bench):
    // the stages bench measures the sweep, not the scale tier, so
    // rewriting the file must not drop the tier's numbers.
    let preserved_scale = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| matelda_bench::json::Json::parse(&text).ok())
        .and_then(|doc| doc.get("scale").cloned())
        .filter(|s| matches!(s, matelda_bench::json::Json::Obj(_)))
        .map(|s| format!(",\"scale\":{}", s.render()))
        .unwrap_or_default();
    let threads_compared =
        if n_threads == 2 { "[1,2]".to_string() } else { format!("[1,2,{n_threads}]") };
    let extra_totals = if n_threads == 2 {
        String::new()
    } else {
        format!(
            ",\"total_secs_{n}t\":{total_n:.6},\"end_to_end_speedup\":{sp:.3}",
            n = n_threads,
            sp = if total_n > 0.0 { total_1 / total_n } else { 1.0 }
        )
    };
    let json = format!(
        "{{\"bench\":\"stages\",\"sweep\":\"{scale}\",\"host_parallelism\":{host},\"threads_compared\":{threads_compared},\"determinism_thread_counts\":[1,2,4,8],\"reps\":{reps},\"total_secs_1t\":{total_1:.6},\"total_secs_2t\":{total_2:.6},\"end_to_end_speedup_2t\":{sp2:.3}{extra_totals},\"flagged_cells\":{flagged_1},\"deterministic_across_threads\":true,\"fault_isolation\":{{\"map_secs\":{map_secs:.6},\"try_map_secs\":{try_secs:.6},\"overhead_pct\":{overhead_pct:.2},\"target_pct\":5.0}},\"checkpoint\":{{\"rows_per_table\":{ckpt_rows},\"plain_secs\":{plain_secs:.6},\"durable_secs\":{durable_secs:.6},\"overhead_pct\":{ckpt_pct:.2},\"target_pct\":5.0,\"resume_secs\":{resume_secs:.6},\"resume_speedup\":{resume_speedup:.2}}},\"observability\":{{\"off_secs\":{obs_off_secs:.6},\"on_secs\":{obs_on_secs:.6},\"overhead_pct\":{obs_pct:.2},\"target_pct\":5.0,\"spans\":{obs_spans},\"events\":{obs_events}}},\"serve\":{{\"direct_secs\":{serve_direct_secs:.6},\"served_secs\":{serve_served_secs:.6},\"overhead_pct\":{serve_pct:.2},\"target_pct\":5.0}},\"storage\":{{\"commits\":{storage_commits},\"payload_bytes\":{storage_payload},\"direct_secs\":{storage_direct_secs:.6},\"vfs_secs\":{storage_vfs_secs:.6},\"overhead_pct\":{storage_pct:.2},\"target_pct\":5.0}},\"stages\":[{stages_json}]{preserved_scale}}}\n",
        host = std::thread::available_parallelism().map_or(1, |v| v.get()),
        ckpt_rows = CKPT_ROWS,
        storage_commits = STORAGE_COMMITS,
        storage_payload = STORAGE_PAYLOAD,
        sp2 = if total_2 > 0.0 { total_1 / total_2 } else { 1.0 },
    );
    std::fs::write(path, &json).expect("write BENCH_stages.json");
    println!("\nwrote {path}");
    print!("{json}");
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group!(name = benches; config = config(); targets = bench_stages);

fn main() {
    benches();
    emit_json();
}
