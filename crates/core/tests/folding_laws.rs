//! Partition laws for every domain-folding strategy: each table must land
//! in exactly one fold, folds carry all columns of their member tables,
//! and the budget split respects its floor — on generated multi-domain
//! lakes, not toy fixtures.

use matelda_core::domain_fold::{domain_folds, refine_syntactic, DomainFolding};
use matelda_core::quality_fold::budget_per_fold;
use matelda_embed::encoder::HashedEncoder;
use matelda_lakegen::DGovLake;

fn strategies() -> Vec<DomainFolding> {
    vec![
        DomainFolding::Hdbscan,
        DomainFolding::ExtremeDomainFolding,
        DomainFolding::RowSampling(0.3),
        DomainFolding::SantosLike,
        DomainFolding::SantosSketch(64),
    ]
}

#[test]
fn every_strategy_partitions_the_tables() {
    let lake = DGovLake::ntr().with_n_tables(14).generate(6).dirty;
    let encoder = HashedEncoder::default();
    for strategy in strategies() {
        let folds = domain_folds(&lake, strategy, &encoder, 0);
        // Exactly one fold per table.
        let mut covered: Vec<usize> = folds.iter().flat_map(|f| f.tables()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..14).collect::<Vec<_>>(), "{strategy:?}");
        // Column counts add up to the lake's.
        let cols: usize = folds.iter().map(|f| f.n_columns()).sum();
        assert_eq!(cols, lake.n_columns(), "{strategy:?}");
    }
}

#[test]
fn syntactic_refinement_preserves_column_coverage() {
    let lake = DGovLake::ntr().with_n_tables(10).generate(2).dirty;
    let encoder = HashedEncoder::default();
    let folds = domain_folds(&lake, DomainFolding::Hdbscan, &encoder, 0);
    let before: usize = folds.iter().map(|f| f.n_columns()).sum();
    let refined = refine_syntactic(&lake, folds, 8);
    let after: usize = refined.iter().map(|f| f.n_columns()).sum();
    assert_eq!(before, after, "refinement must not drop or duplicate columns");
    assert!(!refined.is_empty());
    // No column appears in two folds.
    let mut all: Vec<(usize, usize)> = refined.iter().flat_map(|f| f.columns.clone()).collect();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n);
}

#[test]
fn budget_split_is_proportional_and_floored() {
    let lake = DGovLake::ntr().with_n_tables(12).generate(4).dirty;
    let encoder = HashedEncoder::default();
    let folds = domain_folds(&lake, DomainFolding::Hdbscan, &encoder, 0);
    for budget in [0usize, 5, 50, 500] {
        let split = budget_per_fold(&folds, budget);
        assert_eq!(split.len(), folds.len());
        // The split never overspends the grant.
        assert!(split.iter().sum::<usize>() <= budget, "budget {budget}: {split:?}");
        // Floor of two labels per fold (Alg. 1 line 12) whenever the
        // budget can afford it.
        if budget >= 2 * folds.len() {
            assert!(split.iter().all(|&k| k >= 2), "budget {budget}: {split:?}");
        }
        // Above the floor, bigger folds get at least as much as smaller.
        let mut pairs: Vec<(usize, usize)> =
            folds.iter().map(|f| f.n_columns()).zip(split.iter().copied()).collect();
        pairs.sort();
        for w in pairs.windows(2) {
            if w[0].1 > 2 && w[1].1 > 2 {
                assert!(w[0].1 <= w[1].1, "budget {budget}: non-monotone split {pairs:?}");
            }
        }
    }
}
