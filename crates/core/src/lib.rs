//! # matelda-core
//!
//! The MaTElDa pipeline (Ahmadi et al., EDBT 2025, Alg. 1): semi-supervised
//! error detection over a *set* of tables with a labeling budget smaller
//! than the number of tables.
//!
//! ```text
//! Step 1  Domain-based cell folding   (serialize → embed → HDBSCAN)
//! Step 2  Quality-based cell folding  (unified detector features → mini-batch k-means)
//! Step 3  Sampling & labeling         (cell nearest each fold centroid → user label)
//! Step 4  Label propagation           (label shared with the whole fold)
//! Step 5  Classification              (one gradient-boosting model per column)
//! ```
//!
//! [`MateldaConfig`] exposes every variant the paper evaluates:
//!
//! * §4.5.1 folding strategies — [`DomainFolding::ExtremeDomainFolding`]
//!   (Matelda-EDF) and [`MateldaConfig::syntactic_refinement`] (+SF);
//! * §4.5.2 domain-folding designs — [`DomainFolding::RowSampling`]
//!   (Matelda-RS) and [`DomainFolding::SantosLike`] (Matelda-Santos);
//! * §4.5.3 feature ablations — via [`matelda_detect::FeatureConfig`]
//!   (NOD / NTD / NRVD);
//! * §4.5.4 training strategies — [`TrainingStrategy::PerDomainFold`]
//!   (TPDF) and [`TrainingStrategy::UnlabeledCellFolds`] (TUCF).
//!
//! ## Quick example
//!
//! ```
//! use matelda_core::{Matelda, MateldaConfig, Oracle};
//! use matelda_lakegen::QuintetLake;
//!
//! let lake = QuintetLake { rows_per_table: 40, ..Default::default() }.generate(1);
//! let mut oracle = Oracle::new(&lake.errors);
//! let result = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, 30);
//! let conf = matelda_table::Confusion::from_masks(&result.predicted, &lake.errors);
//! assert!(conf.f1() > 0.0);
//! ```

pub mod domain_fold;
pub mod engine;
pub mod pipeline;
pub mod quality_fold;
pub mod repair;
pub mod report;
pub mod scale;
pub mod snapshot;

pub use domain_fold::{domain_folds, DomainFolding, EmbeddedLake, Fold};
pub use engine::{
    ClassifyStage, DomainFoldStage, DomainFolds, EmbedStage, FeaturizeStage, FeaturizedLake,
    LabelStage, LabeledFold, Predictions, PropagatedLabels, QualityFoldEntry, QualityFoldStage,
    QualityFolds, QuarantineReport, Stage, StageContext,
};
pub use matelda_ckpt::{CheckpointStore, CkptError, Manifest, Vfs};
pub use matelda_exec::{Executor, ItemFault, RunReport, StageReport};
pub use matelda_obs::Obs;
pub use matelda_table::oracle::{Labeler, Oracle};
pub use pipeline::{
    DetectionResult, Durability, DurabilityPolicy, FaultPolicy, LabelingStrategy, Matelda,
    MateldaConfig, RunArtifacts, TrainingStrategy,
};
pub use repair::{suggest_repairs, Repair, RepairStrategy};
pub use report::{analyze_failures, CellDiagnosis, FailureReport, Misclass};
pub use scale::{OutOfCoreError, OutOfCoreOpts, OutOfCoreRun};
pub use snapshot::{decode_snapshot, encode_snapshot, ArtifactCodec, CtxState};
