//! Step 2 — quality-based cell folding (paper §3.3): embed every cell of a
//! domain fold in the unified detector feature space and cluster into `k`
//! quality folds, where `k` is the fold's share of the labeling budget.

use crate::domain_fold::Fold;
use matelda_cluster::kmeans::{sq_dist, MiniBatchKMeans, MiniBatchKMeansConfig};
use matelda_cluster::PointMatrix;
use matelda_detect::CellFeatures;
use matelda_table::{CellId, Lake};

/// One quality fold: member cells plus the centroid they cluster around.
#[derive(Debug, Clone)]
pub struct QualityFold {
    /// Member cells.
    pub cells: Vec<CellId>,
    /// The cluster centroid in feature space.
    pub centroid: Vec<f32>,
}

impl QualityFold {
    /// The member cell nearest the centroid — the labeling sample
    /// (Alg. 1 line 15). Ties break to the smallest `CellId` for
    /// determinism. The accessor returns *borrowed* feature slices:
    /// this sits on the labeling hot path and scanning a fold's members
    /// must not clone a vector per cell.
    pub fn sample<'f>(&self, features: &impl Fn(CellId) -> &'f [f32]) -> CellId {
        let mut best = self.cells[0];
        let mut best_d = f32::INFINITY;
        for &id in &self.cells {
            let d = sq_dist(features(id), &self.centroid);
            if d < best_d || (d == best_d && id < best) {
                best_d = d;
                best = id;
            }
        }
        best
    }
}

/// Splits the labeling budget over domain folds proportional to their
/// column counts, with the paper's floor of two labels per fold
/// (Alg. 1 line 12: `k = max(2, Λ · |cols(df)| / |cols(S)|)`), clamped
/// so the allocations never sum past `total_budget`: the floor (and
/// proportional rounding) can overspend when the budget is smaller than
/// `2 · |folds|`, in which case the largest allocations are shrunk —
/// possibly to zero, leaving some folds unlabeled — until the sum fits.
/// The pipeline therefore never draws more labels than granted.
pub fn budget_per_fold(folds: &[Fold], total_budget: usize) -> Vec<usize> {
    let total_cols: usize = folds.iter().map(Fold::n_columns).sum();
    let mut budgets: Vec<usize> = folds
        .iter()
        .map(|f| {
            if total_cols == 0 {
                2
            } else {
                let share = total_budget as f64 * f.n_columns() as f64 / total_cols as f64;
                (share.round() as usize).max(2)
            }
        })
        .collect();
    let mut sum: usize = budgets.iter().sum();
    while sum > total_budget {
        // Shrink the largest allocation; ties break to the later fold so
        // earlier (conventionally larger) folds keep their labels longest.
        let i = (0..budgets.len())
            .max_by_key(|&i| (budgets[i], i))
            .expect("sum > 0 implies at least one fold");
        budgets[i] -= 1;
        sum -= 1;
    }
    budgets
}

/// Clusters one domain fold's cells into `k` quality folds with
/// mini-batch k-means over the unified feature space.
pub fn quality_folds(
    lake: &Lake,
    fold: &Fold,
    features: &[CellFeatures],
    k: usize,
    batch_size: usize,
    iterations: usize,
    seed: u64,
) -> Vec<QualityFold> {
    // Gather the fold's cells and vectors.
    let mut ids: Vec<CellId> = Vec::new();
    for &(t, c) in &fold.columns {
        for r in 0..lake[t].n_rows() {
            ids.push(CellId::new(t, r, c));
        }
    }
    if ids.is_empty() {
        return Vec::new();
    }
    // Gather into one contiguous matrix (a single allocation, borrowed
    // slices copied in place) — the layout the blocked k-means kernel
    // consumes directly.
    let dim = features[ids[0].table].dim;
    let mut points = PointMatrix::with_capacity(ids.len(), dim);
    for id in &ids {
        points.push_row(features[id.table].get(id.row, id.col));
    }

    let fit =
        MiniBatchKMeans::new(MiniBatchKMeansConfig { k: k.max(1), batch_size, iterations, seed })
            .fit_matrix(&points);

    let n_centers = fit.centers.len();
    let mut folds: Vec<QualityFold> = (0..n_centers)
        .map(|c| QualityFold { cells: Vec::new(), centroid: fit.centers[c].clone() })
        .collect();
    for (i, &cluster) in fit.assignments.iter().enumerate() {
        folds[cluster].cells.push(ids[i]);
    }
    folds.retain(|f| !f.cells.is_empty());
    folds
}

/// The degraded form of [`quality_folds`]: the whole domain fold as one
/// quality fold around the mean feature vector. The engine falls back to
/// this when a fold's k-means faults under
/// [`FaultPolicy::Skip`](crate::pipeline::FaultPolicy::Skip) — a single
/// fold still lets the label stage spend one label and propagate it,
/// instead of dropping the domain fold entirely. Returns `None` for a
/// cell-less fold.
pub fn single_quality_fold(
    lake: &Lake,
    fold: &Fold,
    features: &[CellFeatures],
) -> Option<QualityFold> {
    let mut cells: Vec<CellId> = Vec::new();
    for &(t, c) in &fold.columns {
        for r in 0..lake[t].n_rows() {
            cells.push(CellId::new(t, r, c));
        }
    }
    if cells.is_empty() {
        return None;
    }
    let dim = features[cells[0].table].get(cells[0].row, cells[0].col).len();
    // f64 accumulators: the mean must not depend on summation overflow
    // or f32 cancellation for large folds.
    let mut acc = vec![0.0f64; dim];
    for &id in &cells {
        for (a, &v) in acc.iter_mut().zip(features[id.table].get(id.row, id.col)) {
            *a += f64::from(v);
        }
    }
    let n = cells.len() as f64;
    let centroid: Vec<f32> = acc.into_iter().map(|a| (a / n) as f32).collect();
    Some(QualityFold { cells, centroid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_detect::{featurize_table, FeatureConfig};
    use matelda_table::{Column, Table};
    use matelda_text::SpellChecker;

    fn lake() -> Lake {
        Lake::new(vec![Table::new(
            "t",
            vec![
                Column::new("age", ["24", "25", "26", "9000", "27", "24"]),
                Column::new("name", ["red", "blue", "green", "red", "blue", "qqzzk"]),
            ],
        )])
    }

    fn features(lake: &Lake) -> Vec<CellFeatures> {
        let spell = SpellChecker::english();
        let cfg = FeatureConfig::default();
        lake.tables.iter().map(|t| featurize_table(t, &spell, &cfg)).collect()
    }

    #[test]
    fn budget_split_proportional_with_floor() {
        let folds = vec![Fold { columns: vec![(0, 0); 8] }, Fold { columns: vec![(0, 0); 2] }];
        let b = budget_per_fold(&folds, 20);
        assert_eq!(b, vec![16, 4]);
        // Tiny share still gets the floor of two — and the larger fold's
        // rounded share is clamped so the total stays within budget.
        let b = budget_per_fold(&folds, 4);
        assert_eq!(b, vec![2, 2]);
        assert!(budget_per_fold(&[], 10).is_empty());
    }

    #[test]
    fn budget_split_never_overspends() {
        let folds = vec![
            Fold { columns: vec![(0, 0); 8] },
            Fold { columns: vec![(0, 0); 2] },
            Fold { columns: vec![(0, 0); 1] },
        ];
        for budget in 0..30 {
            let b = budget_per_fold(&folds, budget);
            assert!(b.iter().sum::<usize>() <= budget, "budget {budget}: {b:?}");
        }
        // Below the 2-per-fold floor the shrinking equalizes: repeatedly
        // decrementing the largest allocation spreads the loss.
        assert_eq!(budget_per_fold(&folds, 3), vec![1, 1, 1]);
        assert_eq!(budget_per_fold(&folds, 0), vec![0, 0, 0]);
    }

    #[test]
    fn folds_partition_the_cells() {
        let l = lake();
        let fold = Fold { columns: vec![(0, 0), (0, 1)] };
        let f = features(&l);
        let qf = quality_folds(&l, &fold, &f, 4, 64, 50, 0);
        let total: usize = qf.iter().map(|q| q.cells.len()).sum();
        assert_eq!(total, 12);
        let mut all: Vec<CellId> = qf.iter().flat_map(|q| q.cells.clone()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 12, "no duplicates");
    }

    #[test]
    fn dirty_and_clean_cells_separate() {
        let l = lake();
        let fold = Fold { columns: vec![(0, 0)] };
        let f = features(&l);
        let qf = quality_folds(&l, &fold, &f, 2, 64, 80, 1);
        assert_eq!(qf.len(), 2);
        // The 9000 outlier should sit alone (or at least apart from the
        // typical ages).
        let outlier_fold =
            qf.iter().find(|q| q.cells.contains(&CellId::new(0, 3, 0))).expect("exists");
        assert!(
            outlier_fold.cells.len() < 6,
            "outlier should not share a fold with all cells: {outlier_fold:?}"
        );
    }

    #[test]
    fn sample_is_a_member_cell() {
        let l = lake();
        let fold = Fold { columns: vec![(0, 0), (0, 1)] };
        let f = features(&l);
        let qf = quality_folds(&l, &fold, &f, 3, 64, 50, 2);
        let get = |id: CellId| f[id.table].get(id.row, id.col);
        for q in &qf {
            let s = q.sample(&get);
            assert!(q.cells.contains(&s));
        }
    }

    #[test]
    fn empty_fold_no_quality_folds() {
        let l = lake();
        let fold = Fold { columns: vec![] };
        let f = features(&l);
        assert!(quality_folds(&l, &fold, &f, 2, 64, 10, 0).is_empty());
    }

    #[test]
    fn single_fold_fallback_covers_all_cells_with_mean_centroid() {
        let l = lake();
        let fold = Fold { columns: vec![(0, 0), (0, 1)] };
        let f = features(&l);
        let qf = single_quality_fold(&l, &fold, &f).expect("non-empty fold");
        assert_eq!(qf.cells.len(), 12);
        // Centroid is the elementwise mean of the member vectors.
        let dim = qf.centroid.len();
        for d in 0..dim {
            let mean: f64 = qf
                .cells
                .iter()
                .map(|&id| f64::from(f[id.table].get(id.row, id.col)[d]))
                .sum::<f64>()
                / 12.0;
            assert!((f64::from(qf.centroid[d]) - mean).abs() < 1e-6, "dim {d}");
        }
        // The sample is still a member cell.
        let get = |id: CellId| f[id.table].get(id.row, id.col);
        assert!(qf.cells.contains(&qf.sample(&get)));
        assert!(single_quality_fold(&l, &Fold { columns: vec![] }, &f).is_none());
    }
}
