//! Out-of-core detection: the full pipeline over a columnar on-disk
//! lake, one table resident at a time (DESIGN.md §14).
//!
//! The driver streams each `.mtc` table through embed + featurize,
//! spills the per-table features to disk, and then runs the fold, label
//! and classify stages against a *skeleton* lake (shapes only, no cell
//! values) — which is sound because every post-featurize stage reads
//! only table shapes under the supported configurations. The result is
//! **bit-identical** to [`Matelda::detect`] over the materialized lake:
//! same [`DetectionResult::digest`], at any thread count and any chunk
//! size. [`columnar_lake_fingerprint`] anchors the input side of that
//! contract — the streamed digest equals the in-memory
//! `lake_fingerprint`.
//!
//! Two configuration families *do* read cell values after
//! featurization and are rejected up front with
//! [`OutOfCoreError::Unsupported`] instead of silently misbehaving on
//! the empty skeleton values: the `+SF` syntactic refinement and the
//! unionability (Santos) folding strategies.

use crate::domain_fold::embed_table_for;
use crate::engine::{
    ClassifyStage, DomainFoldStage, EmbeddedLake, FeaturizedLake, LabelStage, QualityFoldStage,
    Stage, StageContext,
};
use crate::pipeline::{DetectionResult, LabelingStrategy, Matelda, TrainingStrategy};
use crate::DomainFolding;
use matelda_detect::{featurize_table, load_features, spill_features, spill_path, CellFeatures};
use matelda_embed::encoder::HashedEncoder;
use matelda_exec::{faultpoint, panic_message, ItemFault, StageReport};
use matelda_table::chunked::{
    columnar_lake_fingerprint, columnar_paths_sorted, skeleton_lake, ChunkSource, ChunkedError,
    ColumnarReader, DEFAULT_CHUNK_LEN,
};
use matelda_table::oracle::Labeler;
use matelda_text::SpellChecker;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Options for one [`Matelda::detect_out_of_core`] run.
#[derive(Debug, Clone)]
pub struct OutOfCoreOpts {
    /// Bytes per ranged read when streaming columnar data. Never changes
    /// result bits — only I/O granularity and peak memory.
    pub chunk_len: usize,
    /// Directory the per-table feature spills (`.mtf`) are written to.
    pub spill_dir: PathBuf,
}

impl OutOfCoreOpts {
    /// Default chunking into the given spill directory.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        OutOfCoreOpts { chunk_len: DEFAULT_CHUNK_LEN, spill_dir: spill_dir.into() }
    }
}

/// Why an out-of-core run could not produce a result.
#[derive(Debug)]
pub enum OutOfCoreError {
    /// The storage layer failed (reading the lake or writing a spill).
    /// Structured, not a panic: the storage fault matrix drives this
    /// path through the [`ChunkSource`] seam.
    Storage(ChunkedError),
    /// The configuration needs cell values after featurization, which
    /// the skeleton lake does not have.
    Unsupported(&'static str),
}

impl std::fmt::Display for OutOfCoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutOfCoreError::Storage(e) => write!(f, "out-of-core storage failure: {e}"),
            OutOfCoreError::Unsupported(what) => {
                write!(f, "configuration unsupported out of core: {what}")
            }
        }
    }
}

impl std::error::Error for OutOfCoreError {}

impl From<ChunkedError> for OutOfCoreError {
    fn from(e: ChunkedError) -> Self {
        OutOfCoreError::Storage(e)
    }
}

/// What one out-of-core run produced, plus the streaming bookkeeping
/// the scale bench asserts on.
#[derive(Debug)]
pub struct OutOfCoreRun {
    /// The detection result — bit-identical (same
    /// [`DetectionResult::digest`]) to [`Matelda::detect`] over the
    /// materialized lake.
    pub result: DetectionResult,
    /// The streamed lake fingerprint; equals `lake_fingerprint` of the
    /// materialized lake.
    pub fingerprint: u64,
    /// Feature spill files written (one per table).
    pub spill_count: usize,
    /// Total cells streamed through featurization.
    pub cells: usize,
    /// On-disk size of the columnar lake in bytes.
    pub lake_bytes: u64,
}

impl Matelda {
    /// Runs the pipeline over the columnar lake directory `dir` without
    /// ever materializing the lake: tables stream through embed +
    /// featurize one at a time (features spilled to
    /// [`OutOfCoreOpts::spill_dir`]), and the fold/label/classify stages
    /// run on a shapes-only skeleton. All I/O goes through `src`, so
    /// passing the ckpt [`crate::Vfs`] puts the whole path under the
    /// storage fault matrix.
    ///
    /// Fault isolation matches the in-memory engine: a table whose
    /// embed or featurize panics is quarantined under
    /// [`crate::FaultPolicy::Skip`] (or aborts the run under `Fail`),
    /// with the same quarantine record — and therefore the same digest
    /// — as [`Matelda::detect`] hitting the same faults.
    pub fn detect_out_of_core(
        &self,
        src: &dyn ChunkSource,
        dir: &Path,
        labeler: &mut dyn Labeler,
        budget: usize,
        opts: &OutOfCoreOpts,
    ) -> Result<OutOfCoreRun, OutOfCoreError> {
        let cfg = &self.config;
        if cfg.syntactic_refinement {
            return Err(OutOfCoreError::Unsupported(
                "syntactic refinement (+SF) reads cell values after featurization",
            ));
        }
        if matches!(cfg.domain_folding, DomainFolding::SantosLike | DomainFolding::SantosSketch(_))
        {
            return Err(OutOfCoreError::Unsupported(
                "unionability folding reads cell values lake-wide",
            ));
        }

        let paths = columnar_paths_sorted(src, dir).map_err(ChunkedError::Io)?;
        let n_tables = paths.len();
        let mut lake_bytes = 0u64;
        for p in &paths {
            lake_bytes += src.file_len(p).map_err(ChunkedError::Io)?;
        }
        let skeleton = skeleton_lake(src, dir)?;
        let fingerprint = columnar_lake_fingerprint(src, dir, opts.chunk_len)?;

        // ---- Streaming phase: embed + featurize one table at a time.
        //
        // Sequential by design — per-table work derives only from
        // `(config, seed, ti, table)`, so the outputs equal the parallel
        // engine's at any thread count; parallelism pays off in the fold
        // and classify stages, which run on the executor below.
        let per_table_embed =
            matches!(cfg.domain_folding, DomainFolding::Hdbscan | DomainFolding::RowSampling(_));
        let encoder = HashedEncoder::new(cfg.encoder.clone());
        let spell = SpellChecker::english();
        let placeholder = |t: &matelda_table::Table| {
            CellFeatures::zeros(t.n_cols(), 0, matelda_detect::FEATURE_DIM)
        };
        let mut vecs: Vec<Vec<f32>> =
            Vec::with_capacity(if per_table_embed { n_tables } else { 0 });
        let mut faults: Vec<ItemFault> = Vec::new();
        let mut quarantined: Vec<usize> = Vec::new();
        let mut cells = 0usize;
        let mut spill_count = 0usize;
        let mut embed_secs = 0.0f64;
        let mut featurize_secs = 0.0f64;
        for (ti, path) in paths.iter().enumerate() {
            let table = ColumnarReader::open(src, path)?.read_table(opts.chunk_len)?;
            cells += table.n_cells();
            let mut table_quarantined = false;
            if per_table_embed {
                let t0 = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| {
                    faultpoint::hit("embed", ti);
                    embed_table_for(cfg.domain_folding, &encoder, cfg.seed, ti, &table)
                })) {
                    Ok(v) => vecs.push(v),
                    Err(payload) => {
                        vecs.push(Vec::new());
                        faults.push(ItemFault::new("embed", ti, panic_message(payload.as_ref())));
                        table_quarantined = true;
                    }
                }
                embed_secs += t0.elapsed().as_secs_f64();
            }
            let t0 = Instant::now();
            let feats = if table_quarantined {
                placeholder(&table)
            } else {
                match catch_unwind(AssertUnwindSafe(|| {
                    faultpoint::hit("featurize", ti);
                    featurize_table(&table, &spell, &cfg.features)
                })) {
                    Ok(f) => f,
                    Err(payload) => {
                        faults.push(ItemFault::new(
                            "featurize",
                            ti,
                            panic_message(payload.as_ref()),
                        ));
                        table_quarantined = true;
                        placeholder(&table)
                    }
                }
            };
            featurize_secs += t0.elapsed().as_secs_f64();
            if table_quarantined {
                quarantined.push(ti);
            }
            spill_features(src, &spill_path(&opts.spill_dir, ti), &feats)?;
            spill_count += 1;
            // `table` and `feats` drop here: only one table is ever
            // resident during the streaming phase.
        }
        let embedded =
            if per_table_embed { EmbeddedLake::Vectors(vecs) } else { EmbeddedLake::Trivial };

        // ---- Staged phase on the skeleton: identical stage sequence,
        // seeds and executor semantics as `detect_explained`.
        let mut ctx = match &self.executor {
            Some(exec) => {
                StageContext::with_executor(&skeleton, cfg, self.obs.clone(), exec.clone())
            }
            None => StageContext::with_obs(&skeleton, cfg, self.obs.clone()),
        };
        let mut run_span = self.obs.span_scope("run", "detect_out_of_core");
        run_span.arg("budget", budget as f64);
        run_span.arg("threads", ctx.executor.threads() as f64);
        for ti in &quarantined {
            ctx.quarantine_table(*ti);
        }
        ctx.note_faults(faults);
        // Synthetic reports for the streamed stages so the run report
        // keeps its six-stage shape.
        let mut embed_report = StageReport::new("embed");
        embed_report.items = n_tables as u64;
        embed_report.wall_secs = embed_secs;
        ctx.report.stages.push(embed_report);
        let mut feat_report = StageReport::new("featurize");
        feat_report.items = cells as u64;
        feat_report.wall_secs = featurize_secs;
        ctx.report.stages.push(feat_report);

        let mut features = Vec::with_capacity(n_tables);
        for ti in 0..n_tables {
            features.push(load_features(src, &spill_path(&opts.spill_dir, ti))?);
        }
        let featurized = FeaturizedLake { features };

        let domain = DomainFoldStage.run(&mut ctx, &embedded);
        let adaptive = cfg.labeling == LabelingStrategy::UncertaintyRefinement
            && cfg.training == TrainingStrategy::PerColumn
            && budget >= 4;
        let phase1_budget = if adaptive { budget.div_ceil(2) } else { budget };
        let quality =
            QualityFoldStage { budget: phase1_budget }.run(&mut ctx, (&domain, &featurized));
        let propagated = LabelStage { labeler, budget }.run(&mut ctx, (&quality, &featurized));
        let predictions = ClassifyStage.run(&mut ctx, (&domain, &featurized, &propagated));

        ctx.quarantine.normalize();
        run_span.finish_secs();
        let result = DetectionResult {
            predicted: predictions.mask,
            labels_used: propagated.labels_used,
            n_domain_folds: domain.folds.len(),
            n_quality_folds: quality.n_total(),
            report: ctx.report,
            quarantine: ctx.quarantine,
            durability_degraded: false,
        };
        Ok(OutOfCoreRun { result, fingerprint, spill_count, cells, lake_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FaultPolicy, MateldaConfig};
    use matelda_lakegen::QuintetLake;
    use matelda_table::chunked::{read_lake_columnar, write_lake_columnar, StdFs};
    use matelda_table::fingerprint::lake_fingerprint;
    use matelda_table::{CellId, Column, Lake, Table};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("matelda_ooc_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    /// A deterministic, id-keyed labeler usable identically against the
    /// materialized lake and the skeleton.
    struct HashLabeler {
        used: usize,
    }

    impl Labeler for HashLabeler {
        fn label(&mut self, id: CellId) -> bool {
            self.used += 1;
            (id.table * 31 + id.row * 7 + id.col).is_multiple_of(3)
        }
        fn labels_used(&self) -> usize {
            self.used
        }
    }

    #[test]
    fn out_of_core_digest_matches_in_memory_at_every_thread_count() {
        let gen = QuintetLake { rows_per_table: 40, error_rate: 0.09 }.generate(11);
        let dir = tmpdir("equiv");
        let lake_dir = dir.join("lake");
        write_lake_columnar(&StdFs, &lake_dir, &gen.dirty).expect("write lake");
        // The columnar directory is read in file-name order, so the
        // reference lake must be too.
        let lake = read_lake_columnar(&StdFs, &lake_dir, 64 * 1024).expect("read lake");
        let reference = {
            let mut labeler = HashLabeler { used: 0 };
            Matelda::new(MateldaConfig::default()).detect(&lake, &mut labeler, 40)
        };
        assert!(reference.predicted.count() > 0, "reference run must predict something");
        for threads in [1usize, 2, 4] {
            for chunk_len in [7usize, 64 * 1024] {
                let spill = dir.join(format!("spill_{threads}_{chunk_len}"));
                let cfg = MateldaConfig { threads, ..Default::default() };
                let mut labeler = HashLabeler { used: 0 };
                let run = Matelda::new(cfg)
                    .detect_out_of_core(
                        &StdFs,
                        &lake_dir,
                        &mut labeler,
                        40,
                        &OutOfCoreOpts { chunk_len, spill_dir: spill },
                    )
                    .expect("out-of-core run");
                assert_eq!(
                    run.result.digest(),
                    reference.digest(),
                    "threads={threads} chunk_len={chunk_len}"
                );
                assert_eq!(run.result.predicted, reference.predicted);
                assert_eq!(run.fingerprint, lake_fingerprint(&lake));
                assert_eq!(run.spill_count, lake.n_tables());
                assert_eq!(run.cells, lake.n_cells());
                assert!(run.lake_bytes > 0);
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn out_of_core_rejects_value_reading_configs() {
        let dir = tmpdir("reject");
        let lake = Lake::new(vec![Table::new("t", vec![Column::new("a", ["1", "2"])])]);
        write_lake_columnar(&StdFs, &dir, &lake).expect("write");
        let opts = OutOfCoreOpts::new(dir.join("spill"));
        let mut labeler = HashLabeler { used: 0 };
        let sf = MateldaConfig { syntactic_refinement: true, ..Default::default() };
        assert!(matches!(
            Matelda::new(sf).detect_out_of_core(&StdFs, &dir, &mut labeler, 5, &opts),
            Err(OutOfCoreError::Unsupported(_))
        ));
        let santos =
            MateldaConfig { domain_folding: DomainFolding::SantosLike, ..Default::default() };
        assert!(matches!(
            Matelda::new(santos).detect_out_of_core(&StdFs, &dir, &mut labeler, 5, &opts),
            Err(OutOfCoreError::Unsupported(_))
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn out_of_core_respects_the_mem_budget_degradation_contract() {
        let gen = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(5);
        let dir = tmpdir("budget");
        let lake_dir = dir.join("lake");
        write_lake_columnar(&StdFs, &lake_dir, &gen.dirty).expect("write lake");
        let cfg = MateldaConfig {
            mem_budget_bytes: Some(64),
            on_error: FaultPolicy::Skip,
            ..Default::default()
        };
        let mut labeler = HashLabeler { used: 0 };
        let run = Matelda::new(cfg)
            .detect_out_of_core(
                &StdFs,
                &lake_dir,
                &mut labeler,
                20,
                &OutOfCoreOpts::new(dir.join("spill")),
            )
            .expect("degraded run completes");
        assert_eq!(run.result.n_domain_folds, 1, "degrades to extreme domain folding");
        assert!(run.result.report.faults.iter().any(|f| f.stage == "domain_folds"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Satellite 4: arbitrary chunk sizes — including ones that split a
    // quoted CSV record across chunk boundaries — never change the
    // fingerprint or the detection digest at any thread count.
    mod equivalence_props {
        use super::*;
        use matelda_table::chunked::csv_dir_to_columnar;
        use matelda_table::csv::write_table;
        use proptest::prelude::*;

        /// Hostile value palette: quotes, commas, CR/LF inside quoted
        /// fields — every chunk size 1..48 lands mid-record somewhere.
        fn palette(i: usize) -> String {
            const P: &[&str] = &[
                "plain",
                "com,ma",
                "qu\"ote",
                "line\nbreak",
                "crlf\r\nmix",
                "",
                "\"lead",
                "trail\"",
                "a,b\"c\nd",
            ];
            P[i % P.len()].to_string()
        }

        fn hostile_lake(shape_seed: usize) -> Lake {
            let tables = (0..2)
                .map(|t| {
                    let cols = (0..3)
                        .map(|c| {
                            let values: Vec<String> =
                                (0..6).map(|r| palette(shape_seed + t * 17 + c * 5 + r)).collect();
                            Column::new(format!("c{c}"), values)
                        })
                        .collect();
                    Table::new(format!("t{t}"), cols)
                })
                .collect();
            Lake::new(tables)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[test]
            fn chunked_csv_to_detection_is_chunk_and_thread_invariant(
                chunk_len in 1usize..48,
                shape_seed in 0usize..32,
            ) {
                let lake = hostile_lake(shape_seed);
                let dir = tmpdir(&format!("prop_{chunk_len}_{shape_seed}"));
                let csv_dir = dir.join("csv");
                std::fs::create_dir_all(&csv_dir).expect("mkdir");
                for t in &lake.tables {
                    std::fs::write(csv_dir.join(format!("{}.csv", t.name)), write_table(t))
                        .expect("write csv");
                }
                let col_dir = dir.join("columnar");
                // The CSV → columnar conversion reads records through
                // the chunked splitter at this chunk size.
                csv_dir_to_columnar(&StdFs, &csv_dir, &col_dir, chunk_len).expect("convert");
                let materialized =
                    read_lake_columnar(&StdFs, &col_dir, chunk_len).expect("read back");
                prop_assert_eq!(&materialized, &lake, "CSV round trip");
                let reference = {
                    let mut labeler = HashLabeler { used: 0 };
                    Matelda::new(MateldaConfig::default()).detect(&lake, &mut labeler, 6)
                };
                for threads in [1usize, 2, 4] {
                    let cfg = MateldaConfig { threads, ..Default::default() };
                    let mut labeler = HashLabeler { used: 0 };
                    let run = Matelda::new(cfg)
                        .detect_out_of_core(
                            &StdFs,
                            &col_dir,
                            &mut labeler,
                            6,
                            &OutOfCoreOpts {
                                chunk_len,
                                spill_dir: dir.join(format!("spill{threads}")),
                            },
                        )
                        .expect("out-of-core");
                    prop_assert_eq!(run.fingerprint, lake_fingerprint(&lake));
                    prop_assert_eq!(run.result.digest(), reference.digest());
                }
                std::fs::remove_dir_all(&dir).expect("cleanup");
            }
        }
    }
}
