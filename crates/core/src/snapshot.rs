//! Stage-artifact snapshot codecs.
//!
//! Each pipeline stage's checkpoint payload is a [`CtxState`] — the
//! *cumulative* run state at the moment the stage finished (quarantine
//! decisions, fault log, per-stage reports) — followed by the stage's
//! artifact. Restoring stage *k*'s snapshot therefore reinstates
//! everything the first *k* stages did; resume never replays partial
//! history.
//!
//! Codecs are exact: floats travel as IEEE-754 bit patterns (an `f32`
//! feature value or `f64` metric re-decodes to the same bits), cell
//! masks are bit-packed, and decoding consumes the payload completely.
//! That is what backs the durability contract — a restored artifact is
//! indistinguishable from a recomputed one, so a resumed run's output
//! is bit-identical to an uninterrupted run (`DESIGN.md §6`).
//!
//! Byte-level framing (length prefixes, bounds checks, structured
//! [`DecodeError`]s on truncated or garbled input) comes from
//! [`matelda_ckpt::wire`]; this module only knows the artifact shapes.
//! The codecs live here rather than in `matelda-ckpt` so the dependency
//! points the right way: the generic store knows nothing about folds,
//! features or masks.

use crate::domain_fold::{EmbeddedLake, Fold};
use crate::engine::{
    DomainFolds, FeaturizedLake, LabeledFold, Predictions, PropagatedLabels, QualityFoldEntry,
    QualityFolds, QuarantineReport,
};
use crate::quality_fold::QualityFold;
use matelda_ckpt::wire::{DecodeError, Reader, Writer};
use matelda_detect::CellFeatures;
use matelda_exec::{ItemFault, StageReport};
use matelda_table::{CellId, CellMask};

/// The run state a stage snapshot carries alongside its artifact: the
/// quarantine ledger, the fault log and the stage reports accumulated
/// up to and including the snapshotted stage.
#[derive(Debug, Clone, Default)]
pub struct CtxState {
    /// Quarantine and degradation decisions so far.
    pub quarantine: QuarantineReport,
    /// Isolated work-item faults so far.
    pub faults: Vec<ItemFault>,
    /// Per-stage instrumentation so far (wall times are the *original*
    /// run's — a restored stage reports the time it actually took when
    /// it ran, not the time it took to load).
    pub stages: Vec<StageReport>,
}

impl CtxState {
    /// Captures the snapshot-relevant state of a live context.
    pub fn capture(ctx: &crate::engine::StageContext<'_>) -> Self {
        CtxState {
            quarantine: ctx.quarantine.clone(),
            faults: ctx.report.faults.clone(),
            stages: ctx.report.stages.clone(),
        }
    }

    /// Reinstates this state into a live context, replacing whatever the
    /// context accumulated so far (snapshots are cumulative, so the
    /// latest restored state is always the whole history).
    pub fn restore(self, ctx: &mut crate::engine::StageContext<'_>) {
        ctx.quarantine = self.quarantine;
        ctx.report.faults = self.faults;
        ctx.report.stages = self.stages;
    }
}

/// An artifact that can be persisted in a stage snapshot.
pub trait ArtifactCodec: Sized {
    /// Appends the artifact's exact encoding to `w`.
    fn encode_into(&self, w: &mut Writer);
    /// Decodes one artifact, consuming exactly what `encode_into` wrote.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes a full stage snapshot payload: context state, then artifact.
pub fn encode_snapshot<A: ArtifactCodec>(state: &CtxState, artifact: &A) -> Vec<u8> {
    let mut w = Writer::new();
    encode_state(state, &mut w);
    artifact.encode_into(&mut w);
    w.into_bytes()
}

/// Decodes a full stage snapshot payload, requiring exact consumption.
pub fn decode_snapshot<A: ArtifactCodec>(bytes: &[u8]) -> Result<(CtxState, A), DecodeError> {
    let mut r = Reader::new(bytes);
    let state = decode_state(&mut r)?;
    let artifact = A::decode_from(&mut r)?;
    r.finish()?;
    Ok((state, artifact))
}

// ---------------------------------------------------------------------
// Context state
// ---------------------------------------------------------------------

fn encode_state(state: &CtxState, w: &mut Writer) {
    let q = &state.quarantine;
    w.write_varint(q.tables.len() as u64);
    for &t in &q.tables {
        w.write_varint(t as u64);
    }
    w.write_varint(q.columns.len() as u64);
    for &(t, c) in &q.columns {
        w.write_varint(t as u64);
        w.write_varint(c as u64);
    }
    w.write_varint(q.fold_fallbacks.len() as u64);
    for &f in &q.fold_fallbacks {
        w.write_varint(f as u64);
    }
    w.write_varint(state.faults.len() as u64);
    for fault in &state.faults {
        w.write_str(&fault.stage);
        w.write_varint(fault.index as u64);
        w.write_str(&fault.message);
    }
    w.write_varint(state.stages.len() as u64);
    for s in &state.stages {
        w.write_str(&s.name);
        w.write_f64(s.wall_secs);
        w.write_varint(s.items);
        w.write_varint(s.metrics.len() as u64);
        for (name, value) in &s.metrics {
            w.write_str(name);
            w.write_f64(*value);
        }
    }
}

fn decode_state(r: &mut Reader<'_>) -> Result<CtxState, DecodeError> {
    let mut quarantine = QuarantineReport::default();
    for _ in 0..r.read_varint_len()? {
        quarantine.tables.push(r.read_varint()? as usize);
    }
    for _ in 0..r.read_varint_len()? {
        let t = r.read_varint()? as usize;
        let c = r.read_varint()? as usize;
        quarantine.columns.push((t, c));
    }
    for _ in 0..r.read_varint_len()? {
        quarantine.fold_fallbacks.push(r.read_varint()? as usize);
    }
    let mut faults = Vec::new();
    for _ in 0..r.read_varint_len()? {
        let stage = r.read_str()?;
        let index = r.read_varint()? as usize;
        let message = r.read_str()?;
        faults.push(ItemFault { stage, index, message });
    }
    let mut stages = Vec::new();
    for _ in 0..r.read_varint_len()? {
        let mut s = StageReport::new(&r.read_str()?);
        s.wall_secs = r.read_f64()?;
        s.items = r.read_varint()?;
        for _ in 0..r.read_varint_len()? {
            let name = r.read_str()?;
            let value = r.read_f64()?;
            s.metrics.push((name, value));
        }
        stages.push(s);
    }
    Ok(CtxState { quarantine, faults, stages })
}

// ---------------------------------------------------------------------
// Shared shapes
// ---------------------------------------------------------------------

const ONE_BITS: u32 = 0x3F80_0000; // 1.0f32

/// `f32` slices travel in one of two lossless forms, chosen by the
/// encoder and enforced canonical by the decoder:
///
/// * `1` — every value is exactly `+0.0` or `1.0` (the shape of the
///   histogram-flag feature vectors, which dominate snapshot volume):
///   one bit per value, LSB first. Empty slices use this form.
/// * `0` — raw IEEE-754 bit patterns, 4 bytes each, used only when at
///   least one value is outside `{+0.0, 1.0}`.
///
/// A raw run whose values are all `{+0.0, 1.0}` is rejected on decode:
/// any bytes that decode must re-encode to exactly themselves.
fn encode_f32s(v: &[f32], w: &mut Writer) {
    let packable = v.iter().all(|x| matches!(x.to_bits(), 0 | ONE_BITS));
    if packable {
        w.write_u8(1);
        w.write_varint(v.len() as u64);
        // Feature vectors are short (tens of values), so the packed run
        // fits a stack buffer; one heap allocation per cell would
        // dominate the encode cost of a large lake.
        let mut stack = [0u8; 64];
        let n_bytes = v.len().div_ceil(8);
        let mut heap;
        let packed: &mut [u8] = if n_bytes <= stack.len() {
            &mut stack[..n_bytes]
        } else {
            heap = vec![0u8; n_bytes];
            &mut heap
        };
        for (i, x) in v.iter().enumerate() {
            if x.to_bits() == ONE_BITS {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        w.write_raw(packed);
    } else {
        w.write_u8(0);
        w.write_varint(v.len() as u64);
        w.reserve(v.len() * 4);
        for &x in v {
            w.write_u32(x.to_bits());
        }
    }
}

fn decode_f32s(r: &mut Reader<'_>) -> Result<Vec<f32>, DecodeError> {
    match r.read_u8()? {
        1 => {
            let n = r.read_varint()? as usize;
            let n_bytes = n.div_ceil(8);
            if n_bytes > r.remaining() {
                return Err(DecodeError::LengthOverflow {
                    len: n as u64,
                    remaining: r.remaining(),
                });
            }
            let packed = r.read_raw(n_bytes)?;
            // Unused bits past `n` in the last byte must be zero, or the
            // same values would have a second valid encoding.
            if !n.is_multiple_of(8) && packed[n_bytes - 1] >> (n % 8) != 0 {
                return Err(DecodeError::Malformed("nonzero padding in packed f32 run".into()));
            }
            Ok((0..n)
                .map(|i| if packed[i / 8] & (1 << (i % 8)) != 0 { 1.0 } else { 0.0 })
                .collect())
        }
        0 => {
            let n = r.read_varint_len()?;
            let mut out = Vec::with_capacity(n.min(r.remaining()));
            let mut packable = true;
            for _ in 0..n {
                let bits = r.read_u32()?;
                packable &= matches!(bits, 0 | ONE_BITS);
                out.push(f32::from_bits(bits));
            }
            if packable {
                // Includes the empty slice: the encoder always packs it.
                return Err(DecodeError::Malformed("non-canonical raw f32 run".into()));
            }
            Ok(out)
        }
        tag => Err(DecodeError::Malformed(format!("f32 run tag {tag}"))),
    }
}

fn encode_cell_id(id: CellId, w: &mut Writer) {
    w.write_varint(id.table as u64);
    w.write_varint(id.row as u64);
    w.write_varint(id.col as u64);
}

fn decode_cell_id(r: &mut Reader<'_>) -> Result<CellId, DecodeError> {
    let table = r.read_varint()? as usize;
    let row = r.read_varint()? as usize;
    let col = r.read_varint()? as usize;
    Ok(CellId::new(table, row, col))
}

fn encode_quality_fold(fold: &QualityFold, w: &mut Writer) {
    w.write_varint(fold.cells.len() as u64);
    for &id in &fold.cells {
        encode_cell_id(id, w);
    }
    encode_f32s(&fold.centroid, w);
}

fn decode_quality_fold(r: &mut Reader<'_>) -> Result<QualityFold, DecodeError> {
    let mut cells = Vec::new();
    for _ in 0..r.read_varint_len()? {
        cells.push(decode_cell_id(r)?);
    }
    let centroid = decode_f32s(r)?;
    Ok(QualityFold { cells, centroid })
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

impl ArtifactCodec for EmbeddedLake {
    fn encode_into(&self, w: &mut Writer) {
        match self {
            EmbeddedLake::Vectors(vecs) => {
                w.write_u8(0);
                w.write_varint(vecs.len() as u64);
                for v in vecs {
                    encode_f32s(v, w);
                }
            }
            EmbeddedLake::Unionability(rows) => {
                w.write_u8(1);
                w.write_varint(rows.len() as u64);
                for row in rows {
                    w.write_varint(row.len() as u64);
                    for &x in row {
                        w.write_f64(x);
                    }
                }
            }
            EmbeddedLake::Trivial => w.write_u8(2),
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => {
                let mut vecs = Vec::new();
                for _ in 0..r.read_varint_len()? {
                    vecs.push(decode_f32s(r)?);
                }
                Ok(EmbeddedLake::Vectors(vecs))
            }
            1 => {
                let mut rows = Vec::new();
                for _ in 0..r.read_varint_len()? {
                    let n = r.read_varint_len()?;
                    let mut row = Vec::with_capacity(n.min(r.remaining()));
                    for _ in 0..n {
                        row.push(r.read_f64()?);
                    }
                    rows.push(row);
                }
                Ok(EmbeddedLake::Unionability(rows))
            }
            2 => Ok(EmbeddedLake::Trivial),
            tag => Err(DecodeError::Malformed(format!("EmbeddedLake tag {tag}"))),
        }
    }
}

impl ArtifactCodec for FeaturizedLake {
    fn encode_into(&self, w: &mut Writer) {
        w.write_varint(self.features.len() as u64);
        for f in &self.features {
            w.write_varint(f.n_cols as u64);
            w.write_varint(f.n_rows as u64);
            w.write_varint(f.dim as u64);
            // The matrix encodes as one f32 run — long {0,1} spans
            // bit-pack across cell boundaries now, not per cell. The
            // blocked store is flattened transiently (one table's worth)
            // to keep snapshot bytes identical to the flat-era format.
            encode_f32s(&f.to_flat(), w);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut features = Vec::new();
        for _ in 0..r.read_varint_len()? {
            let n_cols = r.read_varint()? as usize;
            let n_rows = r.read_varint()? as usize;
            let dim = r.read_varint()? as usize;
            let data = decode_f32s(r)?;
            if data.len() != n_cols.saturating_mul(n_rows).saturating_mul(dim) {
                return Err(DecodeError::Malformed(format!(
                    "CellFeatures payload {} != {n_rows}x{n_cols}x{dim}",
                    data.len()
                )));
            }
            features.push(CellFeatures::from_flat(n_cols, n_rows, dim, data));
        }
        Ok(FeaturizedLake { features })
    }
}

impl ArtifactCodec for DomainFolds {
    fn encode_into(&self, w: &mut Writer) {
        w.write_varint(self.folds.len() as u64);
        for fold in &self.folds {
            w.write_varint(fold.columns.len() as u64);
            for &(t, c) in &fold.columns {
                w.write_varint(t as u64);
                w.write_varint(c as u64);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut folds = Vec::new();
        for _ in 0..r.read_varint_len()? {
            let mut columns = Vec::new();
            for _ in 0..r.read_varint_len()? {
                let t = r.read_varint()? as usize;
                let c = r.read_varint()? as usize;
                columns.push((t, c));
            }
            folds.push(Fold { columns });
        }
        Ok(DomainFolds { folds })
    }
}

impl ArtifactCodec for QualityFolds {
    fn encode_into(&self, w: &mut Writer) {
        w.write_varint(self.entries.len() as u64);
        for e in &self.entries {
            w.write_varint(e.domain_fold as u64);
            encode_quality_fold(&e.fold, w);
            w.write_bool(e.labeled);
        }
        w.write_varint(self.budgets.len() as u64);
        for &b in &self.budgets {
            w.write_varint(b as u64);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut entries = Vec::new();
        for _ in 0..r.read_varint_len()? {
            let domain_fold = r.read_varint()? as usize;
            let fold = decode_quality_fold(r)?;
            let labeled = r.read_bool()?;
            entries.push(QualityFoldEntry { domain_fold, fold, labeled });
        }
        let mut budgets = Vec::new();
        for _ in 0..r.read_varint_len()? {
            budgets.push(r.read_varint()? as usize);
        }
        Ok(QualityFolds { entries, budgets })
    }
}

impl ArtifactCodec for PropagatedLabels {
    fn encode_into(&self, w: &mut Writer) {
        w.write_varint(self.labels.len() as u64);
        for table in &self.labels {
            w.write_varint(table.len() as u64);
            for lab in table {
                // None / Some(false) / Some(true) as one byte.
                w.write_u8(match lab {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                });
            }
        }
        w.write_varint(self.labeled_folds.len() as u64);
        for lf in &self.labeled_folds {
            encode_quality_fold(&lf.fold, w);
            encode_cell_id(lf.anchor, w);
            w.write_bool(lf.verdict);
        }
        w.write_varint(self.labels_used as u64);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut labels = Vec::new();
        for _ in 0..r.read_varint_len()? {
            let n = r.read_varint_len()?;
            let mut table = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                table.push(match r.read_u8()? {
                    0 => None,
                    1 => Some(false),
                    2 => Some(true),
                    b => return Err(DecodeError::Malformed(format!("label byte {b}"))),
                });
            }
            labels.push(table);
        }
        let mut labeled_folds = Vec::new();
        for _ in 0..r.read_varint_len()? {
            let fold = decode_quality_fold(r)?;
            let anchor = decode_cell_id(r)?;
            let verdict = r.read_bool()?;
            labeled_folds.push(LabeledFold { fold, anchor, verdict });
        }
        let labels_used = r.read_varint()? as usize;
        Ok(PropagatedLabels { labels, labeled_folds, labels_used })
    }
}

impl ArtifactCodec for Predictions {
    fn encode_into(&self, w: &mut Writer) {
        let dims = self.mask.dims();
        w.write_varint(dims.len() as u64);
        for &(rows, cols) in dims {
            w.write_varint(rows as u64);
            w.write_varint(cols as u64);
        }
        // Bit-packed flags, one run of ceil(rows*cols / 8) bytes per
        // table, row-major, LSB first. No length prefix: the byte count
        // is determined by the dims.
        for (t, &(rows, cols)) in dims.iter().enumerate() {
            let n = rows * cols;
            let mut packed = vec![0u8; n.div_ceil(8)];
            for o in 0..n {
                // n > 0 implies cols > 0, so the divisions are safe.
                if self.mask.get(CellId::new(t, o / cols, o % cols)) {
                    packed[o / 8] |= 1 << (o % 8);
                }
            }
            w.write_raw(&packed);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut dims = Vec::new();
        let mut total_bytes = 0u64;
        for _ in 0..r.read_varint_len()? {
            let rows = r.read_varint()? as usize;
            let cols = r.read_varint()? as usize;
            let n = rows.checked_mul(cols).ok_or_else(|| {
                DecodeError::Malformed(format!("mask dims {rows}x{cols} overflow"))
            })?;
            total_bytes += n.div_ceil(8) as u64;
            dims.push((rows, cols));
        }
        // Validate the claimed mask size against the input before the
        // mask (which is sized from the dims) is allocated.
        if total_bytes > r.remaining() as u64 {
            return Err(DecodeError::LengthOverflow { len: total_bytes, remaining: r.remaining() });
        }
        let mut mask = CellMask::from_dims(dims.clone());
        for (t, &(rows, cols)) in dims.iter().enumerate() {
            let n = rows.checked_mul(cols).ok_or_else(|| {
                DecodeError::Malformed(format!("mask table {t}: {rows}x{cols} overflows"))
            })?;
            let packed = r.read_raw(n.div_ceil(8))?;
            // Unused bits past `n` in the last byte must be zero — a set
            // stray bit would vanish on re-encode.
            if n % 8 != 0 && packed[packed.len() - 1] >> (n % 8) != 0 {
                return Err(DecodeError::Malformed(format!(
                    "mask table {t}: nonzero padding bits"
                )));
            }
            for o in 0..n {
                if packed[o / 8] & (1 << (o % 8)) != 0 {
                    mask.set(CellId::new(t, o / cols, o % cols), true);
                }
            }
        }
        Ok(Predictions { mask })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CtxState {
        let mut s = CtxState::default();
        s.quarantine.tables = vec![1, 3];
        s.quarantine.columns = vec![(0, 2)];
        s.quarantine.fold_fallbacks = vec![5];
        s.faults.push(ItemFault::new("embed", 1, "boom"));
        let mut r = StageReport::new("embed");
        r.wall_secs = 0.125;
        r.items = 7;
        r.metrics.push(("dims".into(), 64.0));
        s.stages.push(r);
        s
    }

    fn round_trip<A: ArtifactCodec>(artifact: &A) -> (CtxState, A) {
        let bytes = encode_snapshot(&state(), artifact);
        let decoded = decode_snapshot::<A>(&bytes).expect("decode");
        // Re-encode: must be byte-identical, which also proves the
        // artifact itself round-tripped exactly.
        assert_eq!(encode_snapshot(&decoded.0, &decoded.1), bytes);
        decoded
    }

    #[test]
    fn embedded_lake_round_trips_every_variant() {
        round_trip(&EmbeddedLake::Vectors(vec![vec![1.5, -0.0, f32::MIN], vec![]]));
        round_trip(&EmbeddedLake::Unionability(vec![vec![0.25, 1.0e-300], vec![]]));
        round_trip(&EmbeddedLake::Trivial);
    }

    #[test]
    fn featurized_lake_round_trips() {
        let f = FeaturizedLake {
            features: vec![
                CellFeatures::from_vectors(2, 1, &[vec![0.5; 3], vec![-1.0; 3]]),
                CellFeatures::zeros(0, 0, 0),
            ],
        };
        let (_, got) = round_trip(&f);
        assert_eq!(got.features[0].get(0, 1), &[-1.0; 3]);
    }

    #[test]
    fn quality_and_domain_folds_round_trip() {
        round_trip(&DomainFolds { folds: vec![Fold { columns: vec![(0, 0), (2, 1)] }] });
        let q = QualityFolds {
            entries: vec![QualityFoldEntry {
                domain_fold: 1,
                fold: QualityFold {
                    cells: vec![CellId::new(0, 1, 1), CellId::new(2, 0, 0)],
                    centroid: vec![0.25, 0.75],
                },
                labeled: true,
            }],
            budgets: vec![0, 3],
        };
        let (st, got) = round_trip(&q);
        assert_eq!(got.budgets, vec![0, 3]);
        assert_eq!(st.quarantine.tables, vec![1, 3]);
    }

    #[test]
    fn propagated_labels_round_trip() {
        let p = PropagatedLabels {
            labels: vec![vec![None, Some(true), Some(false)], vec![]],
            labeled_folds: vec![LabeledFold {
                fold: QualityFold { cells: vec![CellId::new(0, 0, 1)], centroid: vec![1.0] },
                anchor: CellId::new(0, 0, 1),
                verdict: true,
            }],
            labels_used: 4,
        };
        let (_, got) = round_trip(&p);
        assert_eq!(got.labels[0], vec![None, Some(true), Some(false)]);
        assert_eq!(got.labels_used, 4);
    }

    #[test]
    fn predictions_round_trip_bit_packed() {
        use matelda_table::{Column, Lake, Table};
        let lake = Lake::new(vec![
            Table::new(
                "a",
                vec![Column::new("x", ["1", "2", "3"]), Column::new("y", ["4", "5", "6"])],
            ),
            Table::new("b", vec![Column::new("z", ["7"])]),
        ]);
        let mask = CellMask::from_cells(
            &lake,
            [CellId::new(0, 0, 1), CellId::new(0, 2, 0), CellId::new(1, 0, 0)],
        );
        let (_, got) = round_trip(&Predictions { mask: mask.clone() });
        assert_eq!(got.mask, mask);
    }

    #[test]
    fn truncated_and_garbled_payloads_error_not_panic() {
        let bytes = encode_snapshot(&state(), &EmbeddedLake::Vectors(vec![vec![1.0; 8]; 4]));
        for cut in 0..bytes.len() {
            // Every strict prefix must fail (the full payload decodes).
            assert!(decode_snapshot::<EmbeddedLake>(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF; // first state length prefix becomes absurd
        assert!(decode_snapshot::<EmbeddedLake>(&garbled).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&state(), &EmbeddedLake::Trivial);
        bytes.push(0);
        assert!(matches!(
            decode_snapshot::<EmbeddedLake>(&bytes),
            Err(DecodeError::TrailingBytes { count: 1 })
        ));
    }
}
