//! The Matelda pipeline orchestrator (paper Alg. 1, Steps 1–5).
//!
//! [`Matelda::detect`] composes the typed stages of [`crate::engine`];
//! this module holds the run configuration, the result type and the
//! facade. See the engine module for the stage and artifact types, and
//! [`Matelda::detect_durable`] for the checkpoint/resume entry point.

use std::path::PathBuf;
use std::time::Duration;

use crate::domain_fold::DomainFolding;
use crate::engine::{
    ClassifyStage, DomainFoldStage, DomainFolds, EmbedStage, FeaturizeStage, FeaturizedLake,
    LabelStage, PropagatedLabels, QualityFoldStage, QualityFolds, Stage, StageContext,
};
use crate::snapshot::{decode_snapshot, encode_snapshot, ArtifactCodec, CtxState};
use matelda_ckpt::{CheckpointStore, CkptError, Manifest, Vfs};
use matelda_detect::FeatureConfig;
use matelda_embed::encoder::EncoderConfig;
use matelda_exec::{faultpoint, Executor, RunReport};
use matelda_ml::ClassifierKind;
use matelda_obs::{Obs, Val};
use matelda_table::fingerprint::Fnv1a;
use matelda_table::oracle::Labeler;
use matelda_table::{lake_fingerprint, CellMask, Lake};

/// How the pipeline reacts to a faulted work item (a panic or error in
/// one table's embedding/featurization, one fold's clustering, or one
/// column's classifier).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Abort the run on the first fault (the historical behavior): the
    /// fault is re-raised as a panic naming the stage and item.
    #[default]
    Fail,
    /// Quarantine-and-continue: the faulted unit is removed from the run
    /// (table quarantined, fold degraded to a single quality fold, column
    /// falls back to propagated labels), the fault is logged in the
    /// [`matelda_exec::RunReport`], and everything else proceeds —
    /// deterministically, at any thread count.
    Skip,
}

/// How the labeling budget is spent in Step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelingStrategy {
    /// The paper's protocol: one label per quality fold, at the cell
    /// nearest the fold centroid.
    CentroidPerFold,
    /// Extension (paper §6 calls minimizing labeling effort future work):
    /// spend half the budget on centroid labels, train preliminary
    /// per-column models, then spend the rest on the folds whose members
    /// the models are most *uncertain* about — labeling the most
    /// ambiguous member and splitting the fold if the new label
    /// contradicts the propagated one. Requires
    /// [`TrainingStrategy::PerColumn`].
    UncertaintyRefinement,
}

/// How per-cell classifiers are trained in Step 5 (paper §4.5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingStrategy {
    /// The default: one gradient-boosting model per column, trained on the
    /// column's propagated labels.
    PerColumn,
    /// Matelda-TPDF: one model per domain fold.
    PerDomainFold,
    /// Matelda-TUCF: one model per domain fold, but quality folding
    /// produces 2k folds of which only the k largest are labeled — label
    /// propagation stays within smaller, more coherent clusters and some
    /// folds remain unlabeled.
    UnlabeledCellFolds,
}

/// Full pipeline configuration. `Default` reproduces the paper's standard
/// Matelda; every field maps to a published variant or parameter.
#[derive(Debug, Clone)]
pub struct MateldaConfig {
    /// Step 1 strategy (standard / EDF / RS / Santos).
    pub domain_folding: DomainFolding,
    /// Apply the `+SF` column-level refinement after Step 1.
    pub syntactic_refinement: bool,
    /// Column groups per domain fold when `+SF` is on.
    pub syntactic_groups: usize,
    /// Detector families for the unified feature space (NOD/NTD/NRVD).
    pub features: FeatureConfig,
    /// Step 5 training strategy.
    pub training: TrainingStrategy,
    /// Table-embedding configuration (Step 1).
    pub encoder: EncoderConfig,
    /// Mini-batch size for quality folding (paper: 256 × cores).
    pub kmeans_batch: usize,
    /// Mini-batch k-means iterations.
    pub kmeans_iterations: usize,
    /// Per-column/fold learner (paper: gradient boosting with library
    /// defaults; a random forest is available for the classifier
    /// ablation).
    pub classifier: ClassifierKind,
    /// Step 3 labeling protocol.
    pub labeling: LabelingStrategy,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Executor worker threads for the parallel stages; `0` means the
    /// host's available parallelism. Output is bit-identical at every
    /// value — the executor merges in index order and all stochastic
    /// work derives per-index seeds.
    pub threads: usize,
    /// What to do when a work item faults (see [`FaultPolicy`]).
    pub on_error: FaultPolicy,
    /// Watchdog deadline per stage: work items claimed after a stage
    /// has run this long are not started — they fault with
    /// [`matelda_exec::DEADLINE_FAULT`] and degrade (or abort) per
    /// [`MateldaConfig::on_error`]. `None` (the default) disables the
    /// watchdog. Wall-clock deadlines are inherently nondeterministic;
    /// tests arm the `timeout:<stage>` faultpoint instead.
    pub stage_timeout: Option<Duration>,
    /// Byte budget for the dense O(n²) matrices the fold stages would
    /// otherwise allocate unchecked. `None` (the default) disables the
    /// check. When a stage's matrix would exceed the budget it faults
    /// with a structured [`matelda_cluster::ScaleError`] instead of
    /// OOM-aborting, and degrades (or panics) per
    /// [`MateldaConfig::on_error`].
    pub mem_budget_bytes: Option<u64>,
}

impl Default for MateldaConfig {
    fn default() -> Self {
        Self {
            domain_folding: DomainFolding::Hdbscan,
            syntactic_refinement: false,
            // Fine-grained: the paper's +SF separates columns by type,
            // character distribution and length signature, which yields
            // many small groups; 8 per fold realizes that granularity.
            syntactic_groups: 8,
            features: FeatureConfig::default(),
            training: TrainingStrategy::PerColumn,
            encoder: EncoderConfig::default(),
            kmeans_batch: 256,
            kmeans_iterations: 100,
            classifier: ClassifierKind::default(),
            labeling: LabelingStrategy::CentroidPerFold,
            seed: 0,
            threads: 0,
            on_error: FaultPolicy::Fail,
            stage_timeout: None,
            mem_budget_bytes: None,
        }
    }
}

/// How [`Matelda::detect_durable`] reacts to the *storage* failing —
/// the filesystem, not the pipeline (that is [`FaultPolicy`]).
///
/// The split the contract draws: an I/O errno (`ENOSPC`, `EIO`, a
/// failed fsync) means durability is unavailable but the computation is
/// untouched; a [`CkptError::Corrupt`] or [`CkptError::Mismatch`]
/// snapshot means the *resume inputs* are untrustworthy. Degrade
/// forgives the former and still hard-fails the latter — a run never
/// silently reuses questionable bytes under either policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Any checkpoint failure fails the run (the historical behavior).
    #[default]
    Fail,
    /// An I/O failure downgrades the run to non-durable: checkpointing
    /// stops, an `obs` `ckpt.degraded` event records where and why, the
    /// result is still computed (bit-identical to a durable run) and
    /// [`DetectionResult::durability_degraded`] is set. Resume is then
    /// unavailable for this run — that is the entire cost.
    Degrade,
}

/// Output of a detection run.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// Cells predicted erroneous. Cells of quarantined tables are never
    /// flagged — they are unscored, not "clean"; consult
    /// [`DetectionResult::quarantine`] before computing metrics.
    pub predicted: CellMask,
    /// Labels actually drawn from the user/oracle.
    pub labels_used: usize,
    /// Number of domain folds formed in Step 1 (after any refinement).
    pub n_domain_folds: usize,
    /// Total quality folds formed in Step 2.
    pub n_quality_folds: usize,
    /// Per-stage wall time and work counters for the run, including the
    /// structured fault log under [`FaultPolicy::Skip`].
    pub report: RunReport,
    /// What was quarantined or degraded during the run (empty unless
    /// faults occurred under [`FaultPolicy::Skip`]).
    pub quarantine: crate::engine::QuarantineReport,
    /// Whether checkpointing was abandoned mid-run under
    /// [`DurabilityPolicy::Degrade`]: the result is still bit-correct,
    /// but resuming this run is no longer possible. Deliberately
    /// excluded from [`DetectionResult::digest`] — a degraded run and a
    /// durable run of the same inputs are the same bits.
    pub durability_degraded: bool,
}

impl DetectionResult {
    /// An order-stable FNV-1a digest of everything the durability
    /// contract promises to reproduce: predictions, label spend, fold
    /// counts and the quarantine record (stage wall times are excluded
    /// on purpose). Crash-recovery tests — and the serve client —
    /// compare this value between a clean run and a
    /// crashed-then-resumed one.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.predicted.count() as u64);
        for id in self.predicted.iter_set() {
            h.write_u64(id.table as u64);
            h.write_u64(id.row as u64);
            h.write_u64(id.col as u64);
        }
        h.write_u64(self.labels_used as u64);
        h.write_u64(self.n_domain_folds as u64);
        h.write_u64(self.n_quality_folds as u64);
        let q = &self.quarantine;
        h.write_u64(q.tables.len() as u64);
        for &t in &q.tables {
            h.write_u64(t as u64);
        }
        h.write_u64(q.columns.len() as u64);
        for &(t, c) in &q.columns {
            h.write_u64(t as u64);
            h.write_u64(c as u64);
        }
        h.write_u64(q.fold_fallbacks.len() as u64);
        for &f in &q.fold_fallbacks {
            h.write_u64(f as u64);
        }
        h.finish()
    }
}

/// The intermediate artifacts of one [`Matelda::detect_explained`] run,
/// kept alive past the result so failure analysis can attribute each
/// misclassified cell to its features, quality fold and propagated
/// label (see [`crate::report`]).
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The unified detector feature space (Alg. 1 line 10).
    pub featurized: FeaturizedLake,
    /// Step-1 output: the domain folds.
    pub domain: DomainFolds,
    /// Step-2 output: quality folds with provenance.
    pub quality: QualityFolds,
    /// Steps 3+4 output: per-cell propagated labels and labeled folds.
    pub propagated: PropagatedLabels,
}

/// Checkpoint/resume options for [`Matelda::detect_durable`].
#[derive(Debug, Clone, Default)]
pub struct Durability {
    /// Directory to persist stage snapshots into; `None` disables
    /// checkpointing entirely (and makes `detect_durable` infallible).
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from snapshots found in `checkpoint_dir`: stages whose
    /// snapshot verifies are restored instead of recomputed. Requires
    /// the on-disk manifest to match the live run's determinism inputs
    /// (config, lake fingerprint, seed, budget — thread count exempt).
    pub resume: bool,
    /// What a storage failure does to the run (see [`DurabilityPolicy`]).
    pub policy: DurabilityPolicy,
    /// The storage handle checkpoint I/O goes through. The default
    /// ([`Vfs::real`]) is plain filesystem I/O; tests and budgeted
    /// daemons substitute fault-injecting or byte-accounting handles.
    pub vfs: Vfs,
}

/// FNV-1a digest of every configuration field that shapes output bits.
/// `threads` is excluded (it only changes wall-clock), so snapshots
/// survive a thread-count change, and `seed` is excluded only because
/// the [`Manifest`] carries it as its own field (a seed change is then
/// reported as a *seed* mismatch, not an opaque config-hash one);
/// everything else — strategies, feature families, encoder, classifier,
/// even the watchdog timeout — participates, so a resumed run can never
/// silently mix artifacts from differently-configured runs.
fn config_hash(cfg: &MateldaConfig) -> u64 {
    let mut h = Fnv1a::new();
    for part in [
        format!("{:?}", cfg.domain_folding),
        format!("{:?}", cfg.syntactic_refinement),
        format!("{:?}", cfg.syntactic_groups),
        format!("{:?}", cfg.features),
        format!("{:?}", cfg.training),
        format!("{:?}", cfg.encoder),
        format!("{:?}", cfg.kmeans_batch),
        format!("{:?}", cfg.kmeans_iterations),
        format!("{:?}", cfg.classifier),
        format!("{:?}", cfg.labeling),
        format!("{:?}", cfg.on_error),
        format!("{:?}", cfg.stage_timeout),
        format!("{:?}", cfg.mem_budget_bytes),
    ] {
        h.write_str(&part);
    }
    h.finish()
}

/// The mutable durability state of one `detect_durable` call: the open
/// store (dropped on degradation), the resume frontier, and the policy
/// deciding whether an I/O failure kills the run or just its
/// durability.
struct DurabilityState {
    store: Option<CheckpointStore>,
    resume_ok: bool,
    policy: DurabilityPolicy,
    degraded: bool,
}

impl DurabilityState {
    /// Downgrades the run to non-durable: the store is dropped, nothing
    /// else changes. Every degradation is announced — the `ckpt.degraded`
    /// event names the stage and errno so an operator can tell "disk
    /// full at classify" from "flaky mount at embed".
    fn degrade(&mut self, obs: &Obs, stage: &str, during: &str, err: &CkptError) {
        self.store = None;
        self.resume_ok = false;
        self.degraded = true;
        obs.counter_add("ckpt.degraded", 1);
        if obs.is_enabled() {
            obs.event(
                "ckpt.degraded",
                &[
                    ("stage", Val::S(stage)),
                    ("during", Val::S(during)),
                    ("error", Val::S(&err.to_string())),
                ],
            );
        }
    }

    /// Whether `err` is forgivable under the policy: only plain I/O
    /// errnos qualify — corrupt or foreign snapshots stay fatal because
    /// they question the *inputs*, not the disk.
    fn forgives(&self, err: &CkptError) -> bool {
        self.policy == DurabilityPolicy::Degrade && matches!(err, CkptError::Io { .. })
    }
}

/// Runs a stage, or restores its snapshot when resuming.
///
/// While `resume_ok` holds, a verified snapshot short-circuits the
/// stage: the stored [`CtxState`] replaces the context's accumulated
/// state and the artifact is returned without recomputation. The first
/// *missing* snapshot flips `resume_ok` off — that is where the
/// interrupted run died, so everything from here on recomputes (and
/// re-checkpoints). A corrupt or foreign snapshot is a hard error, per
/// the durability contract: never silently reused, never silently
/// recomputed either, because the caller asked to resume *this* run.
///
/// Under [`DurabilityPolicy::Degrade`] an I/O failure — loading or
/// committing — degrades the run instead (see
/// [`DurabilityState::degrade`]): the stage runs (or keeps its computed
/// artifact), and checkpointing is abandoned from here on.
fn run_or_restore<A, F>(
    ctx: &mut StageContext<'_>,
    dur: &mut DurabilityState,
    name: &str,
    run: F,
) -> Result<A, CkptError>
where
    A: ArtifactCodec,
    F: FnOnce(&mut StageContext<'_>) -> A,
{
    if dur.resume_ok {
        if let Some(s) = &dur.store {
            let path = s.dir().join(format!("{name}.ckpt"));
            let loaded = s.load_stage(name);
            match loaded {
                Ok(Some(payload)) => {
                    let (state, artifact) = decode_snapshot::<A>(&payload)
                        .map_err(|reason| CkptError::Corrupt { path, reason })?;
                    state.restore(ctx);
                    ctx.obs.event("ckpt.restore", &[("stage", Val::S(name))]);
                    ctx.obs.counter_add("ckpt.restored_stages", 1);
                    return Ok(artifact);
                }
                Ok(None) => {
                    dur.resume_ok = false;
                    ctx.obs.event("ckpt.resume_frontier", &[("stage", Val::S(name))]);
                }
                Err(e) if dur.forgives(&e) => dur.degrade(&ctx.obs, name, "load", &e),
                Err(e) => return Err(e),
            }
        }
    }
    let artifact = run(ctx);
    if dur.store.is_some() {
        let payload = encode_snapshot(&CtxState::capture(ctx), &artifact);
        let saved = dur.store.as_ref().expect("checked above").save_stage(name, &payload);
        match saved {
            Ok(()) => {}
            Err(e) if dur.forgives(&e) => dur.degrade(&ctx.obs, name, "commit", &e),
            Err(e) => return Err(e),
        }
    }
    Ok(artifact)
}

/// The Matelda estimator.
#[derive(Debug, Clone, Default)]
pub struct Matelda {
    pub(crate) config: MateldaConfig,
    pub(crate) obs: Obs,
    /// A caller-supplied executor (see [`Matelda::with_executor`]);
    /// `None` builds a fresh pool per run from `config.threads`.
    pub(crate) executor: Option<Executor>,
}

impl Matelda {
    /// Creates a pipeline with the given configuration (observability
    /// disabled — recording costs nothing until a handle is attached).
    pub fn new(config: MateldaConfig) -> Self {
        Self { config, obs: Obs::disabled(), executor: None }
    }

    /// Attaches an observability handle: the run emits a `run` span,
    /// per-stage spans and metrics, executor worker spans, checkpoint
    /// and fault events. Recording never changes results, checkpoints
    /// or their checksums (DESIGN.md §7) — keep a clone of the handle
    /// to export the trace after the run.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Runs this pipeline's stages on a caller-supplied executor instead
    /// of spawning a worker pool per run. Clones of one [`Executor`]
    /// share a single pool, so a long-lived service can run many
    /// sequential — or concurrent — detections without respawning
    /// threads; [`MateldaConfig::threads`] is then ignored in favour of
    /// the executor's width. Results are bit-identical either way.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The determinism identity of a run over `lake` with this
    /// configuration and `budget`: the same [`Manifest`] that
    /// [`Matelda::detect_durable`] stamps into checkpoints. Its
    /// [`Manifest::hash`] covers exactly the inputs that shape output
    /// bits (config, lake fingerprint, seed, budget — threads exempt),
    /// which makes it a safe memo-cache key: equal hash ⇒ bit-equal
    /// result.
    pub fn manifest(&self, lake: &Lake, budget: usize) -> Manifest {
        Manifest {
            config_hash: config_hash(&self.config),
            lake_fingerprint: lake_fingerprint(lake),
            seed: self.config.seed,
            budget: budget as u64,
            // Informational only — never hashed or validated.
            threads: match &self.executor {
                Some(e) => e.threads() as u64,
                None => self.config.threads as u64,
            },
        }
    }

    /// Runs the full staged pipeline on `lake` with a total labeling
    /// budget of `budget` cells, asking `labeler` for each sampled
    /// cell's label. The labeler is never asked for more than `budget`
    /// labels.
    pub fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: usize) -> DetectionResult {
        self.detect_durable(lake, labeler, budget, &Durability::default())
            .expect("detection without a checkpoint store is infallible")
    }

    /// [`Matelda::detect`], but also returning the run's intermediate
    /// artifacts so callers can *explain* the predictions: the feature
    /// vectors, the fold structure and the propagated labels that the
    /// failure-analysis report ([`crate::report`]) attributes
    /// misclassified cells to. Runs the same six stages with the same
    /// seeds — the [`DetectionResult`] is bit-identical to
    /// [`Matelda::detect`] on the same inputs (pinned by a digest test).
    /// No checkpointing: the artifacts live in memory only, so this path
    /// is incompatible with resume.
    pub fn detect_explained(
        &self,
        lake: &Lake,
        labeler: &mut dyn Labeler,
        budget: usize,
    ) -> (DetectionResult, RunArtifacts) {
        let cfg = &self.config;
        let mut ctx = match &self.executor {
            Some(exec) => StageContext::with_executor(lake, cfg, self.obs.clone(), exec.clone()),
            None => StageContext::with_obs(lake, cfg, self.obs.clone()),
        };
        let mut run_span = self.obs.span_scope("run", "detect");
        run_span.arg("budget", budget as f64);
        run_span.arg("threads", ctx.executor.threads() as f64);

        let embedded = EmbedStage::from_config(cfg).run(&mut ctx, ());
        let featurized = FeaturizeStage::default().run(&mut ctx, ());
        let domain = DomainFoldStage.run(&mut ctx, &embedded);
        let adaptive = cfg.labeling == LabelingStrategy::UncertaintyRefinement
            && cfg.training == TrainingStrategy::PerColumn
            && budget >= 4;
        let phase1_budget = if adaptive { budget.div_ceil(2) } else { budget };
        let quality =
            QualityFoldStage { budget: phase1_budget }.run(&mut ctx, (&domain, &featurized));
        let propagated = LabelStage { labeler, budget }.run(&mut ctx, (&quality, &featurized));
        let predictions = ClassifyStage.run(&mut ctx, (&domain, &featurized, &propagated));

        ctx.quarantine.normalize();
        run_span.finish_secs();
        let result = DetectionResult {
            predicted: predictions.mask,
            labels_used: propagated.labels_used,
            n_domain_folds: domain.folds.len(),
            n_quality_folds: quality.n_total(),
            report: ctx.report,
            quarantine: ctx.quarantine,
            durability_degraded: false,
        };
        (result, RunArtifacts { featurized, domain, quality, propagated })
    }

    /// [`Matelda::detect`] with stage-level checkpointing and crash-safe
    /// resume.
    ///
    /// With [`Durability::checkpoint_dir`] set, every completed stage's
    /// artifact (plus the cumulative run state) is committed atomically
    /// before the next stage starts. With [`Durability::resume`] also
    /// set, stages whose snapshot verifies are restored instead of
    /// recomputed — and because the pipeline is bit-deterministic, the
    /// resumed run's [`DetectionResult`] is bit-identical to an
    /// uninterrupted run, at any thread count (stage wall times
    /// excepted: restored stages report the original run's timings).
    ///
    /// The caveat: the contract covers the pipeline, not the labeler.
    /// Resume replays *recorded* labels for restored stages but queries
    /// `labeler` live for recomputed ones, so the labeler must be a
    /// deterministic function of the cell identity (an [`crate::Oracle`]
    /// is; a human is, for the cells they already answered).
    ///
    /// Errors are structured and conservative: a snapshot that is
    /// corrupt ([`CkptError::Corrupt`]) or stamped by a run with
    /// different determinism inputs ([`CkptError::Mismatch`]) fails the
    /// call rather than being silently reused or recomputed.
    pub fn detect_durable(
        &self,
        lake: &Lake,
        labeler: &mut dyn Labeler,
        budget: usize,
        opts: &Durability,
    ) -> Result<DetectionResult, CkptError> {
        let cfg = &self.config;
        let mut ctx = match &self.executor {
            Some(exec) => StageContext::with_executor(lake, cfg, self.obs.clone(), exec.clone()),
            None => StageContext::with_obs(lake, cfg, self.obs.clone()),
        };
        // The run span scopes the whole pipeline: stage spans nest under
        // it, and an error path still records it on drop.
        let mut run_span = self.obs.span_scope("run", "detect");
        run_span.arg("budget", budget as f64);
        run_span.arg("threads", ctx.executor.threads() as f64);

        let store = match &opts.checkpoint_dir {
            Some(dir) => {
                let mut manifest = self.manifest(lake, budget);
                manifest.threads = ctx.executor.threads() as u64;
                match CheckpointStore::open_with(dir, manifest, opts.resume, opts.vfs.clone()) {
                    Ok(s) => Some(s.with_obs(self.obs.clone())),
                    // The directory may be unreachable before a single
                    // snapshot exists; under Degrade the run simply
                    // starts life non-durable.
                    Err(e @ CkptError::Io { .. }) if opts.policy == DurabilityPolicy::Degrade => {
                        self.obs.counter_add("ckpt.degraded", 1);
                        self.obs.event(
                            "ckpt.degraded",
                            &[
                                ("stage", Val::S("open")),
                                ("during", Val::S("open")),
                                ("error", Val::S(&e.to_string())),
                            ],
                        );
                        None
                    }
                    Err(e) => return Err(e),
                }
            }
            None => None,
        };
        let opened_degraded = opts.checkpoint_dir.is_some() && store.is_none();
        // Restoration stops at the first missing snapshot; from there the
        // interrupted run is recomputed (and re-checkpointed) stage by
        // stage.
        let mut dur = DurabilityState {
            resume_ok: opts.resume && store.is_some(),
            store,
            policy: opts.policy,
            degraded: opened_degraded,
        };
        let dur = &mut dur;

        // The two per-table stages run first so that any table faulting
        // under FaultPolicy::Skip is quarantined *before* cross-table
        // clustering — survivors then fold, label and classify exactly
        // as they would in a lake without the quarantined tables.
        let embedded = run_or_restore(&mut ctx, dur, "embed", |ctx| {
            EmbedStage::from_config(cfg).run(ctx, ())
        })?;
        let featurized = run_or_restore(&mut ctx, dur, "featurize", |ctx| {
            FeaturizeStage::default().run(ctx, ())
        })?;

        // Step 1: domain-based cell folding (cluster the embedding).
        let domain = run_or_restore(&mut ctx, dur, "domain_folds", |ctx| {
            DomainFoldStage.run(ctx, &embedded)
        })?;

        // Step 2: quality-based cell folding. The uncertainty extension
        // reserves half the budget for refinement.
        let adaptive = cfg.labeling == LabelingStrategy::UncertaintyRefinement
            && cfg.training == TrainingStrategy::PerColumn
            && budget >= 4;
        let phase1_budget = if adaptive { budget.div_ceil(2) } else { budget };
        let quality = run_or_restore(&mut ctx, dur, "quality_folds", |ctx| {
            QualityFoldStage { budget: phase1_budget }.run(ctx, (&domain, &featurized))
        })?;

        // Steps 3 + 4: sampling, labeling and propagation (plus the
        // optional uncertainty refinement).
        let propagated = run_or_restore(&mut ctx, dur, "label", |ctx| {
            LabelStage { labeler, budget }.run(ctx, (&quality, &featurized))
        })?;

        // Step 5: classification.
        let predictions = run_or_restore(&mut ctx, dur, "classify", |ctx| {
            ClassifyStage.run(ctx, (&domain, &featurized, &propagated))
        })?;

        // Crash-test hook for "killed after the last stage boundary":
        // fires between the final snapshot commit and result assembly.
        faultpoint::hit("finalize", 0);

        ctx.quarantine.normalize();
        if self.obs.is_enabled() {
            self.obs.counter_add("quarantine.tables", ctx.quarantine.tables.len() as u64);
            self.obs.counter_add("quarantine.columns", ctx.quarantine.columns.len() as u64);
            self.obs.counter_add(
                "quarantine.fold_fallbacks",
                ctx.quarantine.fold_fallbacks.len() as u64,
            );
        }
        run_span.finish_secs();
        Ok(DetectionResult {
            predicted: predictions.mask,
            labels_used: propagated.labels_used,
            n_domain_folds: domain.folds.len(),
            n_quality_folds: quality.n_total(),
            report: ctx.report,
            quarantine: ctx.quarantine,
            durability_degraded: dur.degraded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_lakegen::QuintetLake;
    use matelda_table::oracle::Oracle;
    use matelda_table::Confusion;

    fn small_quintet() -> matelda_lakegen::GeneratedLake {
        QuintetLake { rows_per_table: 60, error_rate: 0.09 }.generate(42)
    }

    #[test]
    fn end_to_end_beats_chance() {
        let lake = small_quintet();
        let mut oracle = Oracle::new(&lake.errors);
        let result = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, 60);
        let conf = Confusion::from_masks(&result.predicted, &lake.errors);
        // Random guessing at the 9% error rate has precision ≈ 0.09 and
        // F1 ≈ 0.16 at best; the pipeline must do far better even with
        // ~1 label per 30 columns.
        assert!(conf.precision() > 0.2, "precision {} too low", conf.precision());
        assert!(conf.recall() > 0.2, "recall {} too low", conf.recall());
        assert!(conf.f1() > 0.25, "f1 {} too low", conf.f1());
        assert!(result.labels_used > 0);
        assert!(result.n_domain_folds >= 1);
        assert!(result.n_quality_folds >= result.n_domain_folds);
    }

    #[test]
    fn deterministic_given_seed() {
        let lake = small_quintet();
        let run = || {
            let mut oracle = Oracle::new(&lake.errors);
            Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, 40)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.labels_used, b.labels_used);
    }

    #[test]
    fn detect_explained_matches_detect_bit_for_bit() {
        let lake = small_quintet();
        let mut o1 = Oracle::new(&lake.errors);
        let plain = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut o1, 40);
        let mut o2 = Oracle::new(&lake.errors);
        let (explained, artifacts) =
            Matelda::new(MateldaConfig::default()).detect_explained(&lake.dirty, &mut o2, 40);
        assert_eq!(explained.digest(), plain.digest());
        assert_eq!(explained.predicted, plain.predicted);
        // The artifacts cover the whole lake and are mutually consistent.
        assert_eq!(artifacts.featurized.features.len(), lake.dirty.n_tables());
        assert_eq!(artifacts.propagated.labels_used, plain.labels_used);
        assert_eq!(artifacts.quality.n_total(), plain.n_quality_folds);
        assert_eq!(artifacts.domain.folds.len(), plain.n_domain_folds);
    }

    #[test]
    fn budget_controls_labels_used() {
        let lake = small_quintet();
        let mut o1 = Oracle::new(&lake.errors);
        let small = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut o1, 12);
        let mut o2 = Oracle::new(&lake.errors);
        let large = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut o2, 120);
        assert!(large.labels_used > small.labels_used);
        // The budget is a hard ceiling.
        assert!(small.labels_used <= 12, "{}", small.labels_used);
        assert!(large.labels_used <= 120, "{}", large.labels_used);
        assert!(small.labels_used >= 2);
    }

    #[test]
    fn all_variants_run() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(5);
        let variants = vec![
            MateldaConfig {
                domain_folding: DomainFolding::ExtremeDomainFolding,
                ..Default::default()
            },
            MateldaConfig { domain_folding: DomainFolding::RowSampling(0.3), ..Default::default() },
            MateldaConfig { domain_folding: DomainFolding::SantosLike, ..Default::default() },
            MateldaConfig { syntactic_refinement: true, ..Default::default() },
            MateldaConfig { training: TrainingStrategy::PerDomainFold, ..Default::default() },
            MateldaConfig { training: TrainingStrategy::UnlabeledCellFolds, ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_outliers(), ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_typos(), ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_rules(), ..Default::default() },
        ];
        for cfg in variants {
            let mut oracle = Oracle::new(&lake.errors);
            let r = Matelda::new(cfg.clone()).detect(&lake.dirty, &mut oracle, 20);
            assert_eq!(r.predicted.n_cells(), lake.dirty.n_cells(), "variant {cfg:?}");
            assert!(r.labels_used <= 20, "variant {cfg:?} overspent: {}", r.labels_used);
        }
    }

    #[test]
    fn mem_budget_degrades_domain_folds_instead_of_aborting() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(5);
        // 64 bytes can't hold the 5×5 mutual-reachability matrix, so the
        // domain-fold stage goes over budget; under Skip the run must
        // complete, degraded to extreme domain folding, with the fault
        // on the record.
        let cfg = MateldaConfig {
            mem_budget_bytes: Some(64),
            on_error: FaultPolicy::Skip,
            ..Default::default()
        };
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 20);
        assert_eq!(r.n_domain_folds, 1, "degrades to one fold of all tables");
        assert_eq!(r.predicted.n_cells(), lake.dirty.n_cells());
        let fault = r
            .report
            .faults
            .iter()
            .find(|f| f.stage == "domain_folds")
            .expect("budget fault recorded");
        assert!(fault.message.contains("memory budget"), "{}", fault.message);
        // A budget that fits changes nothing: same bits as no budget.
        let run = |budget| {
            let cfg = MateldaConfig { mem_budget_bytes: budget, ..Default::default() };
            let mut oracle = Oracle::new(&lake.errors);
            Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 20)
        };
        assert_eq!(run(Some(1 << 30)).digest(), run(None).digest());
    }

    #[test]
    #[should_panic(expected = "domain_folds")]
    fn mem_budget_aborts_under_fail_policy() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(5);
        let cfg = MateldaConfig { mem_budget_bytes: Some(64), ..Default::default() };
        let mut oracle = Oracle::new(&lake.errors);
        let _ = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 20);
    }

    #[test]
    fn adaptive_labeling_respects_budget_and_runs() {
        let lake = small_quintet();
        let budget = 3 * lake.dirty.n_columns();
        let cfg = MateldaConfig {
            labeling: LabelingStrategy::UncertaintyRefinement,
            ..Default::default()
        };
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, budget);
        // Phase 1 spends at most half the budget; phase 2 at most the
        // remainder — the total never exceeds the grant.
        assert!(r.labels_used <= budget, "{}", r.labels_used);
        let conf = Confusion::from_masks(&r.predicted, &lake.errors);
        assert!(conf.f1() > 0.2, "adaptive f1 {}", conf.f1());
    }

    #[test]
    fn empty_lake() {
        let lake = Lake::default();
        let truth = CellMask::empty(&lake);
        let mut oracle = Oracle::new(&truth);
        let r = Matelda::default().detect(&lake, &mut oracle, 10);
        assert_eq!(r.labels_used, 0);
        assert_eq!(r.n_domain_folds, 0);
        assert_eq!(r.report.stages.len(), 6, "all stages report even on an empty lake");
    }

    #[test]
    fn single_table_lake_forms_a_singleton_fold() {
        // One table: HDBSCAN has a single point to cluster; the pipeline
        // must form the singleton fold rather than panic or drop it.
        let gl = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(2);
        let lake = Lake::new(vec![gl.dirty.tables[0].clone()]);
        let truth = CellMask::from_cells(
            &lake,
            gl.errors.iter_set().filter(|id| id.table == 0).collect::<Vec<_>>(),
        );
        let mut oracle = Oracle::new(&truth);
        let r = Matelda::default().detect(&lake, &mut oracle, 10);
        assert_eq!(r.n_domain_folds, 1);
        assert!(r.labels_used <= 10);
        assert_eq!(r.predicted.n_cells(), lake.n_cells());
        assert!(r.quarantine.is_empty());
    }

    #[test]
    fn zero_row_and_zero_column_tables_flow_through_every_stage() {
        use matelda_table::{Column, Table};
        // A normal table plus two degenerate ones: a table whose columns
        // hold no values, and a table with no columns at all. Every
        // stage must pass them through under both fault policies.
        let gl = QuintetLake { rows_per_table: 15, error_rate: 0.1 }.generate(9);
        let zero_rows = Table::new(
            "zero_rows",
            vec![Column::new("a", Vec::<String>::new()), Column::new("b", Vec::<String>::new())],
        );
        let zero_cols = Table::new("zero_cols", Vec::new());
        let mut tables = gl.dirty.tables.clone();
        tables.push(zero_rows);
        tables.push(zero_cols);
        let lake = Lake::new(tables);
        let truth = CellMask::from_cells(&lake, gl.errors.iter_set().collect::<Vec<_>>());
        for on_error in [FaultPolicy::Fail, FaultPolicy::Skip] {
            let mut oracle = Oracle::new(&truth);
            let cfg = MateldaConfig { on_error, ..Default::default() };
            let r = Matelda::new(cfg).detect(&lake, &mut oracle, 15);
            assert_eq!(r.report.stages.len(), 6, "{on_error:?}");
            assert!(r.labels_used <= 15, "{on_error:?}");
            assert_eq!(r.predicted.n_cells(), lake.n_cells(), "{on_error:?}");
            // Degenerate tables have no cells, so nothing to flag there;
            // and they must not be quarantined — empty is not faulty.
            assert!(r.quarantine.tables.is_empty(), "{on_error:?}: {:?}", r.quarantine);
        }
    }

    #[test]
    fn zero_budget_spends_no_labels() {
        // The paper's 2-per-fold floor is clamped to the grant: with no
        // budget the pipeline must not ask the labeler for anything.
        let lake = small_quintet();
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::default().detect(&lake.dirty, &mut oracle, 0);
        assert_eq!(r.labels_used, 0);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("matelda-core-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn durable_run_without_resume_matches_plain_detect() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(3);
        let dir = ckpt_dir("plain");
        let mut o1 = Oracle::new(&lake.errors);
        let plain = Matelda::default().detect(&lake.dirty, &mut o1, 20);
        let mut o2 = Oracle::new(&lake.errors);
        let opts =
            Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
        let durable = Matelda::default().detect_durable(&lake.dirty, &mut o2, 20, &opts).unwrap();
        assert_eq!(durable.predicted, plain.predicted);
        assert_eq!(durable.labels_used, plain.labels_used);
        // All six stage snapshots plus the manifest are on disk.
        for stage in ["embed", "featurize", "domain_folds", "quality_folds", "label", "classify"] {
            assert!(dir.join(format!("{stage}.ckpt")).is_file(), "{stage}");
        }
        assert!(dir.join("manifest.ckpt").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_restores_everything_without_querying_the_labeler() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(4);
        let dir = ckpt_dir("resume");
        let mut o1 = Oracle::new(&lake.errors);
        let opts =
            Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
        let first = Matelda::default().detect_durable(&lake.dirty, &mut o1, 20, &opts).unwrap();
        // Second run resumes off the completed snapshots: bit-identical
        // result, and the labeler is never consulted.
        let mut o2 = Oracle::new(&lake.errors);
        let opts =
            Durability { checkpoint_dir: Some(dir.clone()), resume: true, ..Default::default() };
        let second = Matelda::default().detect_durable(&lake.dirty, &mut o2, 20, &opts).unwrap();
        assert_eq!(second.predicted, first.predicted);
        assert_eq!(second.labels_used, first.labels_used);
        assert_eq!(o2.labels_used(), 0, "restored run must not spend labels");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_different_inputs_is_rejected_not_reused() {
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(5);
        let dir = ckpt_dir("mismatch");
        let mut o1 = Oracle::new(&lake.errors);
        let opts =
            Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
        Matelda::default().detect_durable(&lake.dirty, &mut o1, 20, &opts).unwrap();
        let resume =
            Durability { checkpoint_dir: Some(dir.clone()), resume: true, ..Default::default() };
        // Different seed.
        let mut o2 = Oracle::new(&lake.errors);
        let other = Matelda::new(MateldaConfig { seed: 99, ..Default::default() });
        let err = other.detect_durable(&lake.dirty, &mut o2, 20, &resume).unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
        // Different budget.
        let mut o3 = Oracle::new(&lake.errors);
        let err = Matelda::default().detect_durable(&lake.dirty, &mut o3, 21, &resume).unwrap_err();
        assert!(err.to_string().contains("budget"), "got: {err}");
        // Different lake content.
        let mut dirty = lake.dirty.clone();
        dirty.tables[0].columns[0].values[0] = "mutated".into();
        let mut o4 = Oracle::new(&lake.errors);
        let err = Matelda::default().detect_durable(&dirty, &mut o4, 20, &resume).unwrap_err();
        assert!(err.to_string().contains("lake fingerprint"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_fault_under_degrade_still_lands_the_clean_digest() {
        use matelda_ckpt::{FaultKind, InjectAt, Vfs};
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(12);
        let mut o1 = Oracle::new(&lake.errors);
        let clean = Matelda::default().detect(&lake.dirty, &mut o1, 20);
        assert!(!clean.durability_degraded);

        // ENOSPC at the very first checkpoint operation: under Degrade
        // the run proceeds non-durably and reports it; the bits match.
        let dir = ckpt_dir("degrade");
        let obs = Obs::enabled();
        let opts = Durability {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            policy: DurabilityPolicy::Degrade,
            vfs: Vfs::with_injector(InjectAt::new(
                0,
                FaultKind::Errno(std::io::ErrorKind::StorageFull),
            )),
        };
        let mut o2 = Oracle::new(&lake.errors);
        let degraded = Matelda::default()
            .with_obs(obs.clone())
            .detect_durable(&lake.dirty, &mut o2, 20, &opts)
            .expect("Degrade must not fail the run");
        assert!(degraded.durability_degraded);
        assert_eq!(degraded.digest(), clean.digest(), "degraded run must keep the clean bits");
        assert_eq!(obs.counter("ckpt.degraded"), Some(1));
        assert!(!obs.events_named("ckpt.degraded").is_empty());

        // The same fault under Fail is a hard error, not a panic.
        let opts = Durability {
            checkpoint_dir: Some(dir.clone()),
            resume: false,
            policy: DurabilityPolicy::Fail,
            vfs: Vfs::with_injector(InjectAt::new(
                0,
                FaultKind::Errno(std::io::ErrorKind::StorageFull),
            )),
        };
        let mut o3 = Oracle::new(&lake.errors);
        let err = Matelda::default().detect_durable(&lake.dirty, &mut o3, 20, &opts).unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degrade_never_forgives_corrupt_snapshots() {
        // Degrade forgives the disk, not the bytes: a corrupt snapshot
        // on resume stays a hard error under either policy.
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(13);
        let dir = ckpt_dir("degrade-corrupt");
        let mut o1 = Oracle::new(&lake.errors);
        let write =
            Durability { checkpoint_dir: Some(dir.clone()), resume: false, ..Default::default() };
        Matelda::default().detect_durable(&lake.dirty, &mut o1, 20, &write).unwrap();
        let path = dir.join("embed.ckpt");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let opts = Durability {
            checkpoint_dir: Some(dir.clone()),
            resume: true,
            policy: DurabilityPolicy::Degrade,
            ..Default::default()
        };
        let mut o2 = Oracle::new(&lake.errors);
        let err = Matelda::default().detect_durable(&lake.dirty, &mut o2, 20, &opts).unwrap_err();
        assert!(matches!(err, CkptError::Corrupt { .. }), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degraded_flag_is_excluded_from_the_digest() {
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(14);
        let mut oracle = Oracle::new(&lake.errors);
        let mut r = Matelda::default().detect(&lake.dirty, &mut oracle, 15);
        let before = r.digest();
        r.durability_degraded = true;
        assert_eq!(r.digest(), before);
    }

    #[test]
    fn armed_stage_timeout_degrades_like_a_fault() {
        use matelda_exec::{faultpoint, DEADLINE_FAULT};
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(6);
        let cfg = MateldaConfig { on_error: FaultPolicy::Skip, threads: 2, ..Default::default() };
        let _guard = faultpoint::arm([("timeout:classify".to_string(), 0)]);
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 30);
        assert_eq!(r.quarantine.columns.len(), 1, "deadline fault must degrade one column");
        assert_eq!(r.report.faults.len(), 1);
        assert_eq!(r.report.faults[0].stage, "classify");
        assert_eq!(r.report.faults[0].message, DEADLINE_FAULT);
        assert_eq!(r.predicted.n_cells(), lake.dirty.n_cells());
    }

    #[test]
    fn armed_stage_timeout_aborts_under_fail_policy() {
        use matelda_exec::{faultpoint, DEADLINE_FAULT};
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(7);
        let cfg = MateldaConfig { threads: 1, ..Default::default() }; // Fail is default
        let _guard = faultpoint::arm([("timeout:embed".to_string(), 0)]);
        let mut oracle = Oracle::new(&lake.errors);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 10)
        }));
        let payload = caught.expect_err("deadline fault must abort under Fail");
        let msg = matelda_exec::panic_message(payload.as_ref());
        assert!(msg.contains(DEADLINE_FAULT), "unexpected panic message: {msg}");
    }

    #[test]
    fn identical_predictions_across_thread_counts() {
        let lake = QuintetLake { rows_per_table: 40, error_rate: 0.1 }.generate(11);
        let run = |threads: usize| {
            let mut oracle = Oracle::new(&lake.errors);
            Matelda::new(MateldaConfig { threads, ..Default::default() }).detect(
                &lake.dirty,
                &mut oracle,
                30,
            )
        };
        let base = run(1);
        for threads in [2, 4] {
            let r = run(threads);
            assert_eq!(r.predicted, base.predicted, "threads={threads}");
            assert_eq!(r.labels_used, base.labels_used, "threads={threads}");
            assert_eq!(r.n_quality_folds, base.n_quality_folds, "threads={threads}");
        }
    }
}
