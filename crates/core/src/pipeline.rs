//! The Matelda pipeline orchestrator (paper Alg. 1, Steps 1–5).

use crate::domain_fold::{domain_folds, refine_syntactic, DomainFolding, Fold};
use matelda_table::oracle::Labeler;
use crate::quality_fold::{budget_per_fold, quality_folds, QualityFold};
use matelda_detect::{featurize_table, CellFeatures, FeatureConfig};
use matelda_embed::encoder::{EncoderConfig, HashedEncoder};
use matelda_ml::{ClassifierKind, FittedClassifier};
use matelda_table::{CellId, CellMask, Lake};
use matelda_text::SpellChecker;

/// How the labeling budget is spent in Step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelingStrategy {
    /// The paper's protocol: one label per quality fold, at the cell
    /// nearest the fold centroid.
    CentroidPerFold,
    /// Extension (paper §6 calls minimizing labeling effort future work):
    /// spend half the budget on centroid labels, train preliminary
    /// per-column models, then spend the rest on the folds whose members
    /// the models are most *uncertain* about — labeling the most
    /// ambiguous member and splitting the fold if the new label
    /// contradicts the propagated one. Requires
    /// [`TrainingStrategy::PerColumn`].
    UncertaintyRefinement,
}

/// How per-cell classifiers are trained in Step 5 (paper §4.5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingStrategy {
    /// The default: one gradient-boosting model per column, trained on the
    /// column's propagated labels.
    PerColumn,
    /// Matelda-TPDF: one model per domain fold.
    PerDomainFold,
    /// Matelda-TUCF: one model per domain fold, but quality folding
    /// produces 2k folds of which only the k largest are labeled — label
    /// propagation stays within smaller, more coherent clusters and some
    /// folds remain unlabeled.
    UnlabeledCellFolds,
}

/// Full pipeline configuration. `Default` reproduces the paper's standard
/// Matelda; every field maps to a published variant or parameter.
#[derive(Debug, Clone)]
pub struct MateldaConfig {
    /// Step 1 strategy (standard / EDF / RS / Santos).
    pub domain_folding: DomainFolding,
    /// Apply the `+SF` column-level refinement after Step 1.
    pub syntactic_refinement: bool,
    /// Column groups per domain fold when `+SF` is on.
    pub syntactic_groups: usize,
    /// Detector families for the unified feature space (NOD/NTD/NRVD).
    pub features: FeatureConfig,
    /// Step 5 training strategy.
    pub training: TrainingStrategy,
    /// Table-embedding configuration (Step 1).
    pub encoder: EncoderConfig,
    /// Mini-batch size for quality folding (paper: 256 × cores).
    pub kmeans_batch: usize,
    /// Mini-batch k-means iterations.
    pub kmeans_iterations: usize,
    /// Per-column/fold learner (paper: gradient boosting with library
    /// defaults; a random forest is available for the classifier
    /// ablation).
    pub classifier: ClassifierKind,
    /// Step 3 labeling protocol.
    pub labeling: LabelingStrategy,
    /// Seed for all stochastic components.
    pub seed: u64,
}

impl Default for MateldaConfig {
    fn default() -> Self {
        Self {
            domain_folding: DomainFolding::Hdbscan,
            syntactic_refinement: false,
            // Fine-grained: the paper's +SF separates columns by type,
            // character distribution and length signature, which yields
            // many small groups; 8 per fold realizes that granularity.
            syntactic_groups: 8,
            features: FeatureConfig::default(),
            training: TrainingStrategy::PerColumn,
            encoder: EncoderConfig::default(),
            kmeans_batch: 256,
            kmeans_iterations: 100,
            classifier: ClassifierKind::default(),
            labeling: LabelingStrategy::CentroidPerFold,
            seed: 0,
        }
    }
}

/// Output of a detection run.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// Cells predicted erroneous.
    pub predicted: CellMask,
    /// Labels actually drawn from the user/oracle.
    pub labels_used: usize,
    /// Number of domain folds formed in Step 1 (after any refinement).
    pub n_domain_folds: usize,
    /// Total quality folds formed in Step 2.
    pub n_quality_folds: usize,
}

/// The Matelda estimator.
#[derive(Debug, Clone, Default)]
pub struct Matelda {
    config: MateldaConfig,
}

impl Matelda {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: MateldaConfig) -> Self {
        Self { config }
    }

    /// Runs the full pipeline on `lake` with a total labeling budget of
    /// `budget` cells, asking `labeler` for each sampled cell's label.
    pub fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: usize) -> DetectionResult {
        let cfg = &self.config;
        let encoder = HashedEncoder::new(cfg.encoder.clone());

        // Step 1: domain-based cell folding.
        let mut folds = domain_folds(lake, cfg.domain_folding, &encoder, cfg.seed);
        if cfg.syntactic_refinement {
            folds = refine_syntactic(lake, folds, cfg.syntactic_groups);
        }
        let n_domain_folds = folds.len();

        // Unified featurization, once per table.
        let spell = SpellChecker::english();
        let features: Vec<CellFeatures> =
            lake.tables.iter().map(|t| featurize_table(t, &spell, &cfg.features)).collect();

        // Step 2: quality-based cell folding with the budget split. The
        // uncertainty extension reserves half the budget for refinement.
        let adaptive = cfg.labeling == LabelingStrategy::UncertaintyRefinement
            && cfg.training == TrainingStrategy::PerColumn
            && budget >= 4;
        let phase1_budget = if adaptive { budget.div_ceil(2) } else { budget };
        let budgets = budget_per_fold(&folds, phase1_budget);
        let fold_multiplier = if cfg.training == TrainingStrategy::UnlabeledCellFolds { 2 } else { 1 };
        let mut all_quality_folds: Vec<(usize, QualityFold, bool)> = Vec::new(); // (domain fold, fold, labeled?)
        let mut n_quality_folds = 0usize;
        for (fi, fold) in folds.iter().enumerate() {
            let k = budgets[fi] * fold_multiplier;
            let mut qfolds = quality_folds(
                lake,
                fold,
                &features,
                k,
                cfg.kmeans_batch,
                cfg.kmeans_iterations,
                cfg.seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            n_quality_folds += qfolds.len();
            // TUCF labels only the k largest folds; otherwise all folds.
            let labeled: Vec<bool> = if fold_multiplier == 2 {
                let mut order: Vec<usize> = (0..qfolds.len()).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(qfolds[i].cells.len()));
                let mut flag = vec![false; qfolds.len()];
                for &i in order.iter().take(budgets[fi]) {
                    flag[i] = true;
                }
                flag
            } else {
                vec![true; qfolds.len()]
            };
            for (qf, lab) in qfolds.drain(..).zip(labeled) {
                all_quality_folds.push((fi, qf, lab));
            }
        }

        // Steps 3 + 4: sampling, labeling and propagation.
        let feat_of = |id: CellId| features[id.table].get(id.row, id.col).to_vec();
        let mut labels: Vec<Vec<Option<bool>>> = lake
            .tables
            .iter()
            .map(|t| vec![None; t.n_rows() * t.n_cols()])
            .collect();
        let mut labeled_folds: Vec<(QualityFold, CellId, bool)> = Vec::new();
        for (_, qf, labeled) in &all_quality_folds {
            if !labeled {
                continue;
            }
            let sample = qf.sample(&feat_of);
            let verdict = labeler.label(sample);
            for &id in &qf.cells {
                labels[id.table][id.row * lake[id.table].n_cols() + id.col] = Some(verdict);
            }
            labeled_folds.push((qf.clone(), sample, verdict));
        }

        // Extension: uncertainty-driven refinement of the most ambiguous
        // quality folds with the second half of the budget.
        if adaptive {
            let remaining = budget.saturating_sub(labeler.labels_used());
            self.refine_with_uncertainty(
                lake,
                &features,
                &mut labels,
                &labeled_folds,
                labeler,
                remaining,
            );
        }

        // Step 5: classification.
        let predicted = match cfg.training {
            TrainingStrategy::PerColumn => self.train_per_column(lake, &features, &labels),
            TrainingStrategy::PerDomainFold | TrainingStrategy::UnlabeledCellFolds => {
                self.train_per_fold(lake, &features, &labels, &folds)
            }
        };

        DetectionResult {
            predicted,
            labels_used: labeler.labels_used(),
            n_domain_folds,
            n_quality_folds,
        }
    }

    /// The uncertainty-refinement phase (see
    /// [`LabelingStrategy::UncertaintyRefinement`]): fit preliminary
    /// per-column models on the propagated labels, rank labeled folds by
    /// the mean ambiguity of their members' predictions, and spend the
    /// remaining budget labeling each ambiguous fold's most uncertain
    /// member. A contradicting label splits the fold: members re-adopt
    /// the label of the nearer anchor cell in feature space.
    fn refine_with_uncertainty(
        &self,
        lake: &Lake,
        features: &[CellFeatures],
        labels: &mut [Vec<Option<bool>>],
        labeled_folds: &[(QualityFold, CellId, bool)],
        labeler: &mut dyn Labeler,
        remaining: usize,
    ) {
        if remaining == 0 || labeled_folds.is_empty() {
            return;
        }
        let models = self.fit_column_models(lake, features, labels);
        let proba = |id: CellId| {
            models[id.table][id.col].predict_proba(features[id.table].get(id.row, id.col))
        };
        // Ambiguity of a prediction: 1 at p = 0.5, 0 at p in {0, 1}.
        let ambiguity = |id: CellId| 1.0 - 2.0 * (proba(id) - 0.5).abs();

        let mut ranked: Vec<(f64, usize)> = labeled_folds
            .iter()
            .enumerate()
            .map(|(i, (qf, _, _))| {
                let mean: f64 =
                    qf.cells.iter().map(|&id| ambiguity(id)).sum::<f64>() / qf.cells.len() as f64;
                (mean, i)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));

        let sq = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        for &(_, fi) in ranked.iter().take(remaining) {
            let (qf, anchor, anchor_verdict) = &labeled_folds[fi];
            // Most ambiguous member that is not the anchor itself.
            let Some(&probe) = qf
                .cells
                .iter()
                .filter(|&&id| id != *anchor)
                .max_by(|&&a, &&b| ambiguity(a).partial_cmp(&ambiguity(b)).expect("finite"))
            else {
                continue;
            };
            let probe_verdict = labeler.label(probe);
            if probe_verdict == *anchor_verdict {
                continue; // confirmation: propagation stands
            }
            // Contradiction: split the fold between the two anchors.
            let av = features[anchor.table].get(anchor.row, anchor.col).to_vec();
            let pv = features[probe.table].get(probe.row, probe.col).to_vec();
            for &id in &qf.cells {
                let fv = features[id.table].get(id.row, id.col);
                let verdict =
                    if sq(fv, &pv) < sq(fv, &av) { probe_verdict } else { *anchor_verdict };
                labels[id.table][id.row * lake[id.table].n_cols() + id.col] = Some(verdict);
            }
        }
    }

    /// Fits the per-column models on the current propagated labels.
    fn fit_column_models(
        &self,
        lake: &Lake,
        features: &[CellFeatures],
        labels: &[Vec<Option<bool>>],
    ) -> Vec<Vec<FittedClassifier>> {
        lake.tables
            .iter()
            .enumerate()
            .map(|(t, table)| {
                let m = table.n_cols();
                (0..m)
                    .map(|c| {
                        let mut x = Vec::new();
                        let mut y = Vec::new();
                        for r in 0..table.n_rows() {
                            if let Some(lab) = labels[t][r * m + c] {
                                x.push(features[t].get(r, c).to_vec());
                                y.push(lab);
                            }
                        }
                        FittedClassifier::fit(&self.config.classifier, &x, &y)
                    })
                    .collect()
            })
            .collect()
    }

    /// One classifier per column (the paper's default).
    fn train_per_column(
        &self,
        lake: &Lake,
        features: &[CellFeatures],
        labels: &[Vec<Option<bool>>],
    ) -> CellMask {
        let mut predicted = CellMask::empty(lake);
        for (t, table) in lake.tables.iter().enumerate() {
            let m = table.n_cols();
            for c in 0..m {
                let mut x = Vec::new();
                let mut y = Vec::new();
                for r in 0..table.n_rows() {
                    if let Some(lab) = labels[t][r * m + c] {
                        x.push(features[t].get(r, c).to_vec());
                        y.push(lab);
                    }
                }
                let model = FittedClassifier::fit(&self.config.classifier, &x, &y);
                for r in 0..table.n_rows() {
                    if model.predict(features[t].get(r, c)) {
                        predicted.set(CellId::new(t, r, c), true);
                    }
                }
            }
        }
        predicted
    }

    /// One classifier per domain fold (TPDF / TUCF).
    fn train_per_fold(
        &self,
        lake: &Lake,
        features: &[CellFeatures],
        labels: &[Vec<Option<bool>>],
        folds: &[Fold],
    ) -> CellMask {
        let mut predicted = CellMask::empty(lake);
        for fold in folds {
            let mut x = Vec::new();
            let mut y = Vec::new();
            for &(t, c) in &fold.columns {
                let m = lake[t].n_cols();
                for r in 0..lake[t].n_rows() {
                    if let Some(lab) = labels[t][r * m + c] {
                        x.push(features[t].get(r, c).to_vec());
                        y.push(lab);
                    }
                }
            }
            let model = FittedClassifier::fit(&self.config.classifier, &x, &y);
            for &(t, c) in &fold.columns {
                for r in 0..lake[t].n_rows() {
                    if model.predict(features[t].get(r, c)) {
                        predicted.set(CellId::new(t, r, c), true);
                    }
                }
            }
        }
        predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::oracle::Oracle;
    use matelda_lakegen::QuintetLake;
    use matelda_table::Confusion;

    fn small_quintet() -> matelda_lakegen::GeneratedLake {
        QuintetLake { rows_per_table: 60, error_rate: 0.09 }.generate(42)
    }

    #[test]
    fn end_to_end_beats_chance() {
        let lake = small_quintet();
        let mut oracle = Oracle::new(&lake.errors);
        let result = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, 60);
        let conf = Confusion::from_masks(&result.predicted, &lake.errors);
        // Random guessing at the 9% error rate has precision ≈ 0.09 and
        // F1 ≈ 0.16 at best; the pipeline must do far better even with
        // ~1 label per 30 columns.
        assert!(conf.precision() > 0.2, "precision {} too low", conf.precision());
        assert!(conf.recall() > 0.2, "recall {} too low", conf.recall());
        assert!(conf.f1() > 0.25, "f1 {} too low", conf.f1());
        assert!(result.labels_used > 0);
        assert!(result.n_domain_folds >= 1);
        assert!(result.n_quality_folds >= result.n_domain_folds);
    }

    #[test]
    fn deterministic_given_seed() {
        let lake = small_quintet();
        let run = || {
            let mut oracle = Oracle::new(&lake.errors);
            Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut oracle, 40)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.predicted, b.predicted);
        assert_eq!(a.labels_used, b.labels_used);
    }

    #[test]
    fn budget_controls_labels_used() {
        let lake = small_quintet();
        let mut o1 = Oracle::new(&lake.errors);
        let small = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut o1, 12);
        let mut o2 = Oracle::new(&lake.errors);
        let large = Matelda::new(MateldaConfig::default()).detect(&lake.dirty, &mut o2, 120);
        assert!(large.labels_used > small.labels_used);
        // Label use tracks the requested budget within the fold-floor slack.
        assert!(small.labels_used >= 2);
        assert!(large.labels_used <= 150, "{}", large.labels_used);
    }

    #[test]
    fn all_variants_run() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(5);
        let variants = vec![
            MateldaConfig { domain_folding: DomainFolding::ExtremeDomainFolding, ..Default::default() },
            MateldaConfig { domain_folding: DomainFolding::RowSampling(0.3), ..Default::default() },
            MateldaConfig { domain_folding: DomainFolding::SantosLike, ..Default::default() },
            MateldaConfig { syntactic_refinement: true, ..Default::default() },
            MateldaConfig { training: TrainingStrategy::PerDomainFold, ..Default::default() },
            MateldaConfig { training: TrainingStrategy::UnlabeledCellFolds, ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_outliers(), ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_typos(), ..Default::default() },
            MateldaConfig { features: FeatureConfig::no_rules(), ..Default::default() },
        ];
        for cfg in variants {
            let mut oracle = Oracle::new(&lake.errors);
            let r = Matelda::new(cfg.clone()).detect(&lake.dirty, &mut oracle, 20);
            assert_eq!(r.predicted.n_cells(), lake.dirty.n_cells(), "variant {cfg:?}");
        }
    }

    #[test]
    fn adaptive_labeling_respects_budget_and_runs() {
        let lake = small_quintet();
        let budget = 3 * lake.dirty.n_columns();
        let cfg = MateldaConfig {
            labeling: LabelingStrategy::UncertaintyRefinement,
            ..Default::default()
        };
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::new(cfg).detect(&lake.dirty, &mut oracle, budget);
        // Phase 1 uses half the budget (plus fold floors); phase 2 spends
        // at most the remainder — total stays within the same slack as
        // the standard protocol.
        assert!(r.labels_used <= budget + 2 * r.n_domain_folds, "{}", r.labels_used);
        let conf = Confusion::from_masks(&r.predicted, &lake.errors);
        assert!(conf.f1() > 0.2, "adaptive f1 {}", conf.f1());
    }

    #[test]
    fn empty_lake() {
        let lake = Lake::default();
        let truth = CellMask::empty(&lake);
        let mut oracle = Oracle::new(&truth);
        let r = Matelda::default().detect(&lake, &mut oracle, 10);
        assert_eq!(r.labels_used, 0);
        assert_eq!(r.n_domain_folds, 0);
    }

    #[test]
    fn zero_budget_still_respects_fold_floor() {
        // The paper enforces >= 2 labels per domain fold even when the
        // proportional share rounds to zero.
        let lake = small_quintet();
        let mut oracle = Oracle::new(&lake.errors);
        let r = Matelda::default().detect(&lake.dirty, &mut oracle, 0);
        assert!(r.labels_used >= 2 * r.n_domain_folds.min(5));
    }
}
