//! The staged pipeline engine.
//!
//! [`Matelda::detect`](crate::Matelda::detect) used to be a monolith; it
//! is now a composition of six typed stages, each consuming and
//! producing an explicit artifact:
//!
//! ```text
//! EmbedStage        ()                                → EmbeddedLake
//! FeaturizeStage    ()                                → FeaturizedLake
//! DomainFoldStage   &EmbeddedLake                     → DomainFolds
//! QualityFoldStage  (&DomainFolds, &FeaturizedLake)   → QualityFolds
//! LabelStage        (&QualityFolds, &FeaturizedLake)  → PropagatedLabels
//! ClassifyStage     (&DomainFolds, &FeaturizedLake, &PropagatedLabels) → Predictions
//! ```
//!
//! Every stage implements [`Stage`] and runs inside a [`StageContext`]
//! carrying the lake, the configuration (which holds the seed), the
//! deterministic [`Executor`] and the accumulating [`RunReport`].
//! Callers can run the stages end-to-end (what `detect` does), resume
//! from any persisted artifact, or swap one stage for a custom
//! implementation — the artifacts are the contract.
//!
//! ## Determinism
//!
//! Four hot paths run on the executor: per-table embedding, per-table
//! featurization, per-domain-fold mini-batch k-means and per-column (or
//! per-fold) classifier training. The executor merges results in index
//! order and every stochastic stage derives a per-index seed, so the
//! output of every stage — and hence of the whole pipeline — is
//! bit-identical at any thread count.
//!
//! ## Fault isolation
//!
//! Under [`crate::pipeline::FaultPolicy::Skip`] the
//! four hot paths run on [`Executor::try_map`], which converts a panic in
//! one work item into a per-index fault instead of killing the run. Each
//! stage then degrades by its contract:
//!
//! * **embed / featurize** — the faulted *table* is quarantined: removed
//!   from domain folding and classification, its cells left unscored.
//!   The two per-table stages run *before* cross-table clustering, so a
//!   quarantined table never influences the folds — survivor predictions
//!   are bit-identical to a faultless run on the lake minus the
//!   quarantined tables.
//! * **quality_folds** — the faulted *domain fold* falls back to a single
//!   quality fold around the mean feature vector (one label instead of
//!   its budget share).
//! * **classify** — the faulted *column* (or fold) falls back to its
//!   propagated labels as predictions.
//!
//! Every fault is logged in the [`RunReport`]; what was quarantined or
//! degraded is summarized in the [`QuarantineReport`].
//!
//! ## Watchdog deadlines
//!
//! With [`MateldaConfig::stage_timeout`] set, [`Stage::run`] arms a
//! [`Deadline`] for the duration of the stage body. Work items claimed
//! past the deadline are not run — they fault with
//! [`matelda_exec::DEADLINE_FAULT`] and take exactly the degradation
//! paths above under [`FaultPolicy::Skip`], or abort the run under
//! [`FaultPolicy::Fail`] (with any checkpoints already committed left
//! intact). Items already running are never interrupted, and the
//! `domain_folds` and `label` stages are unguarded (whole-lake
//! clustering has no per-item unit to skip; the labeler is a
//! sequential, possibly-human oracle). Deterministic tests arm the
//! `timeout:<stage>` faultpoint instead of relying on wall-clock
//! sleeps.

use crate::domain_fold::{
    embed_table_for, refine_syntactic, try_folds_from_embedding_excluding_with, DomainFolding, Fold,
};
use crate::pipeline::{FaultPolicy, LabelingStrategy, MateldaConfig, TrainingStrategy};
use crate::quality_fold::{budget_per_fold, quality_folds, single_quality_fold, QualityFold};
use matelda_detect::{featurize_table, CellFeatures};
use matelda_embed::encoder::HashedEncoder;
use matelda_exec::{faultpoint, Deadline, Executor, ItemFault, RunReport, StageReport};
use matelda_ml::FittedClassifier;
use matelda_obs::{Buckets, Obs, Val};
use matelda_table::oracle::Labeler;
use matelda_table::{CellId, CellMask, Lake};
use matelda_text::SpellChecker;

pub use crate::domain_fold::EmbeddedLake;

/// What a degraded run gave up on: the units that faulted under
/// [`FaultPolicy::Skip`] and the fallback each one took. Empty for a
/// faultless run (and always empty under [`FaultPolicy::Fail`], which
/// aborts instead). All lists are sorted and duplicate-free once
/// [`QuarantineReport::normalize`] has run (`detect` calls it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Tables whose embedding or featurization faulted: excluded from
    /// domain folding and classification, their cells unscored (never
    /// flagged in the prediction mask).
    pub tables: Vec<usize>,
    /// Columns `(table, column)` whose classifier faulted: their
    /// predictions fell back to the propagated labels.
    pub columns: Vec<(usize, usize)>,
    /// Domain folds whose quality-fold clustering faulted: degraded to a
    /// single quality fold around the mean feature vector.
    pub fold_fallbacks: Vec<usize>,
}

impl QuarantineReport {
    /// `true` when nothing was quarantined or degraded.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.columns.is_empty() && self.fold_fallbacks.is_empty()
    }

    /// Sorts and deduplicates every list (stage bodies push in merge
    /// order, which is already sorted, but fallback columns of one fold
    /// can interleave with another's).
    pub fn normalize(&mut self) {
        self.tables.sort_unstable();
        self.tables.dedup();
        self.columns.sort_unstable();
        self.columns.dedup();
        self.fold_fallbacks.sort_unstable();
        self.fold_fallbacks.dedup();
    }

    /// Whether `table` is quarantined.
    pub fn table_quarantined(&self, table: usize) -> bool {
        self.tables.contains(&table)
    }
}

/// Everything a stage needs besides its input artifact: the lake, the
/// configuration slice (strategy knobs and the seed), the deterministic
/// executor, and the run-wide instrumentation the stage appends to.
pub struct StageContext<'a> {
    /// The dirty lake under detection.
    pub lake: &'a Lake,
    /// The full pipeline configuration (stages read their slice of it).
    pub config: &'a MateldaConfig,
    /// The deterministic parallel executor every hot path maps on.
    pub executor: Executor,
    /// Accumulated per-stage instrumentation.
    pub report: RunReport,
    /// Accumulated degradation decisions (see [`QuarantineReport`]).
    pub quarantine: QuarantineReport,
    /// The watchdog deadline of the stage currently executing, set by
    /// [`Stage::run`] from [`MateldaConfig::stage_timeout`]. Work items
    /// claimed past the deadline fault with
    /// [`matelda_exec::DEADLINE_FAULT`] and take the same degradation
    /// paths as a panicked item.
    pub deadline: Option<Deadline>,
    /// The run's observability handle: stage spans, the metrics
    /// registry and the event log all append here. Disabled by default
    /// — recording never influences results (DESIGN.md §7).
    pub obs: Obs,
}

impl<'a> StageContext<'a> {
    /// Builds a context for one run; the executor honours
    /// [`MateldaConfig::threads`] (`0` = available parallelism).
    pub fn new(lake: &'a Lake, config: &'a MateldaConfig) -> Self {
        Self::with_obs(lake, config, Obs::disabled())
    }

    /// [`StageContext::new`] with a recording observability handle; the
    /// executor shares it, so worker spans nest under the stage spans.
    pub fn with_obs(lake: &'a Lake, config: &'a MateldaConfig, obs: Obs) -> Self {
        // One persistent worker pool per run: the Executor owns it, every
        // stage maps through this one instance (clones share the pool),
        // and its threads wind down when the context drops.
        let executor = Executor::new(config.threads);
        Self::with_executor(lake, config, obs, executor)
    }

    /// [`StageContext::with_obs`] against a caller-supplied executor —
    /// the seam that lets a daemon run many concurrent detections on one
    /// shared worker pool instead of spawning a pool per request. The
    /// executor is re-bound to `obs` so worker spans land in *this*
    /// run's trace, not a previous tenant's; `config.threads` is ignored
    /// in favour of the executor's own width (thread count never changes
    /// result bits).
    pub fn with_executor(
        lake: &'a Lake,
        config: &'a MateldaConfig,
        obs: Obs,
        executor: Executor,
    ) -> Self {
        let executor = executor.with_obs(obs.clone());
        let report = RunReport::new(executor.threads());
        StageContext {
            lake,
            config,
            executor,
            report,
            quarantine: QuarantineReport::default(),
            deadline: None,
            obs,
        }
    }

    /// The per-index seed for parallel stochastic work: mixes `index`
    /// into the configured seed so results are independent of execution
    /// order.
    pub fn seed_for(&self, index: usize) -> u64 {
        self.config.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Applies the configured [`FaultPolicy`] to a stage's fault batch:
    /// under `Fail` the first fault is re-raised as a panic (the
    /// historical all-or-nothing behavior), under `Skip` the faults are
    /// appended to the run's fault log and the caller degrades.
    pub fn note_faults(&mut self, faults: Vec<ItemFault>) {
        if faults.is_empty() {
            return;
        }
        if self.obs.is_enabled() {
            // Logged before any `Fail` panic so an aborted run's trace
            // still shows what killed it.
            for f in &faults {
                let injected = f.message.starts_with(faultpoint::INJECTED_PREFIX);
                self.obs.event(
                    "fault.item",
                    &[
                        ("stage", Val::S(&f.stage)),
                        ("index", Val::U(f.index as u64)),
                        ("injected", Val::U(u64::from(injected))),
                        ("message", Val::S(&f.message)),
                    ],
                );
            }
            self.obs.counter_add("faults.items", faults.len() as u64);
        }
        if self.config.on_error == FaultPolicy::Fail {
            panic!("{}", faults[0]);
        }
        self.report.faults.extend(faults);
    }

    /// Marks a table quarantined (idempotent).
    pub fn quarantine_table(&mut self, table: usize) {
        if !self.quarantine.tables.contains(&table) {
            self.quarantine.tables.push(table);
        }
    }
}

/// One pipeline stage: a named transformation from an input artifact to
/// an output artifact. `Input` is a generic associated type so stages
/// can borrow earlier artifacts without taking ownership.
pub trait Stage {
    /// What the stage consumes (typically references to prior artifacts).
    type Input<'i>;
    /// The artifact the stage produces.
    type Output;

    /// Stage name as it appears in the [`RunReport`].
    fn name(&self) -> &'static str;

    /// The stage body. Annotate `stage` with items processed and any
    /// named metrics; wall time is recorded by [`Stage::run`].
    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        input: Self::Input<'i>,
        stage: &mut StageReport,
    ) -> Self::Output;

    /// Runs the stage under the context's timer and the configured
    /// watchdog deadline, then appends its report. The stage span is
    /// also the report's timer (one monotonic source); with a recording
    /// handle the stage's counters and metrics land in the registry and
    /// a `stage.end` event marks the boundary in the run log.
    fn run<'i>(&mut self, ctx: &mut StageContext<'_>, input: Self::Input<'i>) -> Self::Output {
        let name = self.name();
        let mut stage = StageReport::new(name);
        let mut span = ctx.obs.span_scope("stage", name);
        ctx.deadline = ctx.config.stage_timeout.map(Deadline::after);
        let out = self.execute(ctx, input, &mut stage);
        ctx.deadline = None;
        span.arg("items", stage.items as f64);
        stage.wall_secs = span.finish_secs();
        if ctx.obs.is_enabled() {
            ctx.obs.counter_add(&format!("stage.items.{name}"), stage.items);
            if stage.wall_secs > 0.0 {
                ctx.obs.gauge_set(
                    &format!("stage.items_per_sec.{name}"),
                    stage.items as f64 / stage.wall_secs,
                );
            }
            for (k, v) in &stage.metrics {
                ctx.obs.gauge_set(&format!("stage.{name}.{k}"), *v);
            }
            ctx.obs.event("stage.end", &[("stage", Val::S(name)), ("items", Val::U(stage.items))]);
        }
        ctx.report.stages.push(stage);
        out
    }
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

/// Step-1 output: the domain folds (after any `+SF` refinement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainFolds {
    /// The folds; every table's columns appear in exactly one fold.
    pub folds: Vec<Fold>,
}

/// The unified detector feature space, one matrix per table.
#[derive(Debug, Clone)]
pub struct FeaturizedLake {
    /// Per-table cell features, indexed like `lake.tables`.
    pub features: Vec<CellFeatures>,
}

impl FeaturizedLake {
    /// The feature vector of one cell.
    pub fn of(&self, id: CellId) -> &[f32] {
        self.features[id.table].get(id.row, id.col)
    }
}

/// One quality fold plus its provenance and labeling eligibility.
#[derive(Debug, Clone)]
pub struct QualityFoldEntry {
    /// Index of the domain fold this quality fold was carved from.
    pub domain_fold: usize,
    /// The fold itself.
    pub fold: QualityFold,
    /// Whether Step 3 spends a label on this fold (TUCF leaves the
    /// smaller half of each domain fold's quality folds unlabeled).
    pub labeled: bool,
}

/// Step-2 output: all quality folds plus the per-domain-fold budget
/// split that shaped them.
#[derive(Debug, Clone)]
pub struct QualityFolds {
    /// Quality folds in deterministic (domain fold, cluster) order.
    pub entries: Vec<QualityFoldEntry>,
    /// Labels allocated to each domain fold (clamped to the budget).
    pub budgets: Vec<usize>,
}

impl QualityFolds {
    /// Total quality folds formed.
    pub fn n_total(&self) -> usize {
        self.entries.len()
    }
}

/// One labeled quality fold: the anchor cell that was shown to the
/// labeler and the verdict that was propagated to the members.
#[derive(Debug, Clone)]
pub struct LabeledFold {
    /// The quality fold.
    pub fold: QualityFold,
    /// The cell nearest the centroid, which was labeled.
    pub anchor: CellId,
    /// The labeler's verdict for the anchor.
    pub verdict: bool,
}

/// Steps 3+4 output: per-cell propagated labels and the labeled folds.
#[derive(Debug, Clone)]
pub struct PropagatedLabels {
    /// Row-major per-table label grid; `None` = unlabeled cell.
    pub labels: Vec<Vec<Option<bool>>>,
    /// The folds that received a label, with their anchors.
    pub labeled_folds: Vec<LabeledFold>,
    /// Labels actually drawn from the labeler.
    pub labels_used: usize,
}

/// Step-5 output: the predicted error mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predictions {
    /// Cells predicted erroneous.
    pub mask: CellMask,
}

// ---------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------

/// Embeds the lake for domain folding (parallel per table).
pub struct EmbedStage {
    /// The hashed table encoder.
    pub encoder: HashedEncoder,
}

impl EmbedStage {
    /// Builds the stage from the run configuration.
    pub fn from_config(config: &MateldaConfig) -> Self {
        EmbedStage { encoder: HashedEncoder::new(config.encoder.clone()) }
    }
}

impl Stage for EmbedStage {
    type Input<'i> = ();
    type Output = EmbeddedLake;

    fn name(&self) -> &'static str {
        "embed"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        _input: (),
        stage: &mut StageReport,
    ) -> EmbeddedLake {
        let cfg = ctx.config;
        let out = match cfg.domain_folding {
            // Per-table strategies are fault-isolated: a table whose
            // embedding panics is quarantined (empty placeholder vector,
            // never clustered) and the run continues.
            DomainFolding::Hdbscan | DomainFolding::RowSampling(_) => {
                let encoder = &self.encoder;
                let results = ctx.executor.try_map_within(
                    self.name(),
                    &ctx.lake.tables,
                    ctx.deadline,
                    |ti, t| {
                        faultpoint::hit("embed", ti);
                        embed_table_for(cfg.domain_folding, encoder, cfg.seed, ti, t)
                    },
                );
                let mut vecs = Vec::with_capacity(results.len());
                let mut faults = Vec::new();
                for (ti, r) in results.into_iter().enumerate() {
                    match r {
                        Ok(v) => vecs.push(v),
                        Err(fault) => {
                            vecs.push(Vec::new());
                            faults.push(fault);
                            ctx.quarantine_table(ti);
                        }
                    }
                }
                ctx.note_faults(faults);
                EmbeddedLake::Vectors(vecs)
            }
            // Whole-lake strategies (EDF, Santos) have no per-table unit
            // of work to isolate; they run unguarded.
            _ => crate::domain_fold::embed_lake(
                ctx.lake,
                cfg.domain_folding,
                &self.encoder,
                cfg.seed,
                &ctx.executor,
            ),
        };
        stage.items = ctx.lake.n_tables() as u64;
        if let EmbeddedLake::Vectors(v) = &out {
            let dims = v.iter().find(|e| !e.is_empty()).map_or(0.0, |e| e.len() as f64);
            stage.metrics.push(("dims".into(), dims));
        }
        out
    }
}

/// Clusters the embedding into domain folds and applies the optional
/// `+SF` syntactic refinement.
pub struct DomainFoldStage;

impl Stage for DomainFoldStage {
    type Input<'i> = &'i EmbeddedLake;
    type Output = DomainFolds;

    fn name(&self) -> &'static str {
        "domain_folds"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        embedded: &EmbeddedLake,
        stage: &mut StageReport,
    ) -> DomainFolds {
        let cfg = ctx.config;
        // Quarantined tables are excluded *before* clustering, so the
        // survivors fold exactly as they would in a lake without the
        // quarantined tables.
        let mut folds = match try_folds_from_embedding_excluding_with(
            ctx.lake,
            embedded,
            &ctx.quarantine.tables,
            &ctx.executor,
            cfg.mem_budget_bytes,
        ) {
            Ok(folds) => folds,
            Err(scale_err) => {
                // Clustering would blow the byte budget. Fault the stage
                // (aborts under `FaultPolicy::Fail`) and degrade to
                // extreme domain folding: one fold of all surviving
                // tables, which allocates nothing quadratic.
                ctx.note_faults(vec![ItemFault {
                    stage: self.name().into(),
                    index: 0,
                    message: scale_err.to_string(),
                }]);
                stage.metrics.push(("budget_degraded".into(), 1.0));
                let survivors: Vec<usize> = (0..ctx.lake.n_tables())
                    .filter(|t| !ctx.quarantine.tables.contains(t))
                    .collect();
                if survivors.is_empty() {
                    Vec::new()
                } else {
                    vec![Fold {
                        columns: survivors
                            .iter()
                            .flat_map(|&t| (0..ctx.lake[t].n_cols()).map(move |c| (t, c)))
                            .collect(),
                    }]
                }
            }
        };
        if cfg.syntactic_refinement {
            folds = refine_syntactic(ctx.lake, folds, cfg.syntactic_groups);
        }
        stage.items = ctx.lake.n_tables() as u64;
        stage.metrics.push(("folds".into(), folds.len() as f64));
        DomainFolds { folds }
    }
}

/// Computes the unified detector features (parallel per table).
pub struct FeaturizeStage {
    /// The dictionary the typo detectors consult.
    pub spell: SpellChecker,
}

impl Default for FeaturizeStage {
    fn default() -> Self {
        FeaturizeStage { spell: SpellChecker::english() }
    }
}

impl Stage for FeaturizeStage {
    type Input<'i> = ();
    type Output = FeaturizedLake;

    fn name(&self) -> &'static str {
        "featurize"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        _input: (),
        stage: &mut StageReport,
    ) -> FeaturizedLake {
        let spell = &self.spell;
        let cfg = &ctx.config.features;
        // Tables already quarantined (embed faults) get an empty
        // placeholder; any accidental feature access on one is an
        // out-of-bounds panic rather than silent garbage.
        let placeholder = |t: &matelda_table::Table| {
            CellFeatures::zeros(t.n_cols(), 0, matelda_detect::FEATURE_DIM)
        };
        let quarantined: Vec<bool> = {
            let mut q = vec![false; ctx.lake.n_tables()];
            for &t in &ctx.quarantine.tables {
                q[t] = true;
            }
            q
        };
        let results =
            ctx.executor.try_map_within(self.name(), &ctx.lake.tables, ctx.deadline, |ti, t| {
                if quarantined[ti] {
                    return placeholder(t);
                }
                faultpoint::hit("featurize", ti);
                featurize_table(t, spell, cfg)
            });
        let mut features = Vec::with_capacity(results.len());
        let mut faults = Vec::new();
        for (ti, r) in results.into_iter().enumerate() {
            match r {
                Ok(f) => features.push(f),
                Err(fault) => {
                    features.push(placeholder(&ctx.lake.tables[ti]));
                    faults.push(fault);
                    ctx.quarantine_table(ti);
                }
            }
        }
        ctx.note_faults(faults);
        stage.items = ctx.lake.n_cells() as u64;
        FeaturizedLake { features }
    }
}

/// Splits the budget over domain folds and clusters each fold's cells
/// into quality folds (parallel per domain fold).
pub struct QualityFoldStage {
    /// The labeling budget this stage may allocate (Step 2's share).
    pub budget: usize,
}

impl Stage for QualityFoldStage {
    type Input<'i> = (&'i DomainFolds, &'i FeaturizedLake);
    type Output = QualityFolds;

    fn name(&self) -> &'static str {
        "quality_folds"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        (domain, featurized): (&DomainFolds, &FeaturizedLake),
        stage: &mut StageReport,
    ) -> QualityFolds {
        let cfg = ctx.config;
        let budgets = budget_per_fold(&domain.folds, self.budget);
        let tucf = cfg.training == TrainingStrategy::UnlabeledCellFolds;
        let fold_multiplier = if tucf { 2 } else { 1 };

        // Per-domain-fold clustering, parallel with per-fold seeds.
        // Zero-budget folds (the clamp can starve them) are skipped:
        // they may spend no labels, so clustering them buys nothing —
        // and since they spend nothing, they have no fault point either
        // (a fallback fold would overspend the budget).
        let per_fold: Vec<Result<Vec<QualityFoldEntry>, ItemFault>> =
            ctx.executor.try_map_n_within(self.name(), domain.folds.len(), ctx.deadline, |fi| {
                let k = budgets[fi] * fold_multiplier;
                if k == 0 {
                    return Vec::new();
                }
                faultpoint::hit("quality_folds", fi);
                let seed = cfg.seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut qfolds = quality_folds(
                    ctx.lake,
                    &domain.folds[fi],
                    &featurized.features,
                    k,
                    cfg.kmeans_batch,
                    cfg.kmeans_iterations,
                    seed,
                );
                // TUCF labels only the `budgets[fi]` largest folds;
                // otherwise every fold is labeled.
                let labeled: Vec<bool> = if tucf {
                    let mut order: Vec<usize> = (0..qfolds.len()).collect();
                    order.sort_by_key(|&i| std::cmp::Reverse(qfolds[i].cells.len()));
                    let mut flag = vec![false; qfolds.len()];
                    for &i in order.iter().take(budgets[fi]) {
                        flag[i] = true;
                    }
                    flag
                } else {
                    vec![true; qfolds.len()]
                };
                qfolds
                    .drain(..)
                    .zip(labeled)
                    .map(|(fold, labeled)| QualityFoldEntry { domain_fold: fi, fold, labeled })
                    .collect()
            });
        let mut entries: Vec<QualityFoldEntry> = Vec::new();
        let mut faults = Vec::new();
        for (fi, r) in per_fold.into_iter().enumerate() {
            match r {
                Ok(v) => entries.extend(v),
                Err(fault) => {
                    faults.push(fault);
                    // Degrade: the whole domain fold as one labeled
                    // quality fold around the mean feature vector — but
                    // only when this fold may spend a label. A panic
                    // fault implies `budgets[fi] >= 1` (the fault point
                    // sits after the zero-budget check); a watchdog
                    // deadline can pre-empt a zero-budget item too, and
                    // a fallback fold there would overspend the budget.
                    if budgets[fi] > 0 {
                        if let Some(fold) =
                            single_quality_fold(ctx.lake, &domain.folds[fi], &featurized.features)
                        {
                            entries.push(QualityFoldEntry { domain_fold: fi, fold, labeled: true });
                        }
                    }
                    ctx.quarantine.fold_fallbacks.push(fi);
                }
            }
        }
        ctx.note_faults(faults);

        stage.items = entries.iter().map(|e| e.fold.cells.len() as u64).sum();
        stage.metrics.push(("folds_formed".into(), entries.len() as f64));
        stage.metrics.push(("budget".into(), budgets.iter().sum::<usize>() as f64));
        if ctx.obs.is_enabled() {
            for e in &entries {
                ctx.obs.record("quality_folds.fold_size", e.fold.cells.len() as f64, Buckets::Size);
            }
            ctx.obs.counter_add("quality_folds.budget", budgets.iter().sum::<usize>() as u64);
        }
        QualityFolds { entries, budgets }
    }
}

/// Below this many anchor-selection items *per thread*, the label
/// stage's executor map runs inline instead of spawning workers (see
/// [`Executor::with_inline_threshold`]): at the bench scale the stage
/// maps ~38 folds and parallel scheduling overhead outweighs the work.
const LABEL_INLINE_THRESHOLD: usize = 32;

/// Samples each labeled quality fold's anchor, queries the labeler and
/// propagates the verdict (Steps 3+4), then optionally spends the
/// remaining budget on uncertainty refinement. Anchor selection runs on
/// the executor; the labeler itself is queried sequentially in fold
/// order (it is a `&mut` oracle or human).
pub struct LabelStage<'l> {
    /// The label source.
    pub labeler: &'l mut dyn Labeler,
    /// The total labeling budget for the run.
    pub budget: usize,
}

impl Stage for LabelStage<'_> {
    type Input<'i> = (&'i QualityFolds, &'i FeaturizedLake);
    type Output = PropagatedLabels;

    fn name(&self) -> &'static str {
        "label"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        (quality, featurized): (&QualityFolds, &FeaturizedLake),
        stage: &mut StageReport,
    ) -> PropagatedLabels {
        let lake = ctx.lake;
        let cfg = ctx.config;
        let mut labels: Vec<Vec<Option<bool>>> =
            lake.tables.iter().map(|t| vec![None; t.n_rows() * t.n_cols()]).collect();

        // Anchor selection is pure — run it on the executor. The
        // accessor hands `sample` borrowed feature slices: scanning a
        // fold's members allocates nothing. The map is tiny (one item
        // per labeled fold — tens of items, each microseconds of work),
        // so thread spawn/join overhead dominates: opt in to the
        // small-batch serial fallback below `LABEL_INLINE_THRESHOLD`
        // items per thread. Output is bit-identical either way.
        let labeled_entries: Vec<&QualityFoldEntry> =
            quality.entries.iter().filter(|e| e.labeled).collect();
        let anchors: Vec<CellId> = ctx
            .executor
            .clone()
            .with_inline_threshold(LABEL_INLINE_THRESHOLD)
            .map(&labeled_entries, |_, e| e.fold.sample(&|id: CellId| featurized.of(id)));

        let mut labeled_folds: Vec<LabeledFold> = Vec::new();
        for (entry, &anchor) in labeled_entries.iter().zip(&anchors) {
            let verdict = self.labeler.label(anchor);
            for &id in &entry.fold.cells {
                labels[id.table][id.row * lake[id.table].n_cols() + id.col] = Some(verdict);
            }
            labeled_folds.push(LabeledFold { fold: entry.fold.clone(), anchor, verdict });
        }
        let phase1 = self.labeler.labels_used();

        // Extension: uncertainty-driven refinement with the rest of the
        // budget (only reachable when the config reserved it).
        let adaptive = cfg.labeling == LabelingStrategy::UncertaintyRefinement
            && cfg.training == TrainingStrategy::PerColumn
            && self.budget >= 4;
        if adaptive {
            let remaining = self.budget.saturating_sub(phase1);
            refine_with_uncertainty(
                ctx,
                featurized,
                &mut labels,
                &labeled_folds,
                self.labeler,
                remaining,
            );
        }

        let labels_used = self.labeler.labels_used();
        stage.items = labels_used as u64;
        stage.metrics.push(("folds_labeled".into(), labeled_folds.len() as f64));
        stage.metrics.push(("labels_refine".into(), (labels_used - phase1) as f64));
        if ctx.obs.is_enabled() {
            // Each anchor lookup is one member-cell feature access; all
            // of them borrow straight from the featurized lake (the
            // counter records how many per-cell copies the borrowing
            // accessor saved).
            let lookups: u64 = labeled_entries.iter().map(|e| e.fold.cells.len() as u64).sum();
            ctx.obs.counter_add("label.anchor_feature_lookups", lookups);
            ctx.obs.counter_add("label.labels_used", labels_used as u64);
            ctx.obs.counter_add("label.budget", self.budget as u64);
        }
        PropagatedLabels { labels, labeled_folds, labels_used }
    }
}

/// Trains the Step-5 classifiers (parallel per column or per domain
/// fold) and merges their predictions in index order.
pub struct ClassifyStage;

impl Stage for ClassifyStage {
    type Input<'i> = (&'i DomainFolds, &'i FeaturizedLake, &'i PropagatedLabels);
    type Output = Predictions;

    fn name(&self) -> &'static str {
        "classify"
    }

    fn execute<'i>(
        &mut self,
        ctx: &mut StageContext<'_>,
        (domain, featurized, propagated): (&DomainFolds, &FeaturizedLake, &PropagatedLabels),
        stage: &mut StageReport,
    ) -> Predictions {
        let (mask, faults, fallback_cols) = match ctx.config.training {
            TrainingStrategy::PerColumn => {
                train_per_column(ctx, featurized, &propagated.labels, stage)
            }
            TrainingStrategy::PerDomainFold | TrainingStrategy::UnlabeledCellFolds => {
                train_per_fold(ctx, featurized, &propagated.labels, &domain.folds, stage)
            }
        };
        ctx.quarantine.columns.extend(fallback_cols);
        ctx.note_faults(faults);
        stage.items = ctx.lake.n_cells() as u64;
        stage.metrics.push(("flagged".into(), mask.count() as f64));
        Predictions { mask }
    }
}

/// Fits the per-column models on the current propagated labels
/// (parallel over the flattened `(table, column)` index space).
pub(crate) fn fit_column_models(
    ctx: &StageContext<'_>,
    featurized: &FeaturizedLake,
    labels: &[Vec<Option<bool>>],
) -> Vec<Vec<FittedClassifier>> {
    let lake = ctx.lake;
    let columns: Vec<(usize, usize)> = lake
        .tables
        .iter()
        .enumerate()
        .flat_map(|(t, table)| (0..table.n_cols()).map(move |c| (t, c)))
        .collect();
    let models = ctx.executor.map(&columns, |_, &(t, c)| {
        let table = &lake.tables[t];
        let m = table.n_cols();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in 0..table.n_rows() {
            if let Some(lab) = labels[t][r * m + c] {
                x.push(featurized.features[t].get(r, c).to_vec());
                y.push(lab);
            }
        }
        FittedClassifier::fit_with(&ctx.config.classifier, &x, &y, &ctx.executor)
    });
    // Re-nest the flat, index-ordered model list per table.
    let mut nested: Vec<Vec<FittedClassifier>> = lake.tables.iter().map(|_| Vec::new()).collect();
    for ((t, _), model) in columns.into_iter().zip(models) {
        nested[t].push(model);
    }
    nested
}

/// One classifier per column (the paper's default), trained in parallel
/// with predictions merged in `(table, column)` order. Quarantined
/// tables' columns get no model and stay unflagged; a column whose
/// training or prediction faults falls back to its propagated labels.
/// Returns the mask plus the faults and fallback columns for the caller
/// to apply to the context.
fn train_per_column(
    ctx: &StageContext<'_>,
    featurized: &FeaturizedLake,
    labels: &[Vec<Option<bool>>],
    stage: &mut StageReport,
) -> (CellMask, Vec<ItemFault>, Vec<(usize, usize)>) {
    let lake = ctx.lake;
    let columns: Vec<(usize, usize)> = lake
        .tables
        .iter()
        .enumerate()
        .filter(|&(t, _)| !ctx.quarantine.table_quarantined(t))
        .flat_map(|(t, table)| (0..table.n_cols()).map(move |c| (t, c)))
        .collect();
    stage.metrics.push(("models".into(), columns.len() as f64));
    let flagged: Vec<Result<(Vec<usize>, bool), ItemFault>> =
        ctx.executor.try_map_within("classify", &columns, ctx.deadline, |i, &(t, c)| {
            faultpoint::hit("classify", i);
            let table = &lake.tables[t];
            let m = table.n_cols();
            let mut x = Vec::new();
            let mut y = Vec::new();
            for r in 0..table.n_rows() {
                if let Some(lab) = labels[t][r * m + c] {
                    x.push(featurized.features[t].get(r, c).to_vec());
                    y.push(lab);
                }
            }
            let model = FittedClassifier::fit_with(&ctx.config.classifier, &x, &y, &ctx.executor);
            let rows = (0..table.n_rows())
                .filter(|&r| model.predict(featurized.features[t].get(r, c)))
                .collect();
            (rows, model.used_binned())
        });
    let mut predicted = CellMask::empty(lake);
    let mut faults = Vec::new();
    let mut fallback_cols = Vec::new();
    for (&(t, c), result) in columns.iter().zip(flagged) {
        match result {
            Ok((rows, used_binned)) => {
                record_fit_kernel(ctx, used_binned);
                for r in rows {
                    predicted.set(CellId::new(t, r, c), true);
                }
            }
            Err(fault) => {
                faults.push(fault);
                fallback_cols.push((t, c));
                flag_propagated(lake, labels, t, c, &mut predicted);
            }
        }
    }
    (predicted, faults, fallback_cols)
}

/// Records which GBM training kernel one classify work item used:
/// `classify.binned_fits` counts histogram-kernel fits,
/// `classify.exact_fits` counts exact-path fallbacks (high-cardinality
/// or NaN features — see [`matelda_ml::BinnedDataset::build`]). The
/// split makes a silent wholesale fallback to the slow path visible in
/// the metrics dump. No-op when tracing is off.
fn record_fit_kernel(ctx: &StageContext<'_>, used_binned: bool) {
    if ctx.obs.is_enabled() {
        let key = if used_binned { "classify.binned_fits" } else { "classify.exact_fits" };
        ctx.obs.counter_add(key, 1);
    }
}

/// The classifier fallback: flag exactly the cells of `(t, c)` whose
/// propagated label says "erroneous" — the label-propagation verdict
/// stands in for the model that could not be trained.
fn flag_propagated(
    lake: &Lake,
    labels: &[Vec<Option<bool>>],
    t: usize,
    c: usize,
    predicted: &mut CellMask,
) {
    let m = lake[t].n_cols();
    for r in 0..lake[t].n_rows() {
        if labels[t][r * m + c] == Some(true) {
            predicted.set(CellId::new(t, r, c), true);
        }
    }
}

/// One classifier per domain fold (TPDF / TUCF), trained in parallel
/// with predictions merged in fold order. Folds never contain
/// quarantined tables (they were excluded before clustering); a fold
/// whose model faults falls back to propagated labels for all its
/// columns.
fn train_per_fold(
    ctx: &StageContext<'_>,
    featurized: &FeaturizedLake,
    labels: &[Vec<Option<bool>>],
    folds: &[Fold],
    stage: &mut StageReport,
) -> (CellMask, Vec<ItemFault>, Vec<(usize, usize)>) {
    let lake = ctx.lake;
    stage.metrics.push(("models".into(), folds.len() as f64));
    let flagged: Vec<Result<(Vec<CellId>, bool), ItemFault>> =
        ctx.executor.try_map_n_within("classify", folds.len(), ctx.deadline, |fi| {
            faultpoint::hit("classify", fi);
            let fold = &folds[fi];
            let mut x = Vec::new();
            let mut y = Vec::new();
            for &(t, c) in &fold.columns {
                let m = lake[t].n_cols();
                for r in 0..lake[t].n_rows() {
                    if let Some(lab) = labels[t][r * m + c] {
                        x.push(featurized.features[t].get(r, c).to_vec());
                        y.push(lab);
                    }
                }
            }
            let model = FittedClassifier::fit_with(&ctx.config.classifier, &x, &y, &ctx.executor);
            let mut ids = Vec::new();
            for &(t, c) in &fold.columns {
                for r in 0..lake[t].n_rows() {
                    if model.predict(featurized.features[t].get(r, c)) {
                        ids.push(CellId::new(t, r, c));
                    }
                }
            }
            (ids, model.used_binned())
        });
    let mut predicted = CellMask::empty(lake);
    let mut faults = Vec::new();
    let mut fallback_cols = Vec::new();
    for (fi, result) in flagged.into_iter().enumerate() {
        match result {
            Ok((ids, used_binned)) => {
                record_fit_kernel(ctx, used_binned);
                for id in ids {
                    predicted.set(id, true);
                }
            }
            Err(fault) => {
                faults.push(fault);
                for &(t, c) in &folds[fi].columns {
                    fallback_cols.push((t, c));
                    flag_propagated(lake, labels, t, c, &mut predicted);
                }
            }
        }
    }
    (predicted, faults, fallback_cols)
}

/// The uncertainty-refinement phase (see
/// [`LabelingStrategy::UncertaintyRefinement`]): fit preliminary
/// per-column models on the propagated labels, rank labeled folds by the
/// mean ambiguity of their members' predictions, and spend the remaining
/// budget labeling each ambiguous fold's most uncertain member. A
/// contradicting label splits the fold: members re-adopt the label of
/// the nearer anchor cell in feature space.
fn refine_with_uncertainty(
    ctx: &StageContext<'_>,
    featurized: &FeaturizedLake,
    labels: &mut [Vec<Option<bool>>],
    labeled_folds: &[LabeledFold],
    labeler: &mut dyn Labeler,
    remaining: usize,
) {
    if remaining == 0 || labeled_folds.is_empty() {
        return;
    }
    let lake = ctx.lake;
    let models = fit_column_models(ctx, featurized, labels);
    let proba = |id: CellId| models[id.table][id.col].predict_proba(featurized.of(id));
    // Ambiguity of a prediction: 1 at p = 0.5, 0 at p in {0, 1}.
    let ambiguity = |id: CellId| 1.0 - 2.0 * (proba(id) - 0.5).abs();

    let mut ranked: Vec<(f64, usize)> = labeled_folds
        .iter()
        .enumerate()
        .map(|(i, lf)| {
            let mean: f64 = lf.fold.cells.iter().map(|&id| ambiguity(id)).sum::<f64>()
                / lf.fold.cells.len() as f64;
            (mean, i)
        })
        .collect();
    // total_cmp: a NaN ambiguity (e.g. a degenerate model emitting NaN
    // probabilities) must rank, not panic.
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let sq =
        |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
    for &(_, fi) in ranked.iter().take(remaining) {
        let LabeledFold { fold, anchor, verdict: anchor_verdict } = &labeled_folds[fi];
        // Most ambiguous member that is not the anchor itself.
        let Some(&probe) = fold
            .cells
            .iter()
            .filter(|&&id| id != *anchor)
            .max_by(|&&a, &&b| ambiguity(a).total_cmp(&ambiguity(b)))
        else {
            continue;
        };
        let probe_verdict = labeler.label(probe);
        if probe_verdict == *anchor_verdict {
            continue; // confirmation: propagation stands
        }
        // Contradiction: split the fold between the two anchors.
        let av = featurized.of(*anchor).to_vec();
        let pv = featurized.of(probe).to_vec();
        for &id in &fold.cells {
            let fv = featurized.of(id);
            let v = if sq(fv, &pv) < sq(fv, &av) { probe_verdict } else { *anchor_verdict };
            labels[id.table][id.row * lake[id.table].n_cols() + id.col] = Some(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_lakegen::QuintetLake;
    use matelda_table::oracle::Oracle;

    fn cfg_with_threads(threads: usize) -> MateldaConfig {
        MateldaConfig { threads, ..Default::default() }
    }

    #[test]
    fn stages_compose_like_detect() {
        let lake = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(7);
        let cfg = cfg_with_threads(1);
        let budget = 25;

        // Staged, by hand.
        let mut ctx = StageContext::new(&lake.dirty, &cfg);
        let embedded = EmbedStage::from_config(&cfg).run(&mut ctx, ());
        let featurized = FeaturizeStage::default().run(&mut ctx, ());
        let domain = DomainFoldStage.run(&mut ctx, &embedded);
        let quality = QualityFoldStage { budget }.run(&mut ctx, (&domain, &featurized));
        let mut oracle = Oracle::new(&lake.errors);
        let propagated =
            LabelStage { labeler: &mut oracle, budget }.run(&mut ctx, (&quality, &featurized));
        let predictions = ClassifyStage.run(&mut ctx, (&domain, &featurized, &propagated));

        // Through the facade.
        let mut oracle2 = Oracle::new(&lake.errors);
        let result = crate::Matelda::new(cfg.clone()).detect(&lake.dirty, &mut oracle2, budget);

        assert_eq!(predictions.mask, result.predicted);
        assert_eq!(propagated.labels_used, result.labels_used);
        assert_eq!(ctx.report.stages.len(), result.report.stages.len());
    }

    #[test]
    fn swapped_stage_changes_only_downstream() {
        // Swapping the embed stage for a trivial one must still produce a
        // full-lake prediction mask — the artifact contract holds.
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(3);
        let cfg = cfg_with_threads(1);
        let mut ctx = StageContext::new(&lake.dirty, &cfg);
        let embedded = EmbeddedLake::Trivial; // caller-supplied artifact
        let featurized = FeaturizeStage::default().run(&mut ctx, ());
        let domain = DomainFoldStage.run(&mut ctx, &embedded);
        assert_eq!(domain.folds.len(), 1, "trivial embedding folds everything together");
        let quality = QualityFoldStage { budget: 10 }.run(&mut ctx, (&domain, &featurized));
        let mut oracle = Oracle::new(&lake.errors);
        let propagated =
            LabelStage { labeler: &mut oracle, budget: 10 }.run(&mut ctx, (&quality, &featurized));
        assert!(propagated.labels_used <= 10);
        let predictions = ClassifyStage.run(&mut ctx, (&domain, &featurized, &propagated));
        assert_eq!(predictions.mask.n_cells(), lake.dirty.n_cells());
    }

    #[test]
    fn report_covers_every_stage_with_nonzero_items() {
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(1);
        let mut oracle = Oracle::new(&lake.errors);
        let result = crate::Matelda::new(cfg_with_threads(2)).detect(&lake.dirty, &mut oracle, 20);
        let names: Vec<&str> = result.report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["embed", "featurize", "domain_folds", "quality_folds", "label", "classify"]
        );
        assert!(result.report.stages.iter().all(|s| s.wall_secs >= 0.0));
        assert!(result.report.stage("featurize").expect("exists").items > 0);
        assert!(result.report.stage("label").expect("exists").items > 0);
        assert_eq!(result.report.threads, 2);
    }

    #[test]
    fn skip_policy_quarantines_faulted_table_and_completes() {
        use crate::pipeline::FaultPolicy;
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(9);
        let cfg = MateldaConfig { on_error: FaultPolicy::Skip, threads: 2, ..Default::default() };
        let _guard = faultpoint::arm([("embed".to_string(), 1)]);
        let mut oracle = Oracle::new(&lake.errors);
        let result = crate::Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 20);
        assert_eq!(result.quarantine.tables, vec![1]);
        assert_eq!(result.report.faults.len(), 1);
        assert_eq!(result.report.faults[0].stage, "embed");
        assert_eq!(result.report.faults[0].index, 1);
        // Quarantined cells are unscored: nothing in table 1 is flagged.
        let (rows, cols) = (lake.dirty[1].n_rows(), lake.dirty[1].n_cols());
        for r in 0..rows {
            for c in 0..cols {
                assert!(!result.predicted.get(matelda_table::CellId::new(1, r, c)));
            }
        }
        // The rest of the lake still gets predictions.
        assert_eq!(result.predicted.n_cells(), lake.dirty.n_cells());
    }

    #[test]
    fn fail_policy_panics_on_injected_fault() {
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(3);
        let cfg = MateldaConfig { threads: 1, ..Default::default() }; // Fail is the default
        let _guard = faultpoint::arm([("featurize".to_string(), 0)]);
        let mut oracle = Oracle::new(&lake.errors);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 10)
        }));
        let payload = caught.expect_err("fault must abort under Fail");
        let msg = matelda_exec::panic_message(payload.as_ref());
        assert!(msg.contains("featurize[0]"), "unexpected panic message: {msg}");
    }

    #[test]
    fn quality_fold_fault_degrades_to_single_fold() {
        use crate::pipeline::FaultPolicy;
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(4);
        let cfg = MateldaConfig { on_error: FaultPolicy::Skip, threads: 1, ..Default::default() };
        let budget = 20;
        let _guard = faultpoint::arm([("quality_folds".to_string(), 0)]);
        let mut oracle = Oracle::new(&lake.errors);
        let result = crate::Matelda::new(cfg).detect(&lake.dirty, &mut oracle, budget);
        assert_eq!(result.quarantine.fold_fallbacks, vec![0]);
        assert!(result.quarantine.tables.is_empty());
        assert!(result.labels_used <= budget, "budget overspent: {}", result.labels_used);
        assert!(result.n_quality_folds >= 1);
    }

    #[test]
    fn classify_fault_falls_back_to_propagated_labels() {
        use crate::pipeline::FaultPolicy;
        let lake = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(6);
        let cfg = MateldaConfig { on_error: FaultPolicy::Skip, threads: 2, ..Default::default() };
        let _guard = faultpoint::arm([("classify".to_string(), 0)]);
        let mut oracle = Oracle::new(&lake.errors);
        let result = crate::Matelda::new(cfg).detect(&lake.dirty, &mut oracle, 30);
        assert_eq!(result.quarantine.columns.len(), 1);
        assert_eq!(result.report.faults.len(), 1);
        assert_eq!(result.report.faults[0].stage, "classify");
        assert_eq!(result.predicted.n_cells(), lake.dirty.n_cells());
    }
}
