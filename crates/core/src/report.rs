//! Per-run failure analysis: *why* did the pipeline misclassify a cell?
//!
//! Given a run's predictions, the ground truth, and the intermediate
//! artifacts of [`crate::Matelda::detect_explained`], this module picks
//! exemplar misclassified cells (false negatives and false positives)
//! and attributes each one to the evidence the pipeline actually saw:
//!
//! * the cell's value, column and table;
//! * its ground-truth error type (when typed truth masks are supplied);
//! * which detector features fired in the unified feature space;
//! * the quality fold the cell landed in, the fold's labeled anchor and
//!   the propagated verdict.
//!
//! The report renders as markdown (for humans reading a PR or a CI
//! artifact) and as JSON (for tooling); `matelda-cli --failure-report`
//! writes both.

use crate::engine::QualityFolds;
use crate::pipeline::RunArtifacts;
use matelda_table::{CellId, CellMask, Lake};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Which way a cell was misclassified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misclass {
    /// A true error the pipeline did not flag.
    FalseNegative,
    /// A clean cell the pipeline flagged.
    FalsePositive,
}

impl Misclass {
    /// Short label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Misclass::FalseNegative => "FN",
            Misclass::FalsePositive => "FP",
        }
    }
}

/// One misclassified cell with the evidence trail behind the mistake.
#[derive(Debug, Clone)]
pub struct CellDiagnosis {
    /// The cell.
    pub id: CellId,
    /// False negative or false positive.
    pub kind: Misclass,
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The cell's (dirty) value.
    pub value: String,
    /// Ground-truth error type abbreviation (`MV`, `T`, `FI`, `NO`,
    /// `VAD`), when typed truth masks were supplied and one covers the
    /// cell. Always `None` for false positives — the cell is clean.
    pub truth_type: Option<String>,
    /// Names of the detector features that fired on this cell
    /// ([`matelda_detect::fired_features`]).
    pub fired: Vec<String>,
    /// Index of the quality fold the cell belongs to (into
    /// [`QualityFolds::entries`]); `None` when the cell fell outside
    /// every fold (quarantined table or zero-budget domain fold).
    pub quality_fold: Option<usize>,
    /// The fold's labeled anchor cell and the verdict the labeler gave
    /// it; `None` when the fold was never labeled (TUCF) or the cell is
    /// foldless.
    pub anchor: Option<(CellId, bool)>,
    /// The label propagated to this cell in Step 4 (`None` = unlabeled).
    pub propagated: Option<bool>,
}

/// The failure-analysis report of one run.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total false negatives in the run.
    pub n_false_negatives: usize,
    /// Total false positives in the run.
    pub n_false_positives: usize,
    /// Exemplar diagnoses, false negatives first, each kind capped at
    /// the limit passed to [`analyze_failures`] and ordered by `CellId`.
    pub exemplars: Vec<CellDiagnosis>,
}

/// Builds the failure report for one run.
///
/// `typed_errors` maps error-type abbreviations to their truth masks
/// (pass `&[]` when no typed truth exists — `truth_type` stays `None`).
/// `max_exemplars_per_kind` caps the diagnoses per kind; the totals
/// always count every misclassification.
pub fn analyze_failures(
    lake: &Lake,
    predicted: &CellMask,
    truth: &CellMask,
    typed_errors: &[(String, CellMask)],
    artifacts: &RunArtifacts,
    max_exemplars_per_kind: usize,
) -> FailureReport {
    let fold_of = fold_membership(&artifacts.quality);
    let anchor_of = fold_anchors(artifacts);

    let diagnose = |id: CellId, kind: Misclass| -> CellDiagnosis {
        let table = &lake[id.table];
        let fold = fold_of.get(&id).copied();
        let n_cols = table.n_cols();
        CellDiagnosis {
            id,
            kind,
            table: table.name.clone(),
            column: table.columns[id.col].name.clone(),
            value: table.columns[id.col].values[id.row].clone(),
            truth_type: match kind {
                Misclass::FalsePositive => None,
                Misclass::FalseNegative => {
                    typed_errors.iter().find(|(_, mask)| mask.get(id)).map(|(name, _)| name.clone())
                }
            },
            fired: matelda_detect::fired_features(artifacts.featurized.of(id)),
            quality_fold: fold,
            anchor: fold.and_then(|f| anchor_of.get(&f).copied()),
            propagated: artifacts.propagated.labels[id.table][id.row * n_cols + id.col],
        }
    };

    let fns: Vec<CellId> = truth.iter_set().filter(|&id| !predicted.get(id)).collect();
    let fps: Vec<CellId> = predicted.iter_set().filter(|&id| !truth.get(id)).collect();
    let mut exemplars = Vec::new();
    for &id in fns.iter().take(max_exemplars_per_kind) {
        exemplars.push(diagnose(id, Misclass::FalseNegative));
    }
    for &id in fps.iter().take(max_exemplars_per_kind) {
        exemplars.push(diagnose(id, Misclass::FalsePositive));
    }
    FailureReport { n_false_negatives: fns.len(), n_false_positives: fps.len(), exemplars }
}

/// Cell → quality-fold-entry index, over every fold's member list.
fn fold_membership(quality: &QualityFolds) -> HashMap<CellId, usize> {
    let mut map = HashMap::new();
    for (i, entry) in quality.entries.iter().enumerate() {
        for &id in &entry.fold.cells {
            map.insert(id, i);
        }
    }
    map
}

/// Quality-fold-entry index → (anchor, verdict) for labeled folds. The
/// label stage processes labeled entries in entry order, so zipping the
/// filtered entries with [`crate::engine::PropagatedLabels::labeled_folds`]
/// recovers the correspondence.
fn fold_anchors(artifacts: &RunArtifacts) -> HashMap<usize, (CellId, bool)> {
    artifacts
        .quality
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.labeled)
        .zip(&artifacts.propagated.labeled_folds)
        .map(|((i, _), lf)| (i, (lf.anchor, lf.verdict)))
        .collect()
}

impl FailureReport {
    /// Renders the report as markdown: a summary line plus one table per
    /// misclassification kind.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Matelda failure analysis\n\n");
        let _ = writeln!(
            out,
            "{} false negative(s), {} false positive(s); {} exemplar(s) below.\n",
            self.n_false_negatives,
            self.n_false_positives,
            self.exemplars.len()
        );
        for (kind, title, note) in [
            (
                Misclass::FalseNegative,
                "False negatives (missed errors)",
                "True errors the pipeline did not flag.",
            ),
            (
                Misclass::FalsePositive,
                "False positives (spurious flags)",
                "Clean cells the pipeline flagged.",
            ),
        ] {
            let rows: Vec<&CellDiagnosis> =
                self.exemplars.iter().filter(|d| d.kind == kind).collect();
            let _ = writeln!(out, "## {title}\n\n{note}\n");
            if rows.is_empty() {
                out.push_str("None.\n\n");
                continue;
            }
            out.push_str(
                "| cell | table | column | value | truth type | fired features | \
                 quality fold | anchor verdict | propagated |\n",
            );
            out.push_str("|---|---|---|---|---|---|---|---|---|\n");
            for d in rows {
                let _ = writeln!(
                    out,
                    "| ({},{},{}) | {} | {} | `{}` | {} | {} | {} | {} | {} |",
                    d.id.table,
                    d.id.row,
                    d.id.col,
                    md_cell(&d.table),
                    md_cell(&d.column),
                    md_cell(&d.value),
                    d.truth_type.as_deref().unwrap_or("—"),
                    if d.fired.is_empty() { "(none)".to_string() } else { d.fired.join(", ") },
                    d.quality_fold.map_or("—".to_string(), |f| f.to_string()),
                    match d.anchor {
                        Some((a, v)) => format!(
                            "({},{},{}) → {}",
                            a.table,
                            a.row,
                            a.col,
                            if v { "error" } else { "clean" }
                        ),
                        None => "—".to_string(),
                    },
                    match d.propagated {
                        Some(true) => "error",
                        Some(false) => "clean",
                        None => "—",
                    },
                );
            }
            out.push('\n');
        }
        out
    }

    /// Renders the report as JSON (hand-rolled, dependency-free; the
    /// same escaping rules as the bench harness's writer).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"report\":\"matelda-failures\",\"false_negatives\":{},\"false_positives\":{},\
             \"exemplars\":[",
            self.n_false_negatives, self.n_false_positives
        );
        for (i, d) in self.exemplars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"kind\":{},\"cell\":[{},{},{}],\"table\":{},\"column\":{},\"value\":{},\
                 \"truth_type\":{},\"fired\":[{}],\"quality_fold\":{},\"anchor\":{},\
                 \"propagated\":{}}}",
                json_str(d.kind.label()),
                d.id.table,
                d.id.row,
                d.id.col,
                json_str(&d.table),
                json_str(&d.column),
                json_str(&d.value),
                d.truth_type.as_deref().map_or("null".to_string(), json_str),
                d.fired.iter().map(|f| json_str(f)).collect::<Vec<_>>().join(","),
                d.quality_fold.map_or("null".to_string(), |f| f.to_string()),
                match d.anchor {
                    Some((a, v)) =>
                        format!("{{\"cell\":[{},{},{}],\"verdict\":{}}}", a.table, a.row, a.col, v),
                    None => "null".to_string(),
                },
                match d.propagated {
                    Some(v) => v.to_string(),
                    None => "null".to_string(),
                },
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a value for a markdown table cell (pipes and newlines would
/// break the row).
fn md_cell(s: &str) -> String {
    let escaped = s.replace('|', "\\|").replace('\n', " ");
    if escaped.is_empty() {
        "(empty)".to_string()
    } else {
        escaped
    }
}

/// A JSON string literal with the standard escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Matelda, MateldaConfig};
    use matelda_lakegen::QuintetLake;
    use matelda_table::oracle::Oracle;

    fn run() -> (matelda_lakegen::GeneratedLake, crate::DetectionResult, RunArtifacts) {
        let lake = QuintetLake { rows_per_table: 60, error_rate: 0.09 }.generate(42);
        let mut oracle = Oracle::new(&lake.errors);
        let (result, artifacts) =
            Matelda::new(MateldaConfig::default()).detect_explained(&lake.dirty, &mut oracle, 60);
        (lake, result, artifacts)
    }

    #[test]
    fn report_names_misclassified_cells_with_evidence() {
        let (lake, result, artifacts) = run();
        let report = analyze_failures(
            &lake.dirty,
            &result.predicted,
            &lake.errors,
            &lake.typed_errors,
            &artifacts,
            5,
        );
        // An imperfect detector at 9% error rate always leaves both kinds.
        assert!(report.n_false_negatives > 0);
        assert!(!report.exemplars.is_empty());
        assert!(report.exemplars.len() <= 10);
        for d in &report.exemplars {
            match d.kind {
                Misclass::FalseNegative => {
                    assert!(lake.errors.get(d.id) && !result.predicted.get(d.id));
                    assert!(d.truth_type.is_some(), "typed masks cover every injected error");
                }
                Misclass::FalsePositive => {
                    assert!(!lake.errors.get(d.id) && result.predicted.get(d.id));
                    assert!(d.truth_type.is_none());
                }
            }
            assert_eq!(d.table, lake.dirty[d.id.table].name);
            assert_eq!(d.value, lake.dirty[d.id.table].columns[d.id.col].values[d.id.row]);
        }
    }

    #[test]
    fn renders_cover_both_formats() {
        let (lake, result, artifacts) = run();
        let report = analyze_failures(
            &lake.dirty,
            &result.predicted,
            &lake.errors,
            &lake.typed_errors,
            &artifacts,
            3,
        );
        let md = report.render_markdown();
        assert!(md.starts_with("# Matelda failure analysis"));
        assert!(md.contains("False negatives"));
        let first = &report.exemplars[0];
        assert!(md.contains(&first.column), "markdown names the column");
        let json = report.render_json();
        assert!(json.starts_with("{\"report\":\"matelda-failures\""));
        assert!(json.contains("\"truth_type\""));
        // Round-trippable by any JSON parser: balanced and quoted.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_typed_truth_leaves_types_unknown() {
        let (lake, result, artifacts) = run();
        let report =
            analyze_failures(&lake.dirty, &result.predicted, &lake.errors, &[], &artifacts, 2);
        for d in &report.exemplars {
            assert!(d.truth_type.is_none());
        }
    }
}
