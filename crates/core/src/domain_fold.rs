//! Step 1 — domain-based cell folding (paper §3.2) and its variants.

use matelda_cluster::{Hdbscan, HdbscanConfig, ScaleError, NOISE};
use matelda_detect::column_syntactic_features;
use matelda_embed::encoder::{embed_table, embed_table_sampled, HashedEncoder};
use matelda_embed::vector::cosine_distance;
use matelda_exec::Executor;
use matelda_table::{Lake, Table};
use matelda_text::jaccard;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// How to build domain folds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DomainFolding {
    /// The standard pipeline: serialized-table embeddings clustered with
    /// HDBSCAN (`min_cluster_size = 2`); outlier tables become singleton
    /// folds.
    Hdbscan,
    /// Matelda-EDF (§4.5.1): skip domain folding, one fold holds all
    /// tables ("extreme domain folding").
    ExtremeDomainFolding,
    /// Matelda-RS (§4.5.2): embed only this fraction of each table's rows
    /// (the paper uses 1%; at laptop scale we default to larger samples)
    /// before the standard HDBSCAN step.
    RowSampling(f64),
    /// Matelda-Santos (§4.5.2): a unionability score stands in for the
    /// embedding — per table pair, the average best Jaccard overlap of
    /// column value-sets — then HDBSCAN on (1 − score). Much slower, same
    /// folds on well-separated lakes, reproducing the paper's finding.
    SantosLike,
    /// Extension: the SANTOS-style unionability score computed over
    /// MinHash sketches of the column value-sets instead of exact sets —
    /// O(k) per column pair instead of O(values), the standard data-lake
    /// discovery trick. The argument is the sketch size `k`.
    SantosSketch(usize),
}

/// A fold: a set of `(table, column)` pairs whose cells share labels.
///
/// For plain domain folding a fold contains *all* columns of its member
/// tables; the `+SF` syntactic refinement (§4.5.1) splits a domain fold
/// into column groups, which this representation expresses directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Member columns as `(table index, column index)`.
    pub columns: Vec<(usize, usize)>,
}

impl Fold {
    /// Number of member columns — the budget-allocation weight
    /// (Alg. 1 line 12 splits Λ by column share).
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Distinct member tables, ascending.
    pub fn tables(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.columns.iter().map(|&(t, _)| t).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// The Step-1 embedding artifact: whatever representation the chosen
/// [`DomainFolding`] strategy clusters on. Produced by [`embed_lake`]
/// (the engine's first stage) and consumed by [`folds_from_embedding`],
/// so callers can persist, inspect or swap the representation between
/// the two halves of domain folding.
#[derive(Debug, Clone, PartialEq)]
pub enum EmbeddedLake {
    /// One hashed-embedding vector per table (Hdbscan / RowSampling).
    Vectors(Vec<Vec<f32>>),
    /// Pairwise unionability similarities (SantosLike / SantosSketch).
    Unionability(Vec<Vec<f64>>),
    /// No representation needed (ExtremeDomainFolding skips Step 1).
    Trivial,
}

/// Builds the embedding artifact for `strategy`, computing per-table
/// embeddings in parallel on `exec` (results merged in table order, so
/// the artifact is identical at every thread count; the RowSampling
/// variant draws its row sample from a per-table RNG for the same
/// reason).
pub fn embed_lake(
    lake: &Lake,
    strategy: DomainFolding,
    encoder: &HashedEncoder,
    seed: u64,
    exec: &Executor,
) -> EmbeddedLake {
    match strategy {
        DomainFolding::ExtremeDomainFolding => EmbeddedLake::Trivial,
        DomainFolding::Hdbscan | DomainFolding::RowSampling(_) => EmbeddedLake::Vectors(
            exec.map(&lake.tables, |ti, t| embed_table_for(strategy, encoder, seed, ti, t)),
        ),
        DomainFolding::SantosLike => EmbeddedLake::Unionability(unionability_matrix(lake)),
        DomainFolding::SantosSketch(k) => {
            EmbeddedLake::Unionability(unionability_matrix_sketched(lake, k.max(16)))
        }
    }
}

/// Embeds one table for the vector-based folding strategies — the unit
/// of work [`embed_lake`] parallelizes and the engine fault-isolates.
/// The result depends only on `(strategy, encoder, seed, ti, table)` —
/// never on other tables or execution order — which is what makes a
/// quarantined table's removal invisible to the survivors' embeddings.
pub fn embed_table_for(
    strategy: DomainFolding,
    encoder: &HashedEncoder,
    seed: u64,
    ti: usize,
    table: &Table,
) -> Vec<f32> {
    match strategy {
        DomainFolding::RowSampling(frac) => {
            let rows = table.n_rows();
            let k = ((rows as f64 * frac).ceil() as usize).clamp(1, rows.max(1));
            if rows == 0 {
                embed_table(encoder, table)
            } else {
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (ti as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut idx: Vec<usize> = sample(&mut rng, rows, k).into_iter().collect();
                idx.sort_unstable();
                embed_table_sampled(encoder, table, &idx)
            }
        }
        _ => embed_table(encoder, table),
    }
}

/// Clusters an [`EmbeddedLake`] into domain folds (the second half of
/// Step 1).
pub fn folds_from_embedding(lake: &Lake, embedded: &EmbeddedLake) -> Vec<Fold> {
    folds_from_embedding_excluding(lake, embedded, &[])
}

/// Like [`folds_from_embedding`] but with some tables excluded
/// (quarantined by the engine's fault isolation). The survivors are
/// clustered exactly as if the lake contained only them — pairwise
/// distances and iteration order match a lake with the excluded tables
/// deleted, so fold assignments do too — and the returned folds carry
/// the survivors' *original* table indices.
pub fn folds_from_embedding_excluding(
    lake: &Lake,
    embedded: &EmbeddedLake,
    excluded: &[usize],
) -> Vec<Fold> {
    folds_from_embedding_excluding_with(lake, embedded, excluded, &Executor::single())
}

/// [`folds_from_embedding_excluding`] with HDBSCAN's pairwise-distance
/// and core-distance construction parallelized over row blocks on
/// `exec`. The fold assignments are bit-identical at every thread count
/// (see [`Hdbscan::fit_with_exec`]); the engine passes its per-run
/// executor here so clustering shares the pool with the other stages.
pub fn folds_from_embedding_excluding_with(
    lake: &Lake,
    embedded: &EmbeddedLake,
    excluded: &[usize],
    exec: &Executor,
) -> Vec<Fold> {
    try_folds_from_embedding_excluding_with(lake, embedded, excluded, exec, None)
        .expect("no budget")
}

/// [`folds_from_embedding_excluding_with`] behind a byte budget: HDBSCAN
/// over `n` surviving tables materializes a dense `n × n` f64
/// mutual-reachability matrix, and a budget that the matrix would blow
/// surfaces as a structured [`ScaleError`] *before* the allocation
/// instead of an OOM abort. `None` disables the check; within budget the
/// folds are bit-identical to the unbudgeted path.
pub fn try_folds_from_embedding_excluding_with(
    lake: &Lake,
    embedded: &EmbeddedLake,
    excluded: &[usize],
    exec: &Executor,
    budget: Option<u64>,
) -> Result<Vec<Fold>, ScaleError> {
    let survivors: Vec<usize> = (0..lake.n_tables()).filter(|t| !excluded.contains(t)).collect();
    let n = survivors.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let local_groups: Vec<Vec<usize>> = match embedded {
        EmbeddedLake::Trivial => vec![(0..n).collect()],
        EmbeddedLake::Vectors(vecs) => {
            if n == 1 {
                vec![vec![0]]
            } else {
                let labels = Hdbscan::new(HdbscanConfig::default()).try_fit_with_exec(
                    n,
                    |a, b| f64::from(cosine_distance(&vecs[survivors[a]], &vecs[survivors[b]])),
                    exec,
                    budget,
                )?;
                groups_from_labels(&labels, n)
            }
        }
        EmbeddedLake::Unionability(sims) => {
            let labels = Hdbscan::new(HdbscanConfig::default()).try_fit_with_exec(
                n,
                |a, b| (1.0 - sims[survivors[a]][survivors[b]]).max(0.0),
                exec,
                budget,
            )?;
            groups_from_labels(&labels, n)
        }
    };
    Ok(local_groups
        .into_iter()
        .map(|tables| Fold {
            columns: tables
                .iter()
                .flat_map(|&local| {
                    let t = survivors[local];
                    (0..lake[t].n_cols()).map(move |c| (t, c))
                })
                .collect(),
        })
        .collect())
}

/// Groups the lake's tables into domain folds according to `strategy`.
/// Every table lands in exactly one fold; every fold carries all columns
/// of its tables (apply [`refine_syntactic`] afterwards for `+SF`).
///
/// Single-threaded convenience over [`embed_lake`] +
/// [`folds_from_embedding`]; the staged engine calls the two halves
/// separately.
pub fn domain_folds(
    lake: &Lake,
    strategy: DomainFolding,
    encoder: &HashedEncoder,
    seed: u64,
) -> Vec<Fold> {
    let embedded = embed_lake(lake, strategy, encoder, seed, &Executor::single());
    folds_from_embedding(lake, &embedded)
}

/// Converts HDBSCAN labels to table groups; noise tables become singleton
/// folds ("each of the outlying tables is clustered into an individual
/// group", §3.2).
fn groups_from_labels(labels: &[isize], n: usize) -> Vec<Vec<usize>> {
    let k = labels.iter().copied().filter(|&l| l != NOISE).max().map_or(0, |m| m as usize + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut singletons = Vec::new();
    for (t, &l) in labels.iter().enumerate().take(n) {
        if l == NOISE {
            singletons.push(vec![t]);
        } else {
            groups[l as usize].push(t);
        }
    }
    groups.retain(|g| !g.is_empty());
    groups.extend(singletons);
    groups
}

/// The SANTOS-like unionability score between all table pairs: for each
/// column of `a`, the best Jaccard overlap with any column of `b`
/// (value-set level), averaged — symmetric by averaging both directions.
/// Deliberately expensive (full value-set comparisons), mirroring the
/// paper's observation that the SANTOS variant is ~4× slower.
pub fn unionability_matrix(lake: &Lake) -> Vec<Vec<f64>> {
    let n = lake.n_tables();
    // Tokenized value sets per column per table.
    let col_values: Vec<Vec<Vec<String>>> = lake
        .tables
        .iter()
        .map(|t| {
            t.columns
                .iter()
                .map(|c| {
                    let mut vals: Vec<String> = c.values.iter().map(|v| v.to_lowercase()).collect();
                    vals.sort_unstable();
                    vals.dedup();
                    vals
                })
                .collect()
        })
        .collect();

    let direction = |a: usize, b: usize| -> f64 {
        let cols_a = &col_values[a];
        let cols_b = &col_values[b];
        if cols_a.is_empty() || cols_b.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for ca in cols_a {
            let best = cols_b.iter().map(|cb| jaccard(ca, cb)).fold(0.0f64, f64::max);
            total += best;
        }
        total / cols_a.len() as f64
    };

    let mut sims = vec![vec![0.0f64; n]; n];
    for a in 0..n {
        sims[a][a] = 1.0;
        for b in (a + 1)..n {
            let s = (direction(a, b) + direction(b, a)) / 2.0;
            sims[a][b] = s;
            sims[b][a] = s;
        }
    }
    sims
}

/// The `+SF` refinement (§4.5.1): split each domain fold into column
/// groups by syntactic profile (data types, character distributions,
/// value lengths), so cells only share labels with syntactically similar
/// columns. The paper shows this *hurts* label sharing on DGov-NTR.
pub fn refine_syntactic(lake: &Lake, folds: Vec<Fold>, groups_per_fold: usize) -> Vec<Fold> {
    let mut refined = Vec::new();
    for fold in folds {
        if fold.columns.len() <= 1 || groups_per_fold <= 1 {
            refined.push(fold);
            continue;
        }
        let profiles: Vec<Vec<f32>> =
            fold.columns.iter().map(|&(t, c)| column_syntactic_features(&lake[t], c)).collect();
        let k = groups_per_fold.min(fold.columns.len());
        let labels = matelda_cluster::agglomerative(fold.columns.len(), k, |a, b| {
            profiles[a]
                .iter()
                .zip(&profiles[b])
                .map(|(x, y)| f64::from((x - y) * (x - y)))
                .sum::<f64>()
                .sqrt()
        });
        let n_groups = labels.iter().copied().max().unwrap_or(0) + 1;
        let mut buckets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_groups];
        for (i, &g) in labels.iter().enumerate() {
            buckets[g].push(fold.columns[i]);
        }
        for columns in buckets.into_iter().filter(|b| !b.is_empty()) {
            refined.push(Fold { columns });
        }
    }
    refined
}

/// The sketched unionability matrix: like [`unionability_matrix`] but the
/// per-column Jaccard overlaps are MinHash estimates, so each pair costs
/// O(columns² · k) instead of O(columns² · values).
pub fn unionability_matrix_sketched(lake: &Lake, k: usize) -> Vec<Vec<f64>> {
    use matelda_embed::MinHashSketch;
    let n = lake.n_tables();
    let sketches: Vec<Vec<MinHashSketch>> = lake
        .tables
        .iter()
        .map(|t| {
            t.columns
                .iter()
                .map(|c| MinHashSketch::of(c.values.iter().map(|v| v.to_lowercase()), k))
                .collect()
        })
        .collect();
    let direction = |a: usize, b: usize| -> f64 {
        if sketches[a].is_empty() || sketches[b].is_empty() {
            return 0.0;
        }
        let total: f64 = sketches[a]
            .iter()
            .map(|ca| sketches[b].iter().map(|cb| ca.jaccard(cb)).fold(0.0f64, f64::max))
            .sum();
        total / sketches[a].len() as f64
    };
    let mut sims = vec![vec![0.0f64; n]; n];
    for a in 0..n {
        sims[a][a] = 1.0;
        for b in (a + 1)..n {
            let s = (direction(a, b) + direction(b, a)) / 2.0;
            sims[a][b] = s;
            sims[b][a] = s;
        }
    }
    sims
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Table};

    /// Two soccer-ish tables, two movie-ish tables, one loner.
    fn mixed_lake() -> Lake {
        let soccer = |name: &str| {
            Table::new(
                name,
                vec![
                    Column::new(
                        "club",
                        ["Liverpool", "Chelsea", "Arsenal", "Barcelona", "Madrid", "Bayern"],
                    ),
                    Column::new(
                        "country",
                        ["England", "England", "England", "Spain", "Spain", "Germany"],
                    ),
                    Column::new("league points", ["82", "74", "71", "88", "86", "79"]),
                ],
            )
        };
        let movies = |name: &str| {
            Table::new(
                name,
                vec![
                    Column::new(
                        "genre",
                        ["Drama", "Comedy", "Thriller", "Horror", "Romance", "Western"],
                    ),
                    Column::new(
                        "director",
                        ["Frank", "Sidney", "Francis", "Steven", "Martin", "Sofia"],
                    ),
                    Column::new("rating", ["9.3", "8.1", "7.7", "6.9", "7.2", "8.4"]),
                ],
            )
        };
        let loner = Table::new(
            "soil",
            vec![
                Column::new("depth", ["5", "10", "20", "40", "80", "100"]),
                Column::new("moisture", ["0.1", "0.2", "0.3", "0.4", "0.5", "0.45"]),
            ],
        );
        Lake::new(vec![
            soccer("clubs_a"),
            movies("films_a"),
            soccer("clubs_b"),
            movies("films_b"),
            loner,
        ])
    }

    fn encoder() -> HashedEncoder {
        HashedEncoder::default()
    }

    #[test]
    fn hdbscan_folding_groups_domains() {
        let lake = mixed_lake();
        let folds = domain_folds(&lake, DomainFolding::Hdbscan, &encoder(), 0);
        // Every table in exactly one fold.
        let mut seen: Vec<usize> = folds.iter().flat_map(Fold::tables).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // The two soccer tables fold together, as do the two movie tables.
        let fold_of =
            |t: usize| folds.iter().position(|f| f.tables().contains(&t)).expect("covered");
        assert_eq!(fold_of(0), fold_of(2), "{folds:?}");
        assert_eq!(fold_of(1), fold_of(3), "{folds:?}");
        assert_ne!(fold_of(0), fold_of(1), "{folds:?}");
    }

    #[test]
    fn edf_puts_everything_in_one_fold() {
        let lake = mixed_lake();
        let folds = domain_folds(&lake, DomainFolding::ExtremeDomainFolding, &encoder(), 0);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].n_columns(), lake.n_columns());
    }

    #[test]
    fn row_sampling_preserves_domain_grouping() {
        // With a large-enough sample the RS variant reproduces the
        // essential property: same-domain tables keep folding together
        // (the paper reports "nearly the same F1" for Matelda-RS).
        let lake = mixed_lake();
        let sampled = domain_folds(&lake, DomainFolding::RowSampling(0.9), &encoder(), 0);
        let mut covered: Vec<usize> = sampled.iter().flat_map(Fold::tables).collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4], "every table in exactly one fold");
        let fold_of =
            |t: usize| sampled.iter().position(|f| f.tables().contains(&t)).expect("covered");
        assert_eq!(fold_of(0), fold_of(2), "{sampled:?}");
        assert_eq!(fold_of(1), fold_of(3), "{sampled:?}");
        assert_ne!(fold_of(0), fold_of(1), "{sampled:?}");
    }

    #[test]
    fn santos_like_also_groups_domains() {
        let lake = mixed_lake();
        let folds = domain_folds(&lake, DomainFolding::SantosLike, &encoder(), 0);
        let fold_of =
            |t: usize| folds.iter().position(|f| f.tables().contains(&t)).expect("covered");
        assert_eq!(fold_of(0), fold_of(2), "{folds:?}");
        assert_eq!(fold_of(1), fold_of(3), "{folds:?}");
    }

    #[test]
    fn sketched_unionability_tracks_exact_and_groups_domains() {
        let lake = mixed_lake();
        let exact = unionability_matrix(&lake);
        let sketched = unionability_matrix_sketched(&lake, 128);
        for a in 0..5 {
            for b in 0..5 {
                assert!(
                    (exact[a][b] - sketched[a][b]).abs() < 0.2,
                    "({a},{b}): exact {} vs sketch {}",
                    exact[a][b],
                    sketched[a][b]
                );
            }
        }
        let folds = domain_folds(&lake, DomainFolding::SantosSketch(128), &encoder(), 0);
        let fold_of =
            |t: usize| folds.iter().position(|f| f.tables().contains(&t)).expect("covered");
        assert_eq!(fold_of(0), fold_of(2), "{folds:?}");
        assert_eq!(fold_of(1), fold_of(3), "{folds:?}");
    }

    #[test]
    fn unionability_is_symmetric_and_reflexive() {
        let lake = mixed_lake();
        let m = unionability_matrix(&lake);
        for a in 0..5 {
            assert_eq!(m[a][a], 1.0);
            for b in 0..5 {
                assert!((m[a][b] - m[b][a]).abs() < 1e-12);
            }
        }
        assert!(m[0][2] > m[0][1], "same-domain unionability should dominate");
    }

    #[test]
    fn syntactic_refinement_splits_by_column_type() {
        let lake = mixed_lake();
        let folds = vec![Fold { columns: vec![(0, 0), (0, 1), (0, 2), (4, 0), (4, 1)] }];
        let refined = refine_syntactic(&lake, folds, 2);
        assert_eq!(refined.len(), 2);
        // Numeric columns ((0,2), (4,0), (4,1)) split from text columns.
        let numeric_fold =
            refined.iter().find(|f| f.columns.contains(&(0, 2))).expect("numeric fold exists");
        assert!(numeric_fold.columns.contains(&(4, 0)), "{refined:?}");
        assert!(!numeric_fold.columns.contains(&(0, 0)), "{refined:?}");
    }

    #[test]
    fn empty_lake_no_folds() {
        assert!(domain_folds(&Lake::default(), DomainFolding::Hdbscan, &encoder(), 0).is_empty());
    }

    #[test]
    fn excluding_tables_folds_like_the_projected_lake() {
        let lake = mixed_lake();
        let enc = encoder();
        let exec = Executor::single();
        let embedded = embed_lake(&lake, DomainFolding::Hdbscan, &enc, 0, &exec);
        let excluded = [0usize, 3];
        let folds = folds_from_embedding_excluding(&lake, &embedded, &excluded);

        // The same clustering on a lake with those tables deleted.
        let projected =
            Lake::new(vec![lake.tables[1].clone(), lake.tables[2].clone(), lake.tables[4].clone()]);
        let proj_embedded = embed_lake(&projected, DomainFolding::Hdbscan, &enc, 0, &exec);
        let proj_folds = folds_from_embedding(&projected, &proj_embedded);

        // Remap the projected indices back to the original lake's.
        let back = [1usize, 2, 4];
        let remapped: Vec<Fold> = proj_folds
            .into_iter()
            .map(|f| Fold { columns: f.columns.into_iter().map(|(t, c)| (back[t], c)).collect() })
            .collect();
        assert_eq!(folds, remapped);
    }

    #[test]
    fn excluding_down_to_one_or_zero_survivors() {
        let lake = mixed_lake();
        let enc = encoder();
        let embedded = embed_lake(&lake, DomainFolding::Hdbscan, &enc, 0, &Executor::single());
        let one = folds_from_embedding_excluding(&lake, &embedded, &[0, 1, 2, 3]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].tables(), vec![4]);
        let none = folds_from_embedding_excluding(&lake, &embedded, &[0, 1, 2, 3, 4]);
        assert!(none.is_empty());
    }

    #[test]
    fn single_table_lake_single_fold() {
        let lake = Lake::new(vec![mixed_lake().tables[0].clone()]);
        let folds = domain_folds(&lake, DomainFolding::Hdbscan, &encoder(), 0);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].tables(), vec![0]);
    }
}
