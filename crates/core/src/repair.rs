//! Repair suggestion — the paper's future-work direction (§6: "the
//! exploration of strategies for data repair within data lakes represents
//! a promising and largely unexplored direction").
//!
//! This module implements a pragmatic first cut: for each *detected*
//! error cell, propose a correction from the evidence the detectors
//! already computed:
//!
//! * **FD-majority repair** — if the cell sits on the RHS of a
//!   near-functional dependency and its LHS group has a clear majority
//!   value, propose that majority (fixes the running example's
//!   `Real Madrid → France` to `Spain`);
//! * **spell repair** — if the cell's words are one edit away from
//!   dictionary words, propose the corrected spelling;
//! * **numeric repair** — if the cell is a far-out numeric outlier whose
//!   magnitude is an obvious scaling artifact (×10^k of the column's
//!   range), propose the rescaled value; otherwise propose the column
//!   median;
//! * **missing-value repair** — propose the most frequent value of the
//!   column (only when that value is clearly dominant).
//!
//! Suggestions carry a confidence and the strategy that produced them, so
//! a reviewer can filter.

use matelda_fd::{mine_approximate, Partition};
use matelda_table::value::{as_f64, is_null};
use matelda_table::{CellId, CellMask, DataType, Lake};
use matelda_text::SpellChecker;
use std::collections::HashMap;

/// Which evidence produced a suggestion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Majority RHS value of the cell's FD group.
    FdMajority,
    /// Dictionary spelling correction.
    Spelling,
    /// Rescaled or median numeric value.
    Numeric,
    /// Most frequent column value for a missing cell.
    MostFrequent,
}

/// One proposed repair.
#[derive(Debug, Clone, PartialEq)]
pub struct Repair {
    /// The cell to repair.
    pub cell: CellId,
    /// Current (erroneous) value.
    pub current: String,
    /// Proposed replacement.
    pub proposed: String,
    /// Evidence class.
    pub strategy: RepairStrategy,
    /// Heuristic confidence in `(0, 1]`.
    pub confidence: f64,
}

/// Proposes repairs for every flagged cell of `predicted`. Cells with no
/// confident suggestion are skipped — precision over coverage.
pub fn suggest_repairs(lake: &Lake, predicted: &CellMask, spell: &SpellChecker) -> Vec<Repair> {
    let mut out = Vec::new();
    for (t, table) in lake.tables.iter().enumerate() {
        // Rules once per table.
        // Tighter rule set than detection uses: repairs need rules that
        // almost hold, not rules that merely correlate.
        let fds = mine_approximate(table, 0.15);
        let partitions: Vec<Partition> =
            (0..table.n_cols()).map(|c| Partition::of_column(table, c)).collect();

        for c in 0..table.n_cols() {
            let values = &table.columns[c].values;
            for r in 0..table.n_rows() {
                let id = CellId::new(t, r, c);
                if !predicted.get(id) {
                    continue;
                }
                let current = values[r].clone();
                let suggestion = repair_cell(table, r, c, &current, &fds, &partitions, spell);
                if let Some((proposed, strategy, confidence)) = suggestion {
                    if proposed != current {
                        out.push(Repair { cell: id, current, proposed, strategy, confidence });
                    }
                }
            }
        }
    }
    out
}

fn repair_cell(
    table: &matelda_table::Table,
    row: usize,
    col: usize,
    current: &str,
    fds: &[matelda_fd::Fd],
    partitions: &[Partition],
    spell: &SpellChecker,
) -> Option<(String, RepairStrategy, f64)> {
    // 1. FD-majority: strongest evidence — look for a rule lhs -> col
    //    whose group containing this row has a clear majority RHS.
    for fd in fds.iter().filter(|fd| fd.rhs == col) {
        let group = partitions[fd.lhs].groups.iter().find(|g| g.contains(&row));
        if let Some(group) = group {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for &r in group {
                if r != row {
                    *counts.entry(table.columns[col].values[r].as_str()).or_insert(0) += 1;
                }
            }
            let total: usize = counts.values().sum();
            if let Some((&majority, &count)) =
                counts.iter().max_by_key(|(v, c)| (**c, std::cmp::Reverse(*v)))
            {
                if total >= 2 && count >= 2 && count * 4 >= total * 3 && majority != current {
                    return Some((
                        majority.to_string(),
                        RepairStrategy::FdMajority,
                        count as f64 / total as f64,
                    ));
                }
            }
        }
    }

    // 2. Missing value: most frequent value of the column, when dominant.
    if is_null(current) {
        let values = &table.columns[col].values;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for v in values.iter().filter(|v| !is_null(v)) {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
        if let Some((&best, &count)) =
            counts.iter().max_by_key(|(v, c)| (**c, std::cmp::Reverse(*v)))
        {
            if count * 3 >= values.len() {
                return Some((
                    best.to_string(),
                    RepairStrategy::MostFrequent,
                    count as f64 / values.len() as f64,
                ));
            }
        }
        return None; // no dominant value: refuse to guess
    }

    // 3. Numeric: rescale obvious magnitude artifacts, else median.
    let column_type = table.columns[col].data_type();
    if matches!(column_type, DataType::Integer | DataType::Float) {
        if let Some(x) = as_f64(current) {
            let mut others: Vec<f64> = table.columns[col]
                .values
                .iter()
                .enumerate()
                .filter(|(r, _)| *r != row)
                .filter_map(|(_, v)| as_f64(v))
                .collect();
            if others.len() >= 4 {
                // total_cmp: a NaN among the parsed values (e.g. a "nan"
                // cell) must never panic repair suggestion.
                others.sort_by(f64::total_cmp);
                let median = others[others.len() / 2];
                let max_abs = others.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                if x.abs() > 10.0 * max_abs.max(1e-9) {
                    // Try the scaling factors the error generator (and real
                    // unit mistakes) produce.
                    for factor in [100.0, 1000.0, -100.0] {
                        let candidate = x / factor;
                        if candidate.abs() <= max_abs * 1.5 && candidate >= others[0] * 0.5 {
                            let rendered = if current.trim().parse::<i64>().is_ok() {
                                format!("{}", candidate.round() as i64)
                            } else {
                                format!("{candidate:.2}")
                            };
                            return Some((rendered, RepairStrategy::Numeric, 0.6));
                        }
                    }
                    let rendered = if matches!(column_type, DataType::Integer) {
                        format!("{}", median.round() as i64)
                    } else {
                        format!("{median:.2}")
                    };
                    return Some((rendered, RepairStrategy::Numeric, 0.3));
                }
            }
        }
    }

    // 4. Spelling: repair one-edit typos word by word.
    let words = matelda_text::words(current);
    if !words.is_empty() && spell.flags_cell(current) {
        let mut repaired = current.to_string();
        let mut fixed_any = false;
        for w in &words {
            if w.chars().count() > 1 && !spell.knows(w) {
                let sugg = spell.suggest(w, 1, 1);
                if let Some(fix) = sugg.first() {
                    repaired = replace_word_case_insensitive(&repaired, w, fix);
                    fixed_any = true;
                }
            }
        }
        if fixed_any && repaired != current {
            return Some((repaired, RepairStrategy::Spelling, 0.5));
        }
    }

    None
}

/// Replaces the first case-insensitive occurrence of `word` in `text`
/// with `replacement`, preserving an initial capital.
fn replace_word_case_insensitive(text: &str, word: &str, replacement: &str) -> String {
    let lower = text.to_lowercase();
    if let Some(pos) = lower.find(word) {
        let original = &text[pos..pos + word.len()];
        let adjusted = if original.chars().next().is_some_and(char::is_uppercase) {
            let mut chars = replacement.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        } else {
            replacement.to_string()
        };
        format!("{}{}{}", &text[..pos], adjusted, &text[pos + word.len()..])
    } else {
        text.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Table};

    fn spell() -> SpellChecker {
        SpellChecker::english()
    }

    #[test]
    fn fd_majority_fixes_running_example() {
        // Real Madrid appears four times; one says France. The table is
        // large enough that club -> country has g3 error 1/8 < 0.15 and
        // survives the repair-grade rule mining.
        let table = Table::new(
            "clubs",
            vec![
                Column::new(
                    "club",
                    ["Real", "Real", "Real", "Real", "City", "City", "City", "City"],
                ),
                Column::new(
                    "country",
                    [
                        "Spain", "Spain", "France", "Spain", "England", "England", "England",
                        "England",
                    ],
                ),
            ],
        );
        let lake = Lake::new(vec![table]);
        let predicted = CellMask::from_cells(&lake, [CellId::new(0, 2, 1)]);
        let repairs = suggest_repairs(&lake, &predicted, &spell());
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].proposed, "Spain");
        assert_eq!(repairs[0].strategy, RepairStrategy::FdMajority);
        assert!(repairs[0].confidence > 0.9);
    }

    #[test]
    fn spelling_repair_fixes_one_edit_typos() {
        let table = Table::new(
            "movies",
            vec![Column::new("genre", ["Drama", "Derama", "Crime", "Drama", "Crime", "Drama"])],
        );
        let lake = Lake::new(vec![table]);
        let predicted = CellMask::from_cells(&lake, [CellId::new(0, 1, 0)]);
        let repairs = suggest_repairs(&lake, &predicted, &spell());
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].proposed, "Drama");
        assert_eq!(repairs[0].strategy, RepairStrategy::Spelling);
    }

    #[test]
    fn numeric_repair_rescales_magnitude_artifacts() {
        let table =
            Table::new("ages", vec![Column::new("age", ["24", "23", "30", "2800", "31", "26"])]);
        let lake = Lake::new(vec![table]);
        let predicted = CellMask::from_cells(&lake, [CellId::new(0, 3, 0)]);
        let repairs = suggest_repairs(&lake, &predicted, &spell());
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].proposed, "28", "2800 / 100 = 28");
        assert_eq!(repairs[0].strategy, RepairStrategy::Numeric);
    }

    #[test]
    fn missing_value_repair_requires_dominant_value() {
        let dominant = Table::new(
            "t",
            vec![Column::new("status", ["Active", "Active", "Active", "Active", "", "Active"])],
        );
        let lake = Lake::new(vec![dominant]);
        let predicted = CellMask::from_cells(&lake, [CellId::new(0, 4, 0)]);
        let repairs = suggest_repairs(&lake, &predicted, &spell());
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].proposed, "Active");

        // No dominant value -> refuse to guess.
        let scattered =
            Table::new("t", vec![Column::new("name", ["Ann", "Bob", "Cid", "Dee", "", "Eve"])]);
        let lake = Lake::new(vec![scattered]);
        let predicted = CellMask::from_cells(&lake, [CellId::new(0, 4, 0)]);
        assert!(suggest_repairs(&lake, &predicted, &spell()).is_empty());
    }

    #[test]
    fn unflagged_cells_are_never_touched() {
        let table = Table::new("t", vec![Column::new("v", ["Derama", "Drama", "Drama"])]);
        let lake = Lake::new(vec![table]);
        let predicted = CellMask::empty(&lake);
        assert!(suggest_repairs(&lake, &predicted, &spell()).is_empty());
    }

    #[test]
    fn capitalization_preserved_in_word_replacement() {
        assert_eq!(replace_word_case_insensitive("Derama time", "derama", "drama"), "Drama time");
        assert_eq!(replace_word_case_insensitive("crime derama", "derama", "drama"), "crime drama");
    }
}
