//! # matelda-lakegen
//!
//! Synthetic data-lake generators shaped like the paper's benchmarks
//! (Table 1). The real corpora (Quintet, REIN, data.gov crawls, the WDC
//! web-table corpus, GitTables) are not redistributable here, so each
//! generator reproduces the *shape* that drives the experiments — table
//! counts, schema diversity, domain overlap across tables, error rates and
//! error-type mixes — at laptop scale (row counts reduced ~50-100×; see
//! DESIGN.md's substitution table).
//!
//! Design invariants the experiments rely on:
//!
//! * clean values are drawn from the embedded dictionary vocabularies, so
//!   the typo detector is quiet on clean data and fires on injected typos
//!   (as Aspell does on the paper's corpora);
//! * every domain template carries real functional dependencies
//!   (entity → attribute maps), so FD-violation injection and detection
//!   have something to work with;
//! * several templates share domains (e.g. two soccer tables, two movie
//!   tables), giving domain-based folding its reason to exist;
//! * everything is deterministic given the seed.

pub mod build;
pub mod dgov;
pub mod domains;
pub mod gittables;
pub mod quintet;
pub mod rein;
pub mod scale;
pub mod wdc;

pub use build::GeneratedLake;
pub use dgov::DGovLake;
pub use gittables::GitTablesLake;
pub use quintet::QuintetLake;
pub use rein::ReinLake;
pub use scale::{ScaleLake, ScaleLakeOnDisk, ScaleTier};
pub use wdc::WdcLake;
