//! The WDC-shaped lake: 100 English relational web tables, 3–10 columns,
//! ≥ 21 rows (the paper's pre-filter), mixed domains, no published ground
//! truth — we *do* keep ground truth (we generated the errors) so the
//! Table 2 harness can grade the 100-cell evaluation samples exactly the
//! way the paper graded them by hand.

use crate::build::{assemble, GeneratedLake};
use crate::domains::ALL_DOMAINS;
use matelda_errorgen::{ErrorSpec, ErrorType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters for the WDC-shaped lake.
#[derive(Debug, Clone)]
pub struct WdcLake {
    /// Number of web tables (paper: 100).
    pub n_tables: usize,
    /// Row count range; the paper filtered to ≥ 21 rows.
    pub rows: (usize, usize),
    /// Cell error rate. Web tables are moderately dirty; 8% keeps the
    /// manual-sample statistics of Table 2 meaningful.
    pub error_rate: f64,
}

impl Default for WdcLake {
    fn default() -> Self {
        Self { n_tables: 100, rows: (21, 45), error_rate: 0.08 }
    }
}

impl WdcLake {
    /// Generates the lake deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::with_capacity(self.n_tables);
        for i in 0..self.n_tables {
            // Web tables are domain-scattered and entity-heavy: half the
            // tables come from the proper-noun-rich templates (players,
            // movies, articles, beers, hospitals, commerce, music).
            let ood_heavy = [0usize, 2, 3, 6, 7, 8, 15, 21, 22];
            let spec = if rng.random_bool(0.5) {
                &ALL_DOMAINS[ood_heavy[rng.random_range(0..ood_heavy.len())]]
            } else {
                &ALL_DOMAINS[rng.random_range(0..ALL_DOMAINS.len())]
            };
            let n_rows = rng.random_range(self.rows.0..=self.rows.1);
            let mut t = spec.generate(&format!("wdc_{i}_{}", spec.name), n_rows, &mut rng);
            // The paper keeps 3–10 column tables; occasionally narrow.
            while t.n_cols() > 3 && rng.random_bool(0.25) {
                t.columns.pop();
            }
            tables.push(t);
        }
        // Web-table dirt is dominated by scraping artifacts (missing
        // values, formatting damage) and wrong-entity cells; genuine
        // misspellings are rare — the paper measures ASPELL at 7% recall
        // on WDC. Repeating a type in the list gives it a proportionally
        // larger share of the evenly split quota.
        let types = vec![
            ErrorType::MissingValue,
            ErrorType::Formatting,
            ErrorType::FdViolation,
            ErrorType::MissingValue,
            ErrorType::Formatting,
            ErrorType::FdViolation,
            ErrorType::Typo,
        ];
        let specs: Vec<ErrorSpec> = (0..self.n_tables)
            .map(|i| ErrorSpec {
                rate: self.error_rate,
                types: types.clone(),
                seed: seed ^ (0x57DC + i as u64),
            })
            .collect();
        assemble(tables, &specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_web_table_filters() {
        let cfg = WdcLake { n_tables: 30, ..WdcLake::default() };
        let lake = cfg.generate(9);
        assert_eq!(lake.dirty.n_tables(), 30);
        for t in &lake.dirty.tables {
            assert!(t.n_rows() >= 21, "table {} too short", t.name);
            assert!((3..=10).contains(&t.n_cols()), "table {} width {}", t.name, t.n_cols());
        }
    }

    #[test]
    fn moderate_error_rate() {
        let cfg = WdcLake { n_tables: 20, ..WdcLake::default() };
        let lake = cfg.generate(13);
        let rate = lake.error_rate();
        assert!((0.05..=0.12).contains(&rate), "rate {rate}");
    }
}
