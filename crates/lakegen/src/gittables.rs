//! The GitTables-shaped lake: many small CSV-in-repository tables (the
//! paper samples 1000 of the one-million-table corpus; average ~126 rows
//! per table, scaled down here). Used for the Figure 9 scalability sweep
//! (100–1000 tables).

use crate::build::{assemble, GeneratedLake};
use crate::domains::ALL_DOMAINS;
use matelda_errorgen::{ErrorSpec, ErrorType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters for the GitTables-shaped lake.
#[derive(Debug, Clone)]
pub struct GitTablesLake {
    /// Number of tables (paper sweeps 100–1000).
    pub n_tables: usize,
    /// Row count range; GitTables are small (paper avg 126 rows,
    /// scaled to laptop size).
    pub rows: (usize, usize),
    /// Cell error rate (unknown in the paper; a mixed 10% default).
    pub error_rate: f64,
}

impl Default for GitTablesLake {
    fn default() -> Self {
        Self { n_tables: 1000, rows: (8, 25), error_rate: 0.10 }
    }
}

impl GitTablesLake {
    /// A copy limited to `n` tables.
    pub fn with_n_tables(mut self, n: usize) -> Self {
        self.n_tables = n;
        self
    }

    /// Generates the lake deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::with_capacity(self.n_tables);
        for i in 0..self.n_tables {
            let spec = &ALL_DOMAINS[rng.random_range(0..ALL_DOMAINS.len())];
            let n_rows = rng.random_range(self.rows.0..=self.rows.1);
            let mut t = spec.generate(&format!("git_{i}_{}", spec.name), n_rows, &mut rng);
            // Repository CSVs are often narrow fragments.
            while t.n_cols() > 3 && rng.random_bool(0.35) {
                t.columns.pop();
            }
            tables.push(t);
        }
        let types = vec![
            ErrorType::MissingValue,
            ErrorType::Typo,
            ErrorType::Formatting,
            ErrorType::NumericOutlier,
            ErrorType::FdViolation,
        ];
        let specs: Vec<ErrorSpec> = (0..self.n_tables)
            .map(|i| ErrorSpec {
                rate: self.error_rate,
                types: types.clone(),
                seed: seed ^ (0x617 + i as u64),
            })
            .collect();
        assemble(tables, &specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_small_and_numerous() {
        let lake = GitTablesLake::default().with_n_tables(50).generate(3);
        assert_eq!(lake.dirty.n_tables(), 50);
        let avg_rows = lake.dirty.n_rows() as f64 / 50.0;
        assert!((8.0..=25.0).contains(&avg_rows));
    }

    #[test]
    fn sweep_sizes_nest_deterministically() {
        // Generating with the same seed and truncating must equal the
        // smaller generation — Fig. 9 sweeps rely on this.
        let big = GitTablesLake::default().with_n_tables(30).generate(4);
        let small = GitTablesLake::default().with_n_tables(10).generate(4);
        for i in 0..10 {
            assert_eq!(big.dirty.tables[i], small.dirty.tables[i]);
        }
    }
}
