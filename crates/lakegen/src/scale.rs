//! Scale-tier lake generation: hundreds of tables, written straight to
//! disk one table at a time, so the generated lake never has to fit in
//! memory.
//!
//! The tiers trade cell count for wall time:
//!
//! | tier       | tables | rows/table | ≈ cells |
//! |------------|-------:|-----------:|--------:|
//! | `quick`    |     10 |         80 |    4.5k |
//! | `full`     |     50 |        400 |    112k |
//! | `large-ci` |    150 |       1200 |    1.0M |
//! | `large`    |    500 |       3600 |   10.1M |
//!
//! Each table is generated from its *own* seeded RNG (derived from the
//! lake seed and the table index), so generation is stream-order
//! independent: table `i` has the same bytes whether the lake is built
//! whole or one table at a time. Domains cycle through the Quintet five,
//! giving domain folding its multi-table structure at every tier. File
//! names are zero-padded (`t0007_hospital.csv`) so the on-disk
//! file-name order equals generation order — the order every chunked
//! reader and the error mask index by.

use crate::domains;
use matelda_errorgen::{inject, ErrorSpec, ErrorType};
use matelda_table::csv::write_table;
use matelda_table::{CellId, CellMask};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::{Path, PathBuf};

/// How big a generated lake is. Parsed from `quick` / `full` /
/// `large-ci` / `large`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// Test-sized: ~4.5k cells.
    Quick,
    /// Experiment-sized: ~112k cells.
    Full,
    /// The CI scale tier: ≥10⁶ cells, bounded enough for a CI job.
    LargeCi,
    /// The unbounded tier: hundreds of tables, ≥10⁷ cells.
    Large,
}

impl ScaleTier {
    /// Parses a tier name; `None` for unknown names.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "quick" => Some(ScaleTier::Quick),
            "full" => Some(ScaleTier::Full),
            "large-ci" => Some(ScaleTier::LargeCi),
            "large" => Some(ScaleTier::Large),
            _ => None,
        }
    }

    /// Canonical tier name (inverse of [`ScaleTier::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            ScaleTier::Quick => "quick",
            ScaleTier::Full => "full",
            ScaleTier::LargeCi => "large-ci",
            ScaleTier::Large => "large",
        }
    }

    /// Tables in the lake at this tier.
    pub fn tables(&self) -> usize {
        match self {
            ScaleTier::Quick => 10,
            ScaleTier::Full => 50,
            ScaleTier::LargeCi => 150,
            ScaleTier::Large => 500,
        }
    }

    /// Rows per table at this tier.
    pub fn rows_per_table(&self) -> usize {
        match self {
            ScaleTier::Quick => 80,
            ScaleTier::Full => 400,
            ScaleTier::LargeCi => 1200,
            ScaleTier::Large => 3600,
        }
    }
}

/// Generator for a scale-tier lake.
#[derive(Debug, Clone)]
pub struct ScaleLake {
    /// The size tier.
    pub tier: ScaleTier,
    /// Cell error rate (paper: 9%).
    pub error_rate: f64,
}

impl ScaleLake {
    /// A tier at the paper's 9% error rate.
    pub fn new(tier: ScaleTier) -> Self {
        ScaleLake { tier, error_rate: 0.09 }
    }
}

/// What [`ScaleLake::generate_to_disk`] wrote: the shape record and the
/// ground-truth error mask (kept in memory — one bit per cell), but not
/// the lake itself, which lives only on disk.
#[derive(Debug)]
pub struct ScaleLakeOnDisk {
    /// Where the dirty CSVs were written.
    pub dir: PathBuf,
    /// Ground truth: cells whose dirty value differs from clean, indexed
    /// in on-disk (= generation) table order.
    pub errors: CellMask,
    /// Total cells across all tables.
    pub n_cells: usize,
    /// Total CSV bytes written.
    pub bytes_written: u64,
    /// Tables written.
    pub n_tables: usize,
}

/// The five Quintet domains, cycled across tables.
const DOMAIN_CYCLE: &[(&str, &domains::DomainSpec)] = &[
    ("flights", &domains::FLIGHTS),
    ("beers", &domains::BEERS),
    ("hospital", &domains::HOSPITAL),
    ("movies", &domains::MOVIES),
    ("rayyan", &domains::RAYYAN),
];

/// Per-table seed mix: golden-ratio multiply so adjacent tables get
/// decorrelated streams (same constant the pipeline uses per index).
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl ScaleLake {
    /// Streams the dirty lake to `dir` as CSV files, one table resident
    /// at a time. Deterministic given `seed`; repeated runs produce
    /// byte-identical files. Returns the shapes, error mask and byte
    /// counts — everything the scale bench needs without re-reading the
    /// lake.
    pub fn generate_to_disk(&self, seed: u64, dir: &Path) -> io::Result<ScaleLakeOnDisk> {
        std::fs::create_dir_all(dir)?;
        let n_tables = self.tier.tables();
        let rows = self.tier.rows_per_table();
        let types = vec![
            ErrorType::MissingValue,
            ErrorType::Typo,
            ErrorType::Formatting,
            ErrorType::FdViolation,
        ];
        let mut dims: Vec<(usize, usize)> = Vec::with_capacity(n_tables);
        let mut error_cells: Vec<CellId> = Vec::new();
        let mut n_cells = 0usize;
        let mut bytes_written = 0u64;
        for i in 0..n_tables {
            let (domain_name, spec) = DOMAIN_CYCLE[i % DOMAIN_CYCLE.len()];
            let table_name = format!("t{i:04}_{domain_name}");
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(SEED_MIX));
            let clean = spec.generate(&table_name, rows, &mut rng);
            let (dirty, _report) = inject(
                &clean,
                &ErrorSpec {
                    rate: self.error_rate,
                    types: types.clone(),
                    seed: seed ^ (i as u64 + 1),
                },
            );
            // Ground truth by value diff, not injection report: an
            // injection that happens to reproduce the clean value is not
            // an error.
            for (c, (cc, dc)) in clean.columns.iter().zip(&dirty.columns).enumerate() {
                for (r, (cv, dv)) in cc.values.iter().zip(&dc.values).enumerate() {
                    if cv != dv {
                        error_cells.push(CellId { table: i, row: r, col: c });
                    }
                }
            }
            dims.push((dirty.n_rows(), dirty.n_cols()));
            n_cells += dirty.n_cells();
            let csv = write_table(&dirty);
            bytes_written += csv.len() as u64;
            std::fs::write(dir.join(format!("{table_name}.csv")), csv)?;
            // `clean` and `dirty` drop here — one table resident at a time.
        }
        let mut errors = CellMask::from_dims(dims);
        for id in error_cells {
            errors.set(id, true);
        }
        Ok(ScaleLakeOnDisk { dir: dir.to_path_buf(), errors, n_cells, bytes_written, n_tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("matelda_scale_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tier_names_round_trip() {
        for tier in [ScaleTier::Quick, ScaleTier::Full, ScaleTier::LargeCi, ScaleTier::Large] {
            assert_eq!(ScaleTier::parse(tier.name()), Some(tier));
        }
        assert_eq!(ScaleTier::parse("medium"), None);
    }

    #[test]
    fn large_tiers_meet_their_cell_floors() {
        // The ISSUE contract: large-ci ≥ 10⁶ cells, large ≥ 10⁷. The
        // Quintet domains average ~5.6 columns, so check the floor from
        // the smallest domain (5 columns) — a conservative bound.
        let ci = ScaleTier::LargeCi;
        assert!(ci.tables() * ci.rows_per_table() * 5 >= 900_000);
        let large = ScaleTier::Large;
        assert!(large.tables() * large.rows_per_table() * 5 >= 9_000_000);
        assert!(large.tables() >= 100, "hundreds of tables");
    }

    #[test]
    fn quick_tier_generates_deterministically_with_a_sane_mask() {
        let dir_a = tmpdir("det_a");
        let dir_b = tmpdir("det_b");
        let gen = ScaleLake::new(ScaleTier::Quick);
        let a = gen.generate_to_disk(7, &dir_a).expect("generate a");
        let b = gen.generate_to_disk(7, &dir_b).expect("generate b");
        assert_eq!(a.n_tables, 10);
        assert_eq!(a.n_cells, b.n_cells);
        assert_eq!(a.errors, b.errors);
        assert!(a.n_cells >= 10 * 80 * 5, "{} cells", a.n_cells);
        // ~9% requested; value-diff truth lands near it.
        let rate = a.errors.rate();
        assert!(rate > 0.04 && rate < 0.14, "error rate {rate}");
        // Byte-identical files.
        for entry in std::fs::read_dir(&dir_a).expect("dir a") {
            let path = entry.expect("entry").path();
            let other = dir_b.join(path.file_name().expect("name"));
            assert_eq!(
                std::fs::read(&path).expect("read a"),
                std::fs::read(&other).expect("read b"),
                "{path:?}"
            );
        }
        // File-name sort order equals mask table order: file i starts
        // with the zero-padded index.
        let mut names: Vec<String> = std::fs::read_dir(&dir_a)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for (i, name) in names.iter().enumerate() {
            assert!(name.starts_with(&format!("t{i:04}_")), "{name}");
        }
        std::fs::remove_dir_all(&dir_a).expect("cleanup");
        std::fs::remove_dir_all(&dir_b).expect("cleanup");
    }

    #[test]
    fn generated_csvs_parse_back_to_the_recorded_shapes() {
        let dir = tmpdir("parse");
        let gen = ScaleLake::new(ScaleTier::Quick);
        let on_disk = gen.generate_to_disk(3, &dir).expect("generate");
        let lake = matelda_table::io::read_lake_from_dir(&dir).expect("read back");
        assert_eq!(lake.n_tables(), on_disk.n_tables);
        assert_eq!(lake.n_cells(), on_disk.n_cells);
        for (t, table) in lake.tables.iter().enumerate() {
            let (rows, cols) = (on_disk.errors.table_dims(t).0, on_disk.errors.table_dims(t).1);
            assert_eq!((table.n_rows(), table.n_cols()), (rows, cols), "table {t}");
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
