//! The DGov-X family: larger lakes of open-government-style tables with
//! controlled error-type mixes (paper Table 1 rows 3–8):
//!
//! | preset | tables | error rate | types |
//! |--------|--------|-----------|-------|
//! | DGov-NTR  | 143  | 16% | NO, FI & T, VAD |
//! | DGov-NT   | 159  | 15% | NO, FI & T |
//! | DGov-NO   | 96   | 2%  | NO |
//! | DGov-Typo | 96   | 9%  | FI & T |
//! | DGov-RV   | 96   | 8%  | VAD |
//! | DGov-1K   | 1173 | ~10% | mixed (paper: unknown) |

use crate::build::{assemble, GeneratedLake};
use crate::domains::ALL_DOMAINS;
use matelda_errorgen::{ErrorSpec, ErrorType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters for DGov-shaped lakes.
#[derive(Debug, Clone)]
pub struct DGovLake {
    /// Number of tables.
    pub n_tables: usize,
    /// Row count range per table (inclusive).
    pub rows: (usize, usize),
    /// Cell error rate.
    pub error_rate: f64,
    /// Error types to inject.
    pub types: Vec<ErrorType>,
}

impl DGovLake {
    /// DGov-NTR: numeric outliers, typos & formatting, rule violations.
    pub fn ntr() -> Self {
        Self {
            n_tables: 143,
            rows: (25, 55),
            error_rate: 0.16,
            types: vec![
                ErrorType::NumericOutlier,
                ErrorType::Formatting,
                ErrorType::Typo,
                ErrorType::FdViolation,
            ],
        }
    }

    /// DGov-NT: numeric outliers, typos & formatting.
    pub fn nt() -> Self {
        Self {
            n_tables: 159,
            rows: (25, 55),
            error_rate: 0.15,
            types: vec![ErrorType::NumericOutlier, ErrorType::Formatting, ErrorType::Typo],
        }
    }

    /// DGov-NO: numeric outliers only, 2%.
    pub fn no() -> Self {
        Self {
            n_tables: 96,
            rows: (25, 55),
            error_rate: 0.02,
            types: vec![ErrorType::NumericOutlier],
        }
    }

    /// DGov-Typo: formatting & typos only, 9%.
    pub fn typo() -> Self {
        Self {
            n_tables: 96,
            rows: (25, 55),
            error_rate: 0.09,
            types: vec![ErrorType::Formatting, ErrorType::Typo],
        }
    }

    /// DGov-RV: rule violations only. The configured rate is higher than
    /// the paper's 8% because tables without injectable FDs absorb no
    /// quota — 0.14 realizes ≈8% of cells across the lake.
    pub fn rv() -> Self {
        Self { n_tables: 96, rows: (25, 55), error_rate: 0.14, types: vec![ErrorType::FdViolation] }
    }

    /// DGov-1K: the 1173-table scalability lake. The paper reports ~3.1k
    /// rows per table; scaled down proportionally.
    pub fn dgov_1k() -> Self {
        Self {
            n_tables: 1173,
            rows: (30, 60),
            error_rate: 0.10,
            types: vec![
                ErrorType::MissingValue,
                ErrorType::Typo,
                ErrorType::Formatting,
                ErrorType::NumericOutlier,
                ErrorType::FdViolation,
            ],
        }
    }

    /// A copy limited to the first `n` tables (the paper's Fig. 9 sweeps
    /// DGov-1K subsets of 250–1173 tables).
    pub fn with_n_tables(mut self, n: usize) -> Self {
        self.n_tables = n;
        self
    }

    /// Generates the lake deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tables = Vec::with_capacity(self.n_tables);
        for i in 0..self.n_tables {
            let spec = &ALL_DOMAINS[i % ALL_DOMAINS.len()];
            let n_rows = rng.random_range(self.rows.0..=self.rows.1);
            let mut t = spec.generate(&format!("{}_{i}", spec.name), n_rows, &mut rng);
            // Schema variation: sometimes drop the last column, so tables
            // from the same template are not schema-identical (data.gov
            // tables of one topic rarely are).
            if t.n_cols() > 4 && rng.random_bool(0.3) {
                t.columns.pop();
            }
            tables.push(t);
        }
        let specs: Vec<ErrorSpec> = (0..self.n_tables)
            .map(|i| ErrorSpec {
                rate: self.error_rate,
                types: self.types.clone(),
                seed: seed ^ (0xD60F + i as u64),
            })
            .collect();
        assemble(tables, &specs)
    }

    /// Total rows this configuration will generate in expectation — used
    /// by scalability harnesses for reporting.
    pub fn expected_rows(&self) -> usize {
        self.n_tables * (self.rows.0 + self.rows.1) / 2
    }
}

/// Convenience: sub-lake of `lake` restricted to its first `n` tables
/// (with masks re-derived), for table-count sweeps.
pub fn truncate_lake(lake: &GeneratedLake, n: usize) -> GeneratedLake {
    let idx: Vec<usize> = (0..n.min(lake.dirty.n_tables())).collect();
    let dirty = lake.dirty.project(&idx);
    let clean = lake.clean.project(&idx);
    let errors = matelda_table::diff_lakes(&dirty, &clean);
    let typed_errors = lake
        .typed_errors
        .iter()
        .map(|(name, mask)| {
            let mut m = matelda_table::CellMask::empty(&dirty);
            for id in mask.iter_set() {
                if id.table < idx.len() {
                    m.set(id, true);
                }
            }
            (name.clone(), m)
        })
        .collect();
    GeneratedLake { dirty, clean, errors, typed_errors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntr_shape() {
        let mut cfg = DGovLake::ntr();
        cfg.n_tables = 20; // keep the unit test fast
        let lake = cfg.generate(5);
        assert_eq!(lake.dirty.n_tables(), 20);
        let rate = lake.error_rate();
        assert!((0.12..=0.20).contains(&rate), "rate {rate}");
        let names: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"NO") && names.contains(&"T") && names.contains(&"VAD"));
        assert!(!names.contains(&"MV"));
    }

    #[test]
    fn single_type_presets_inject_only_that_type() {
        let mut cfg = DGovLake::no();
        cfg.n_tables = 10;
        let lake = cfg.generate(6);
        let names: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["NO"]);
        assert!(lake.error_rate() > 0.005 && lake.error_rate() < 0.04, "{}", lake.error_rate());

        let mut cfg = DGovLake::rv();
        cfg.n_tables = 10;
        let lake = cfg.generate(6);
        let names: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["VAD"]);
    }

    #[test]
    fn schema_variation_produces_differing_widths() {
        let mut cfg = DGovLake::ntr();
        cfg.n_tables = 46; // two full domain cycles
        let lake = cfg.generate(8);
        let widths: std::collections::HashSet<(String, usize)> = lake
            .dirty
            .tables
            .iter()
            .map(|t| (t.name.split('_').next().unwrap_or("").to_string(), t.n_cols()))
            .collect();
        // At least one domain appears with two different widths.
        let domains: std::collections::HashSet<&String> = widths.iter().map(|(d, _)| d).collect();
        assert!(widths.len() > domains.len(), "no schema variation: {widths:?}");
    }

    #[test]
    fn truncation_preserves_alignment() {
        let mut cfg = DGovLake::typo();
        cfg.n_tables = 12;
        let lake = cfg.generate(2);
        let sub = truncate_lake(&lake, 5);
        assert_eq!(sub.dirty.n_tables(), 5);
        assert_eq!(sub.errors.count(), matelda_table::diff_lakes(&sub.dirty, &sub.clean).count());
        for (_, m) in &sub.typed_errors {
            assert_eq!(m.and(&sub.errors).count(), m.count());
        }
    }
}
