//! The Quintet-shaped lake: five tables from five distinct domains
//! ("Flights", "Beers", "Hospital", "Movies", "Rayyan"), ~9% cell errors
//! of types MV, T, FI, VAD (paper Table 1 row 1).

use crate::build::{assemble, GeneratedLake};
use crate::domains;
use matelda_errorgen::{ErrorSpec, ErrorType};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator parameters for the Quintet-shaped lake.
#[derive(Debug, Clone)]
pub struct QuintetLake {
    /// Rows per table (the paper's Quintet averages ~8k rows per table;
    /// scaled to laptop size — see DESIGN.md).
    pub rows_per_table: usize,
    /// Cell error rate (paper: 9%).
    pub error_rate: f64,
}

impl Default for QuintetLake {
    fn default() -> Self {
        Self { rows_per_table: 120, error_rate: 0.09 }
    }
}

impl QuintetLake {
    /// Generates the lake deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(seed);
        let tables = vec![
            domains::FLIGHTS.generate("flights", self.rows_per_table, &mut rng),
            domains::BEERS.generate("beers", self.rows_per_table, &mut rng),
            domains::HOSPITAL.generate("hospital", self.rows_per_table, &mut rng),
            domains::MOVIES.generate("movies", self.rows_per_table, &mut rng),
            domains::RAYYAN.generate("rayyan", self.rows_per_table, &mut rng),
        ];
        let types = vec![
            ErrorType::MissingValue,
            ErrorType::Typo,
            ErrorType::Formatting,
            ErrorType::FdViolation,
        ];
        let specs: Vec<ErrorSpec> = (0..tables.len())
            .map(|i| ErrorSpec {
                rate: self.error_rate,
                types: types.clone(),
                seed: seed ^ (i as u64 + 1),
            })
            .collect();
        assemble(tables, &specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_shape() {
        let lake = QuintetLake::default().generate(7);
        assert_eq!(lake.dirty.n_tables(), 5);
        let rate = lake.error_rate();
        assert!((0.06..=0.12).contains(&rate), "error rate {rate} should be ~9%");
        // All four error types present.
        let names: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["MV", "T", "FI", "VAD"]);
    }

    #[test]
    fn deterministic() {
        let a = QuintetLake::default().generate(3);
        let b = QuintetLake::default().generate(3);
        assert_eq!(a.dirty, b.dirty);
        let c = QuintetLake::default().generate(4);
        assert_ne!(a.dirty, c.dirty);
    }
}
