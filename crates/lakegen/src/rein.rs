//! The REIN-shaped lake: eight tables ("Adult", "Breast Cancer", "Smart
//! Factory", "Nasa", "Bikes", "Soil Moisture", "Mercedes", "HAR"), ~13%
//! cell errors of types MV, T, VAD, NO (paper Table 1 row 2).

use crate::build::{assemble, GeneratedLake};
use crate::domains;
use matelda_errorgen::{ErrorSpec, ErrorType};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator parameters for the REIN-shaped lake.
#[derive(Debug, Clone)]
pub struct ReinLake {
    /// Rows per table.
    pub rows_per_table: usize,
    /// Cell error rate (paper: 13%).
    pub error_rate: f64,
}

impl Default for ReinLake {
    fn default() -> Self {
        Self { rows_per_table: 130, error_rate: 0.13 }
    }
}

impl ReinLake {
    /// Generates the lake deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.rows_per_table;
        let tables = vec![
            domains::ADULT.generate("adult", n, &mut rng),
            domains::BREAST_CANCER.generate("breast_cancer", n, &mut rng),
            domains::SMART_FACTORY.generate("smart_factory", n, &mut rng),
            domains::NASA.generate("nasa", n, &mut rng),
            domains::BIKES.generate("bikes", n, &mut rng),
            domains::SOIL.generate("soil_moisture", n, &mut rng),
            domains::MERCEDES.generate("mercedes", n, &mut rng),
            domains::HAR.generate("har", n, &mut rng),
        ];
        // REIN's corpus is numeric-heavy: most of BART's typo budget there
        // lands on digit-bearing values that no dictionary sees (the paper
        // measures ASPELL at 99% precision but 1% recall on REIN).
        // Repeating types gives MV/VAD/NO a double share, leaving word
        // typos rare.
        let types = vec![
            ErrorType::MissingValue,
            ErrorType::FdViolation,
            ErrorType::NumericOutlier,
            ErrorType::MissingValue,
            ErrorType::FdViolation,
            ErrorType::NumericOutlier,
            ErrorType::Typo,
        ];
        let specs: Vec<ErrorSpec> = (0..tables.len())
            .map(|i| ErrorSpec {
                rate: self.error_rate,
                types: types.clone(),
                seed: seed ^ (0x9E37 + i as u64),
            })
            .collect();
        assemble(tables, &specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_shape() {
        let lake = ReinLake::default().generate(11);
        assert_eq!(lake.dirty.n_tables(), 8);
        let rate = lake.error_rate();
        assert!((0.10..=0.16).contains(&rate), "error rate {rate} should be ~13%");
        let names: Vec<&str> = lake.typed_errors.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["MV", "T", "NO", "VAD"]);
    }
}
