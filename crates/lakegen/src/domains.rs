//! Domain templates: clean-table generators with real FD structure and
//! dictionary-covered vocabulary.

use matelda_table::{Column, Table};
use rand::rngs::StdRng;
use rand::Rng;

/// A column generator within a [`DomainSpec`].
#[derive(Debug, Clone, Copy)]
pub enum ColumnSpec {
    /// Sequential row identifier with a prefix (`"R-17"`). The paper leans
    /// on first columns being keys ("every table has a first column …
    /// typically the key of the table").
    Id {
        /// Identifier prefix.
        prefix: &'static str,
    },
    /// A key-ish entity column: each row picks an entity index into
    /// `pool`; the index also drives any [`ColumnSpec::Determined`]
    /// columns, creating exact FDs entity → attribute.
    Entity {
        /// Column name.
        name: &'static str,
        /// Entity vocabulary.
        pool: &'static [&'static str],
    },
    /// Functionally determined by the row's entity: `map[entity % len]`.
    Determined {
        /// Column name.
        name: &'static str,
        /// Aligned attribute vocabulary.
        map: &'static [&'static str],
    },
    /// Independent categorical value.
    Cat {
        /// Column name.
        name: &'static str,
        /// Vocabulary.
        pool: &'static [&'static str],
    },
    /// Numeric column, uniform in `[min, max]`.
    Num {
        /// Column name.
        name: &'static str,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
        /// Render as integer.
        integer: bool,
    },
    /// Date column in `YYYY-MM-DD`.
    Date {
        /// Column name.
        name: &'static str,
        /// First year (inclusive).
        start_year: i32,
        /// Last year (inclusive).
        end_year: i32,
    },
    /// Proper-noun column whose vocabulary is deliberately *outside* the
    /// embedded dictionary (player surnames, brand names). Real corpora
    /// are full of such values — they are what keeps a spell checker's
    /// precision low (the paper measures ASPELL at 2% precision on
    /// Quintet) and they make the typo detector non-trivial.
    Proper {
        /// Column name.
        name: &'static str,
        /// Out-of-dictionary vocabulary.
        pool: &'static [&'static str],
    },
}

/// A table-shaped domain: a name and an ordered list of column specs.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Domain name (used for table naming and tests).
    pub name: &'static str,
    /// The columns, in schema order.
    pub columns: &'static [ColumnSpec],
}

impl DomainSpec {
    /// Generates a clean table of `n_rows` rows.
    pub fn generate(&self, table_name: &str, n_rows: usize, rng: &mut StdRng) -> Table {
        // One entity index per row drives all Entity/Determined columns,
        // giving exact FDs. Drawing from a pool much smaller than n_rows
        // guarantees duplicated LHS values (injectable FDs).
        let entity_pool_len = self
            .columns
            .iter()
            .find_map(|c| match c {
                ColumnSpec::Entity { pool, .. } => Some(pool.len()),
                _ => None,
            })
            .unwrap_or(1);
        let entities: Vec<usize> =
            (0..n_rows).map(|_| rng.random_range(0..entity_pool_len)).collect();

        let columns = self
            .columns
            .iter()
            .map(|spec| match spec {
                ColumnSpec::Id { prefix } => Column::new(
                    format!("{prefix}_id"),
                    (0..n_rows).map(|i| format!("{prefix}-{i}")),
                ),
                ColumnSpec::Entity { name, pool } => {
                    Column::new(*name, entities.iter().map(|&e| pool[e].to_string()))
                }
                ColumnSpec::Determined { name, map } => {
                    Column::new(*name, entities.iter().map(|&e| map[e % map.len()].to_string()))
                }
                ColumnSpec::Cat { name, pool } => Column::new(
                    *name,
                    (0..n_rows).map(|_| pool[rng.random_range(0..pool.len())].to_string()),
                ),
                ColumnSpec::Num { name, min, max, integer } => Column::new(
                    *name,
                    (0..n_rows).map(|_| {
                        let v = rng.random_range(*min..=*max);
                        if *integer {
                            format!("{}", v.round() as i64)
                        } else {
                            format!("{v:.2}")
                        }
                    }),
                ),
                ColumnSpec::Date { name, start_year, end_year } => Column::new(
                    *name,
                    (0..n_rows).map(|_| {
                        let y = rng.random_range(*start_year..=*end_year);
                        let m = rng.random_range(1..=12u32);
                        let d = rng.random_range(1..=28u32);
                        format!("{y:04}-{m:02}-{d:02}")
                    }),
                ),
                ColumnSpec::Proper { name, pool } => Column::new(
                    *name,
                    (0..n_rows).map(|_| pool[rng.random_range(0..pool.len())].to_string()),
                ),
            })
            .collect();
        let mut table = Table::new(table_name, columns);

        // Natural missing values: real corpora are not fully populated —
        // every optional column (Num/Date/Cat; never the FD-bearing
        // Entity/Determined pairs or ids) carries ~2% empty cells even
        // when clean. This keeps not-null constraint suggestion (GX/Deequ)
        // honest: the paper observes GX-Oracle near zero because real
        // clean data already contains legitimate blanks.
        for (j, spec) in self.columns.iter().enumerate() {
            let optional = matches!(
                spec,
                ColumnSpec::Num { .. } | ColumnSpec::Date { .. } | ColumnSpec::Cat { .. }
            );
            if optional {
                for r in 0..n_rows {
                    if rng.random_bool(0.02) {
                        *table.cell_mut(r, j) = String::new();
                    }
                }
            }
        }
        table
    }
}

// ---------------------------------------------------------------------
// Vocabularies. Every word below is present in the embedded dictionary
// (matelda-text/src/words_en.txt), keeping clean data spell-clean.
// ---------------------------------------------------------------------

const CITIES: &[&str] = &[
    "Paris",
    "London",
    "Berlin",
    "Madrid",
    "Rome",
    "Lisbon",
    "Amsterdam",
    "Vienna",
    "Warsaw",
    "Prague",
    "Dublin",
    "Athens",
    "Oslo",
    "Helsinki",
    "Stockholm",
    "Copenhagen",
];
const CITY_COUNTRY: &[&str] = &[
    "France",
    "England",
    "Germany",
    "Spain",
    "Italy",
    "Portugal",
    "Netherlands",
    "Austria",
    "Poland",
    "Czechia",
    "Ireland",
    "Greece",
    "Norway",
    "Finland",
    "Sweden",
    "Denmark",
];
const CLUBS: &[&str] = &[
    "Manchester City",
    "Liverpool",
    "Chelsea",
    "Arsenal",
    "Real Madrid",
    "Barcelona",
    "Bayern Munich",
    "Dortmund",
    "Milan",
    "Turin",
    "Porto",
    "Lyon",
    "Marseille",
    "Monaco",
];
const CLUB_COUNTRY: &[&str] = &[
    "England", "England", "England", "England", "Spain", "Spain", "Germany", "Germany", "Italy",
    "Italy", "Portugal", "France", "France", "France",
];
/// Out-of-dictionary player surnames (see [`ColumnSpec::Proper`]).
const PLAYER_SURNAMES: &[&str] = &[
    "Mbappe",
    "Haaland",
    "Szoboszlai",
    "Vinicius",
    "Bellingham",
    "Gyokeres",
    "Osimhen",
    "Kvaratskhelia",
    "Musiala",
    "Wirtz",
    "Odegaard",
    "Gundogan",
    "Kudus",
    "Isak",
    "Hojlund",
    "Zirkzee",
    "Yamal",
    "Doku",
    "Mainoo",
    "Sesko",
];
/// Out-of-dictionary movie titles.
const MOVIE_TITLES: &[&str] = &[
    "Shawshank",
    "Godfather",
    "Inception",
    "Interstellar",
    "Gladiator",
    "Casablanca",
    "Vertigo",
    "Chinatown",
    "Goodfellas",
    "Amadeus",
    "Rashomon",
    "Oldboy",
    "Parasite",
    "Whiplash",
    "Memento",
    "Alien",
];
/// Out-of-dictionary author surnames.
const AUTHOR_NAMES: &[&str] = &[
    "Abedjan",
    "Mahdavi",
    "Rekatsinas",
    "Papotti",
    "Ouzzani",
    "Ilyas",
    "Stonebraker",
    "Neutatz",
    "Khatiwada",
    "Nargesian",
    "Hulsebos",
    "Papenbrock",
    "Esmailoghli",
    "Schelter",
];
const GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Crime",
    "Thriller",
    "Horror",
    "Romance",
    "Adventure",
    "Musical",
    "Fantasy",
    "Western",
    "Mystery",
];
const DIRECTORS: &[&str] = &[
    "Frank",
    "Francis",
    "Sidney",
    "Steven",
    "Martin",
    "Christopher",
    "Peter",
    "Ridley",
    "James",
    "George",
    "Sofia",
    "Kathryn",
];
const STUDIOS: &[&str] =
    &["Paramount", "Universal", "Columbia", "Warner", "Disney", "Fox", "Lionsgate", "Orion"];
const BEER_STYLES: &[&str] =
    &["Pale Ale", "India Pale Ale", "Lager", "Stout", "Porter", "Wheat", "Amber", "Blonde"];
const BREWERIES: &[&str] = &[
    "Ayinger Brewery",
    "Deschutes Brewery",
    "Karbach Brewery",
    "Weihenstephaner",
    "Rochefort Brewery",
    "Unibroue",
    "Tripel Karmeliet",
    "Westvleteren",
];
const AIRLINES: &[&str] =
    &["United", "Delta", "JetBlue", "Southwest", "Lufthansa", "Wizzair", "Ryanair"];
const AIRPORTS: &[&str] = &[
    "Boston", "Chicago", "Denver", "Seattle", "Austin", "Dallas", "Houston", "Phoenix", "Portland",
    "Detroit", "Atlanta", "Miami",
];
const HOSPITAL_NAMES: &[&str] = &[
    "Ascension Mercy",
    "Gundersen Clinic",
    "Sentara General",
    "Intermountain Care",
    "Providence Regional",
    "Geisinger Clinic",
    "Montefiore Hospital",
    "Ochsner Medical",
];
const CONDITIONS: &[&str] = &[
    "Heart Failure",
    "Pneumonia",
    "Heart Attack",
    "Surgical Care",
    "Asthma",
    "Diabetes",
    "Stroke",
    "Infection",
];
const STATES: &[&str] = &[
    "Alabama", "Alaska", "Arizona", "Colorado", "Georgia", "Kansas", "Montana", "Nevada", "Oregon",
    "Texas", "Utah", "Vermont",
];
const STATE_CODES: &[&str] =
    &["AL", "AK", "AZ", "CO", "GA", "KS", "MT", "NV", "OR", "TX", "UT", "VT"];
const JOURNALS: &[&str] = &[
    "Nature Medicine",
    "Science Reports",
    "Health Review",
    "Data Journal",
    "Systems Review",
    "Medical Letters",
    "Clinical Notes",
    "Open Science",
];
const LANGUAGES: &[&str] =
    &["English", "German", "French", "Spanish", "Italian", "Dutch", "Polish", "Greek"];
const OCCUPATIONS: &[&str] = &[
    "Sales",
    "Craft Repair",
    "Exec Managerial",
    "Prof Specialty",
    "Handlers Cleaners",
    "Machine Op",
    "Adm Clerical",
    "Farming Fishing",
    "Transport Moving",
    "Tech Support",
];
const EDUCATION: &[&str] =
    &["Bachelors", "Masters", "Doctorate", "College", "School", "Vocational"];
const WORKCLASS: &[&str] = &["Private", "State Gov", "Federal Gov", "Local Gov", "Self Employed"];
const MACHINE_STATUS: &[&str] = &["Running", "Idle", "Maintenance", "Fault", "Offline"];
const WEATHER: &[&str] = &["Clear", "Cloudy", "Rain", "Snow", "Mist", "Storm"];
const DEPARTMENTS: &[&str] = &[
    "Finance",
    "Health",
    "Education",
    "Transit",
    "Parks",
    "Housing",
    "Water",
    "Energy",
    "Police",
    "Fire",
    "Library",
    "Sanitation",
];
const CUISINES: &[&str] =
    &["American", "Chinese", "Italian", "Mexican", "Japanese", "Thai", "French", "Indian"];
const BOROUGHS: &[&str] = &["Manhattan", "Brooklyn", "Queens", "Bronx", "Richmond"];
const GRADES: &[&str] = &["A", "B", "C"];
const PRODUCTS: &[&str] = &[
    "Laptop", "Monitor", "Keyboard", "Printer", "Camera", "Speaker", "Tablet", "Router", "Charger",
    "Headset",
];
const SUPPLIERS: &[&str] = &[
    "Initech Supply",
    "Globex Parts",
    "Vandelay Goods",
    "Wernham Trade",
    "Cyberdyne Retail",
    "Dunder Depot",
    "Hooli Wholesale",
    "Umbrella Imports",
];
const SONG_ARTISTS: &[&str] = &[
    "Khruangbin",
    "Alvvays",
    "Phoebe Rodrigo",
    "Bastille Echo",
    "Wilco Harbor",
    "Sufjan Canyon",
    "Bonobo Valley",
    "Tame Rivers",
];
const SCHOOL_NAMES: &[&str] = &[
    "Lincoln High",
    "Washington Middle",
    "Jefferson Elementary",
    "Roosevelt High",
    "Franklin Academy",
    "Madison Prep",
    "Kennedy High",
    "Monroe Elementary",
];

// ---------------------------------------------------------------------
// The domain templates.
// ---------------------------------------------------------------------

/// Soccer players (paper running example, Table t1).
pub const PLAYERS: DomainSpec = DomainSpec {
    name: "soccer",
    columns: &[
        ColumnSpec::Id { prefix: "P" },
        ColumnSpec::Proper { name: "name", pool: PLAYER_SURNAMES },
        ColumnSpec::Num { name: "age", min: 18.0, max: 38.0, integer: true },
        ColumnSpec::Num { name: "market_value", min: 1.0, max: 180.0, integer: false },
        ColumnSpec::Entity { name: "club", pool: CLUBS },
        ColumnSpec::Determined { name: "club_country", map: CLUB_COUNTRY },
    ],
};

/// Soccer clubs (running example Table t3) — same domain as [`PLAYERS`].
pub const CLUBS_TABLE: DomainSpec = DomainSpec {
    name: "soccer",
    columns: &[
        ColumnSpec::Id { prefix: "C" },
        ColumnSpec::Entity { name: "club_name", pool: CLUBS },
        ColumnSpec::Determined { name: "country", map: CLUB_COUNTRY },
        ColumnSpec::Num { name: "score", min: 1900.0, max: 2100.0, integer: true },
        ColumnSpec::Num { name: "founded", min: 1880.0, max: 1995.0, integer: true },
    ],
};

/// Movies with ratings (running example Table t2).
pub const MOVIES: DomainSpec = DomainSpec {
    name: "movies",
    columns: &[
        ColumnSpec::Id { prefix: "M" },
        ColumnSpec::Proper { name: "title", pool: MOVIE_TITLES },
        ColumnSpec::Cat { name: "genre", pool: GENRES },
        ColumnSpec::Num { name: "release_year", min: 1950.0, max: 2023.0, integer: true },
        ColumnSpec::Num { name: "rating", min: 5.0, max: 9.5, integer: false },
        ColumnSpec::Entity { name: "director", pool: DIRECTORS },
        ColumnSpec::Num { name: "gross", min: 100_000.0, max: 900_000_000.0, integer: true },
    ],
};

/// Box-office table (running example Table t5) — same domain as [`MOVIES`].
pub const BOX_OFFICE: DomainSpec = DomainSpec {
    name: "movies",
    columns: &[
        ColumnSpec::Id { prefix: "B" },
        ColumnSpec::Entity { name: "studio", pool: STUDIOS },
        ColumnSpec::Date { name: "release_date", start_year: 1950, end_year: 2023 },
        ColumnSpec::Cat { name: "genre", pool: GENRES },
        ColumnSpec::Num {
            name: "total_gross",
            min: 1_000_000.0,
            max: 900_000_000.0,
            integer: true,
        },
    ],
};

/// Countries and populations (running example Table t4).
pub const COUNTRIES: DomainSpec = DomainSpec {
    name: "geo",
    columns: &[
        ColumnSpec::Id { prefix: "G" },
        ColumnSpec::Entity { name: "capital", pool: CITIES },
        ColumnSpec::Determined { name: "country", map: CITY_COUNTRY },
        ColumnSpec::Num { name: "population", min: 100_000.0, max: 85_000_000.0, integer: true },
        ColumnSpec::Num { name: "area", min: 1_000.0, max: 700_000.0, integer: true },
    ],
};

/// Flights (Quintet's "Flights").
pub const FLIGHTS: DomainSpec = DomainSpec {
    name: "flights",
    columns: &[
        ColumnSpec::Id { prefix: "F" },
        ColumnSpec::Cat { name: "airline", pool: AIRLINES },
        ColumnSpec::Entity { name: "origin", pool: AIRPORTS },
        ColumnSpec::Cat { name: "destination", pool: AIRPORTS },
        ColumnSpec::Date { name: "scheduled", start_year: 2011, end_year: 2012 },
        ColumnSpec::Num { name: "delay_minutes", min: 0.0, max: 240.0, integer: true },
    ],
};

/// Beers (Quintet's "Beers").
pub const BEERS: DomainSpec = DomainSpec {
    name: "beers",
    columns: &[
        ColumnSpec::Id { prefix: "BE" },
        ColumnSpec::Entity { name: "brewery", pool: BREWERIES },
        ColumnSpec::Cat { name: "style", pool: BEER_STYLES },
        ColumnSpec::Num { name: "abv", min: 3.0, max: 12.0, integer: false },
        ColumnSpec::Num { name: "ibu", min: 5.0, max: 120.0, integer: true },
        ColumnSpec::Num { name: "ounces", min: 8.0, max: 32.0, integer: true },
    ],
};

/// Hospitals (Quintet's "Hospital").
pub const HOSPITAL: DomainSpec = DomainSpec {
    name: "hospital",
    columns: &[
        ColumnSpec::Id { prefix: "H" },
        ColumnSpec::Entity { name: "hospital_name", pool: HOSPITAL_NAMES },
        ColumnSpec::Cat { name: "condition", pool: CONDITIONS },
        ColumnSpec::Entity { name: "state", pool: STATES },
        ColumnSpec::Determined { name: "state_code", map: STATE_CODES },
        ColumnSpec::Num { name: "sample_size", min: 10.0, max: 900.0, integer: true },
        ColumnSpec::Num { name: "score", min: 0.0, max: 100.0, integer: true },
    ],
};

/// Bibliographic records (Quintet's "Rayyan").
pub const RAYYAN: DomainSpec = DomainSpec {
    name: "articles",
    columns: &[
        ColumnSpec::Id { prefix: "A" },
        ColumnSpec::Proper { name: "author", pool: AUTHOR_NAMES },
        ColumnSpec::Entity { name: "journal", pool: JOURNALS },
        ColumnSpec::Determined { name: "language", map: LANGUAGES },
        ColumnSpec::Num { name: "volume", min: 1.0, max: 60.0, integer: true },
        ColumnSpec::Num { name: "pages", min: 4.0, max: 40.0, integer: true },
        ColumnSpec::Date { name: "published", start_year: 1990, end_year: 2020 },
    ],
};

/// Census income rows (REIN's "Adult").
pub const ADULT: DomainSpec = DomainSpec {
    name: "census",
    columns: &[
        ColumnSpec::Id { prefix: "AD" },
        ColumnSpec::Num { name: "age", min: 17.0, max: 90.0, integer: true },
        ColumnSpec::Entity { name: "occupation", pool: OCCUPATIONS },
        ColumnSpec::Cat { name: "education", pool: EDUCATION },
        ColumnSpec::Cat { name: "workclass", pool: WORKCLASS },
        ColumnSpec::Num { name: "hours_per_week", min: 10.0, max: 80.0, integer: true },
        ColumnSpec::Num { name: "capital_gain", min: 0.0, max: 20_000.0, integer: true },
    ],
};

/// Tumor measurements (REIN's "Breast Cancer").
pub const BREAST_CANCER: DomainSpec = DomainSpec {
    name: "medical",
    columns: &[
        ColumnSpec::Id { prefix: "BC" },
        ColumnSpec::Num { name: "radius", min: 6.0, max: 28.0, integer: false },
        ColumnSpec::Num { name: "texture", min: 9.0, max: 40.0, integer: false },
        ColumnSpec::Num { name: "perimeter", min: 40.0, max: 190.0, integer: false },
        ColumnSpec::Num { name: "smoothness", min: 0.05, max: 0.16, integer: false },
        ColumnSpec::Cat { name: "diagnosis", pool: &["Benign", "Malignant"] },
    ],
};

/// Sensor readings (REIN's "Smart Factory").
pub const SMART_FACTORY: DomainSpec = DomainSpec {
    name: "factory",
    columns: &[
        ColumnSpec::Id { prefix: "SF" },
        ColumnSpec::Entity {
            name: "machine",
            pool: &["Press", "Lathe", "Mill", "Welder", "Cutter", "Drill"],
        },
        ColumnSpec::Determined { name: "status", map: MACHINE_STATUS },
        ColumnSpec::Num { name: "temperature", min: 18.0, max: 95.0, integer: false },
        ColumnSpec::Num { name: "pressure", min: 0.8, max: 6.5, integer: false },
        ColumnSpec::Num { name: "vibration", min: 0.0, max: 12.0, integer: false },
    ],
};

/// Airfoil acoustics (REIN's "Nasa").
pub const NASA: DomainSpec = DomainSpec {
    name: "aero",
    columns: &[
        ColumnSpec::Id { prefix: "N" },
        ColumnSpec::Num { name: "frequency", min: 200.0, max: 20_000.0, integer: true },
        ColumnSpec::Num { name: "angle", min: 0.0, max: 22.0, integer: false },
        ColumnSpec::Num { name: "chord", min: 0.02, max: 0.3, integer: false },
        ColumnSpec::Num { name: "velocity", min: 30.0, max: 72.0, integer: false },
        ColumnSpec::Num { name: "sound_level", min: 103.0, max: 141.0, integer: false },
    ],
};

/// Bike-sharing demand (REIN's "Bikes").
pub const BIKES: DomainSpec = DomainSpec {
    name: "transport",
    columns: &[
        ColumnSpec::Id { prefix: "BK" },
        ColumnSpec::Date { name: "day", start_year: 2011, end_year: 2012 },
        ColumnSpec::Cat { name: "weather", pool: WEATHER },
        ColumnSpec::Num { name: "temperature", min: -8.0, max: 39.0, integer: false },
        ColumnSpec::Num { name: "windspeed", min: 0.0, max: 57.0, integer: false },
        ColumnSpec::Num { name: "count", min: 1.0, max: 8_000.0, integer: true },
    ],
};

/// Soil moisture probes (REIN's "Soil Moisture").
pub const SOIL: DomainSpec = DomainSpec {
    name: "environment",
    columns: &[
        ColumnSpec::Id { prefix: "SO" },
        ColumnSpec::Num { name: "depth", min: 5.0, max: 100.0, integer: true },
        ColumnSpec::Num { name: "moisture", min: 0.02, max: 0.55, integer: false },
        ColumnSpec::Num { name: "salinity", min: 0.1, max: 8.0, integer: false },
        ColumnSpec::Num { name: "nitrogen", min: 0.5, max: 40.0, integer: false },
    ],
};

/// Car listings (REIN's "Mercedes").
pub const MERCEDES: DomainSpec = DomainSpec {
    name: "vehicles",
    columns: &[
        ColumnSpec::Id { prefix: "MB" },
        ColumnSpec::Entity {
            name: "model",
            pool: &["Class A", "Class B", "Class C", "Class E", "Class S", "Class G"],
        },
        ColumnSpec::Determined {
            name: "fuel",
            map: &["Petrol", "Petrol", "Diesel", "Diesel", "Petrol", "Diesel"],
        },
        ColumnSpec::Num { name: "mileage", min: 500.0, max: 180_000.0, integer: true },
        ColumnSpec::Num { name: "horsepower", min: 90.0, max: 620.0, integer: true },
        ColumnSpec::Num { name: "price", min: 9_000.0, max: 160_000.0, integer: true },
    ],
};

/// Wearable activity data (REIN's "HAR").
pub const HAR: DomainSpec = DomainSpec {
    name: "wearables",
    columns: &[
        ColumnSpec::Id { prefix: "HR" },
        ColumnSpec::Cat {
            name: "activity",
            pool: &["Walking", "Sitting", "Standing", "Running", "Cycling"],
        },
        ColumnSpec::Num { name: "accelerometer", min: -20.0, max: 20.0, integer: false },
        ColumnSpec::Num { name: "gyroscope", min: -10.0, max: 10.0, integer: false },
        ColumnSpec::Num { name: "subject", min: 1.0, max: 30.0, integer: true },
    ],
};

/// Open-government style: school enrollment.
pub const SCHOOLS: DomainSpec = DomainSpec {
    name: "education",
    columns: &[
        ColumnSpec::Id { prefix: "SC" },
        ColumnSpec::Entity { name: "school", pool: SCHOOL_NAMES },
        ColumnSpec::Determined { name: "district", map: DEPARTMENTS },
        ColumnSpec::Num { name: "enrollment", min: 80.0, max: 3_500.0, integer: true },
        ColumnSpec::Num { name: "graduation_rate", min: 40.0, max: 99.0, integer: false },
    ],
};

/// Open-government style: agency budgets.
pub const BUDGETS: DomainSpec = DomainSpec {
    name: "finance",
    columns: &[
        ColumnSpec::Id { prefix: "BU" },
        ColumnSpec::Entity { name: "department", pool: DEPARTMENTS },
        ColumnSpec::Num { name: "fiscal_year", min: 2005.0, max: 2023.0, integer: true },
        ColumnSpec::Num { name: "budget", min: 100_000.0, max: 90_000_000.0, integer: true },
        ColumnSpec::Num { name: "spent", min: 50_000.0, max: 90_000_000.0, integer: true },
    ],
};

/// Open-government style: restaurant inspections.
pub const RESTAURANTS: DomainSpec = DomainSpec {
    name: "inspections",
    columns: &[
        ColumnSpec::Id { prefix: "RI" },
        ColumnSpec::Cat { name: "cuisine", pool: CUISINES },
        ColumnSpec::Entity { name: "borough", pool: BOROUGHS },
        ColumnSpec::Cat { name: "grade", pool: GRADES },
        ColumnSpec::Num { name: "violations", min: 0.0, max: 12.0, integer: true },
        ColumnSpec::Date { name: "inspected", start_year: 2015, end_year: 2023 },
    ],
};

/// Open-government style: weather stations.
pub const WEATHER_STATIONS: DomainSpec = DomainSpec {
    name: "weather",
    columns: &[
        ColumnSpec::Id { prefix: "WS" },
        ColumnSpec::Entity { name: "station_city", pool: CITIES },
        ColumnSpec::Determined { name: "country", map: CITY_COUNTRY },
        ColumnSpec::Num { name: "rainfall", min: 0.0, max: 340.0, integer: false },
        ColumnSpec::Num { name: "temp_max", min: -10.0, max: 44.0, integer: false },
        ColumnSpec::Num { name: "temp_min", min: -25.0, max: 25.0, integer: false },
    ],
};

/// Commerce orders (GitTables-ish spreadsheets).
pub const ORDERS: DomainSpec = DomainSpec {
    name: "commerce",
    columns: &[
        ColumnSpec::Id { prefix: "O" },
        ColumnSpec::Cat { name: "product", pool: PRODUCTS },
        ColumnSpec::Entity { name: "supplier", pool: SUPPLIERS },
        ColumnSpec::Num { name: "quantity", min: 1.0, max: 500.0, integer: true },
        ColumnSpec::Num { name: "price", min: 2.0, max: 2_400.0, integer: false },
    ],
};

/// Music charts (GitTables-ish spreadsheets).
pub const SONGS: DomainSpec = DomainSpec {
    name: "music",
    columns: &[
        ColumnSpec::Id { prefix: "SG" },
        ColumnSpec::Entity { name: "artist", pool: SONG_ARTISTS },
        ColumnSpec::Num { name: "track_length", min: 120.0, max: 420.0, integer: true },
        ColumnSpec::Num { name: "chart_position", min: 1.0, max: 100.0, integer: true },
        ColumnSpec::Num { name: "plays", min: 1_000.0, max: 90_000_000.0, integer: true },
    ],
};

/// Every template, for generators that cycle through domains.
pub const ALL_DOMAINS: &[DomainSpec] = &[
    PLAYERS,
    CLUBS_TABLE,
    MOVIES,
    BOX_OFFICE,
    COUNTRIES,
    FLIGHTS,
    BEERS,
    HOSPITAL,
    RAYYAN,
    ADULT,
    BREAST_CANCER,
    SMART_FACTORY,
    NASA,
    BIKES,
    SOIL,
    MERCEDES,
    HAR,
    SCHOOLS,
    BUDGETS,
    RESTAURANTS,
    WEATHER_STATIONS,
    ORDERS,
    SONGS,
];

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_text::SpellChecker;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = PLAYERS.generate("players", 50, &mut rng);
        assert_eq!(t.n_rows(), 50);
        assert_eq!(t.n_cols(), 6);
        assert_eq!(t.columns[0].name, "P_id");
    }

    #[test]
    fn entity_determined_pairs_form_exact_fds() {
        let mut rng = StdRng::seed_from_u64(2);
        for spec in ALL_DOMAINS {
            let t = spec.generate("t", 60, &mut rng);
            for (j, col) in spec.columns.iter().enumerate() {
                if let ColumnSpec::Determined { .. } = col {
                    // Find the entity column (the FD's LHS).
                    let lhs = spec
                        .columns
                        .iter()
                        .position(|c| matches!(c, ColumnSpec::Entity { .. }))
                        .expect("Determined requires Entity");
                    let stats = matelda_fd::violation_stats(&t, lhs, j);
                    assert!(
                        stats.violating_rows.is_empty(),
                        "domain {} column {j} violates its own FD",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn clean_tables_are_mostly_spell_clean_except_proper_nouns() {
        let spell = SpellChecker::english();
        let mut rng = StdRng::seed_from_u64(3);
        let mut flagged = 0usize;
        let mut total = 0usize;
        let mut proper_flagged = 0usize;
        let mut proper_total = 0usize;
        for spec in ALL_DOMAINS {
            let t = spec.generate("t", 30, &mut rng);
            for (j, col) in t.columns.iter().enumerate() {
                // Proper columns and Entity columns carry real-world
                // brand/venue names, which are OOD by design.
                let is_proper = matches!(
                    spec.columns[j],
                    ColumnSpec::Proper { .. } | ColumnSpec::Entity { .. }
                );
                for v in &col.values {
                    let f = spell.flags_cell(v);
                    if is_proper {
                        proper_total += 1;
                        proper_flagged += usize::from(f);
                    } else {
                        total += 1;
                        flagged += usize::from(f);
                    }
                }
            }
        }
        // Dictionary-covered columns stay quiet...
        let rate = flagged as f64 / total as f64;
        assert!(rate < 0.02, "clean dictionary columns trigger the typo detector at rate {rate}");
        // ...while proper-noun columns are flagged wholesale — that is the
        // realistic false-positive source for ASPELL-style detection.
        assert!(proper_total > 0);
        assert!(
            proper_flagged as f64 / proper_total as f64 > 0.3,
            "proper-noun vocabulary leaked into the dictionary"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = MOVIES.generate("m", 20, &mut StdRng::seed_from_u64(9));
        let t2 = MOVIES.generate("m", 20, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }

    #[test]
    fn first_column_is_a_key() {
        let mut rng = StdRng::seed_from_u64(5);
        for spec in ALL_DOMAINS {
            let t = spec.generate("t", 40, &mut rng);
            let p = matelda_fd::Partition::of_column(&t, 0);
            assert!(p.is_key(), "domain {} first column is not a key", spec.name);
        }
    }
}
