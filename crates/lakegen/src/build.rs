//! Lake assembly: clean tables + error injection → a [`GeneratedLake`]
//! with ground truth and per-type error masks.

use matelda_errorgen::{inject, ErrorSpec, ErrorType};
use matelda_table::{diff_lakes, CellId, CellMask, Lake, Table};

/// A generated benchmark lake: the dirty lake systems see, the clean
/// ground truth, the error mask (Eq. 1's set `E`), and per-error-type
/// masks for Table 3 / Figure 4 style evaluation.
#[derive(Debug, Clone)]
pub struct GeneratedLake {
    /// The dirty tables systems operate on.
    pub dirty: Lake,
    /// The aligned clean ground truth.
    pub clean: Lake,
    /// All erroneous cells.
    pub errors: CellMask,
    /// `(type abbreviation, mask)` per injected error type, in a stable
    /// order.
    pub typed_errors: Vec<(String, CellMask)>,
}

impl GeneratedLake {
    /// Overall cell error rate.
    pub fn error_rate(&self) -> f64 {
        self.errors.rate()
    }
}

/// Injects errors into each clean table (each with its own spec) and
/// assembles the lake + masks.
///
/// # Panics
/// Panics if `specs` length differs from the table count.
pub fn assemble(clean_tables: Vec<Table>, specs: &[ErrorSpec]) -> GeneratedLake {
    assert_eq!(clean_tables.len(), specs.len(), "one ErrorSpec per table");
    let mut dirty_tables = Vec::with_capacity(clean_tables.len());
    let mut reports = Vec::with_capacity(clean_tables.len());
    for (t, spec) in clean_tables.iter().zip(specs) {
        let (dirty, report) = inject(t, spec);
        dirty_tables.push(dirty);
        reports.push(report);
    }
    let clean = Lake::new(clean_tables);
    let dirty = Lake::new(dirty_tables);
    let errors = diff_lakes(&dirty, &clean);

    // Stable type order across lakes.
    let all_types = [
        ErrorType::MissingValue,
        ErrorType::Typo,
        ErrorType::Formatting,
        ErrorType::NumericOutlier,
        ErrorType::FdViolation,
    ];
    let typed_errors = all_types
        .iter()
        .filter_map(|&ty| {
            let mut mask = CellMask::empty(&dirty);
            let mut any = false;
            for (t, report) in reports.iter().enumerate() {
                for (r, c) in report.of_type(ty) {
                    mask.set(CellId::new(t, r, c), true);
                    any = true;
                }
            }
            any.then(|| (ty.abbrev().to_string(), mask))
        })
        .collect();

    GeneratedLake { dirty, clean, errors, typed_errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::PLAYERS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn assemble_produces_consistent_masks() {
        let mut rng = StdRng::seed_from_u64(1);
        let tables = vec![PLAYERS.generate("a", 40, &mut rng), PLAYERS.generate("b", 40, &mut rng)];
        let specs = vec![ErrorSpec::all_types(0.1, 1), ErrorSpec::all_types(0.1, 2)];
        let lake = assemble(tables, &specs);
        assert_eq!(lake.dirty.n_tables(), 2);
        assert!(lake.error_rate() > 0.05 && lake.error_rate() < 0.15, "{}", lake.error_rate());
        // Typed masks partition the error mask.
        let union =
            lake.typed_errors.iter().fold(CellMask::empty(&lake.dirty), |acc, (_, m)| acc.or(m));
        assert_eq!(union.count(), lake.errors.count());
        for (name, m) in &lake.typed_errors {
            assert!(m.count() > 0, "type {name} has no errors");
            assert_eq!(m.and(&lake.errors).count(), m.count(), "{name} mask outside error set");
        }
    }

    #[test]
    #[should_panic(expected = "one ErrorSpec per table")]
    fn mismatched_specs_panic() {
        let _ = assemble(vec![], &[ErrorSpec::all_types(0.1, 0)]);
    }
}
