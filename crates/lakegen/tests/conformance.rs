//! Conformance tests: every lake generator must produce aligned
//! dirty/clean pairs, error masks that match the diff, typed masks that
//! partition the error set, and deterministic output.

use matelda_lakegen::{DGovLake, GeneratedLake, GitTablesLake, QuintetLake, ReinLake, WdcLake};
use matelda_table::diff_lakes;

fn all_generators() -> Vec<(&'static str, Box<dyn Fn(u64) -> GeneratedLake>)> {
    vec![
        (
            "quintet",
            Box::new(|s| QuintetLake { rows_per_table: 40, ..Default::default() }.generate(s)),
        ),
        ("rein", Box::new(|s| ReinLake { rows_per_table: 40, ..Default::default() }.generate(s))),
        ("dgov-ntr", Box::new(|s| DGovLake::ntr().with_n_tables(10).generate(s))),
        ("dgov-nt", Box::new(|s| DGovLake::nt().with_n_tables(10).generate(s))),
        ("dgov-no", Box::new(|s| DGovLake::no().with_n_tables(10).generate(s))),
        ("dgov-typo", Box::new(|s| DGovLake::typo().with_n_tables(10).generate(s))),
        ("dgov-rv", Box::new(|s| DGovLake::rv().with_n_tables(10).generate(s))),
        ("dgov-1k", Box::new(|s| DGovLake::dgov_1k().with_n_tables(10).generate(s))),
        ("wdc", Box::new(|s| WdcLake { n_tables: 10, ..Default::default() }.generate(s))),
        ("gittables", Box::new(|s| GitTablesLake::default().with_n_tables(10).generate(s))),
    ]
}

#[test]
fn dirty_and_clean_lakes_are_cell_aligned() {
    for (name, generate) in all_generators() {
        let lake = generate(2);
        assert_eq!(lake.dirty.n_tables(), lake.clean.n_tables(), "{name}");
        for (d, c) in lake.dirty.tables.iter().zip(&lake.clean.tables) {
            assert_eq!(d.name, c.name, "{name}");
            assert_eq!(d.n_rows(), c.n_rows(), "{name}/{}", d.name);
            assert_eq!(d.n_cols(), c.n_cols(), "{name}/{}", d.name);
            assert_eq!(d.header(), c.header(), "{name}/{}", d.name);
        }
    }
}

#[test]
fn error_mask_equals_diff_and_typed_masks_partition_it() {
    for (name, generate) in all_generators() {
        let lake = generate(3);
        let diff = diff_lakes(&lake.dirty, &lake.clean);
        assert_eq!(diff.count(), lake.errors.count(), "{name}: mask != diff");
        // Typed masks are disjoint and cover the error set.
        let mut covered = 0usize;
        for (i, (ti, mi)) in lake.typed_errors.iter().enumerate() {
            covered += mi.count();
            assert_eq!(mi.and(&lake.errors).count(), mi.count(), "{name}/{ti} outside errors");
            for (tj, mj) in lake.typed_errors.iter().skip(i + 1) {
                assert_eq!(mi.and(mj).count(), 0, "{name}: {ti} overlaps {tj}");
            }
        }
        assert_eq!(covered, lake.errors.count(), "{name}: typed masks do not partition");
    }
}

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    for (name, generate) in all_generators() {
        let a = generate(7);
        let b = generate(7);
        assert_eq!(a.dirty, b.dirty, "{name} not deterministic");
        assert_eq!(a.clean, b.clean, "{name} not deterministic");
        let c = generate(8);
        assert_ne!(a.dirty, c.dirty, "{name} ignores the seed");
    }
}

#[test]
fn error_rates_land_in_configured_bands() {
    let bands = [
        ("quintet", 0.06, 0.12),
        ("rein", 0.09, 0.17),
        ("dgov-ntr", 0.11, 0.21),
        ("dgov-nt", 0.10, 0.20),
        ("dgov-no", 0.005, 0.04),
        ("dgov-typo", 0.05, 0.13),
        ("dgov-rv", 0.02, 0.15),
        ("wdc", 0.04, 0.12),
    ];
    let gens = all_generators();
    for (name, lo, hi) in bands {
        let generate = &gens.iter().find(|(n, _)| *n == name).expect("known generator").1;
        let lake = generate(5);
        let rate = lake.error_rate();
        assert!((lo..=hi).contains(&rate), "{name}: rate {rate} outside [{lo}, {hi}]");
    }
}

#[test]
fn dirty_lakes_actually_differ_from_clean() {
    for (name, generate) in all_generators() {
        let lake = generate(11);
        assert_ne!(lake.dirty, lake.clean, "{name}: no errors injected");
        assert!(lake.errors.count() > 0, "{name}");
    }
}
