//! Dense `f32` vectors and the distance functions the clustering substrate
//! consumes.

/// A dense embedding vector.
pub type Vector = Vec<f32>;

/// Dot product of two equally long vectors.
///
/// # Panics
/// Panics (debug) on length mismatch.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Scales a vector to unit L2 norm in place; zero vectors are left as-is.
pub fn l2_normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Cosine similarity in `[-1, 1]`; 0 if either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Euclidean distance.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Cosine *distance* `1 - cos(a,b)` — the metric used for table embeddings
/// (two unit vectors at distance 0 are identical in direction).
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    1.0 - cosine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_cosine() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(dot(&a, &b), 0.0);
        assert_eq!(norm(&a), 1.0);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &a), 1.0);
        assert!((euclidean(&a, &b) - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut z = vec![0.0, 0.0];
        l2_normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero_not_nan() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_distance(&[0.0], &[0.0]), 1.0);
    }

    #[test]
    fn cosine_clamped() {
        // Accumulated float error can push |cos| above 1 — must be clamped.
        let a = vec![0.1f32; 1000];
        assert!(cosine(&a, &a) <= 1.0);
        assert_eq!(cosine_distance(&a, &a), 0.0);
    }
}
