//! MinHash sketches for set-overlap estimation (Broder 1997).
//!
//! The SANTOS-like domain-folding variant (paper §4.5.2) computes exact
//! Jaccard overlaps between every pair of column value-sets — the cost
//! that makes it ~4× slower than the standard embedding. MinHash replaces
//! each value set with a constant-size signature whose per-slot minimum
//! hashes estimate Jaccard similarity in O(k) per pair, turning the
//! unionability matrix from O(T²·V) into O(T²·k) — the classic data-lake
//! discovery trick (and the basis of systems like JOSIE/LSH Ensemble the
//! paper cites).

use matelda_text::ngram::fnv1a64;

/// A MinHash signature of a set of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSketch {
    mins: Vec<u64>,
}

impl MinHashSketch {
    /// Number of hash slots (`k`). More slots → lower estimation variance
    /// (σ ≈ 1/√k).
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// Sketches a set of string items with `k` salted FNV functions.
    pub fn of<I, S>(items: I, k: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert!(k > 0, "sketch needs at least one slot");
        let mut mins = vec![u64::MAX; k];
        for item in items {
            let base = fnv1a64(item.as_ref().as_bytes());
            for (slot, min) in mins.iter_mut().enumerate() {
                // Independent-ish hash per slot: remix the base hash with a
                // slot-specific odd multiplier (splitmix-style finalizer).
                let mut h = base ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                if h < *min {
                    *min = h;
                }
            }
        }
        Self { mins }
    }

    /// Estimated Jaccard similarity: fraction of matching slots.
    ///
    /// # Panics
    /// Panics if the sketches have different `k`.
    pub fn jaccard(&self, other: &Self) -> f64 {
        assert_eq!(self.k(), other.k(), "sketch size mismatch");
        if self.mins.iter().all(|&m| m == u64::MAX) && other.mins.iter().all(|&m| m == u64::MAX) {
            return 1.0; // both empty
        }
        let hits = self.mins.iter().zip(&other.mins).filter(|(a, b)| a == b).count();
        hits as f64 / self.k() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(range: std::ops::Range<u32>) -> Vec<String> {
        range.map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let a = MinHashSketch::of(set(0..100), 128);
        let b = MinHashSketch::of(set(0..100), 128);
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let a = MinHashSketch::of(set(0..100), 128);
        let b = MinHashSketch::of(set(1000..1100), 128);
        assert!(a.jaccard(&b) < 0.05, "{}", a.jaccard(&b));
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // |A∩B| = 50, |A∪B| = 150 → J = 1/3. With k = 256, σ ≈ 0.03.
        let a = MinHashSketch::of(set(0..100), 256);
        let b = MinHashSketch::of(set(50..150), 256);
        let est = a.jaccard(&b);
        assert!((est - 1.0 / 3.0).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn empty_sets() {
        let e = MinHashSketch::of(Vec::<String>::new(), 64);
        let f = MinHashSketch::of(Vec::<String>::new(), 64);
        assert_eq!(e.jaccard(&f), 1.0);
        let a = MinHashSketch::of(set(0..10), 64);
        assert!(e.jaccard(&a) < 0.05);
    }

    #[test]
    fn order_and_duplicates_do_not_matter() {
        let a = MinHashSketch::of(["x", "y", "z"], 64);
        let b = MinHashSketch::of(["z", "y", "x", "x", "z"], 64);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sketch size mismatch")]
    fn mismatched_k_panics() {
        let a = MinHashSketch::of(["x"], 32);
        let b = MinHashSketch::of(["x"], 64);
        let _ = a.jaccard(&b);
    }
}
