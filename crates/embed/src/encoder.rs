//! The signed feature-hashing text encoder (BERT substitute).

use crate::vector::{l2_normalize, Vector};
use matelda_table::Table;
use matelda_text::ngram::{signed_bucket, word_ngrams};
use matelda_text::token::{char_trigrams, tokens};
use std::collections::HashMap;

/// Configuration of the [`HashedEncoder`].
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Embedding dimensionality. 128 is plenty for the coarse domain
    /// separation this is used for; collisions are mitigated by the ±1
    /// hashing signs.
    pub dim: usize,
    /// Longest word n-gram to hash (1 = unigrams only).
    pub max_word_ngram: usize,
    /// Whether to also hash character trigrams (captures value *shape* —
    /// dates, codes, numeric formats — independent of vocabulary).
    pub char_trigrams: bool,
    /// Weight of character-trigram features relative to word features.
    pub trigram_weight: f32,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { dim: 128, max_word_ngram: 2, char_trigrams: true, trigram_weight: 0.5 }
    }
}

/// Deterministic text encoder: hashed word n-grams + char trigrams with
/// sublinear tf weighting and L2 normalization.
///
/// Substitutes the paper's pre-trained BERT model for domain folding; see
/// the crate docs and DESIGN.md for the substitution argument.
#[derive(Debug, Clone, Default)]
pub struct HashedEncoder {
    config: EncoderConfig,
}

impl HashedEncoder {
    /// Creates an encoder with the given configuration.
    pub fn new(config: EncoderConfig) -> Self {
        Self { config }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Encodes arbitrary text into a unit-norm dense vector.
    pub fn encode(&self, text: &str) -> Vector {
        let mut counts: HashMap<String, f32> = HashMap::new();
        let toks = tokens(text);
        for g in word_ngrams(&toks, self.config.max_word_ngram) {
            *counts.entry(g).or_insert(0.0) += 1.0;
        }
        if self.config.char_trigrams {
            for tok in &toks {
                for tri in char_trigrams(tok) {
                    // Prefix avoids colliding the trigram namespace with words.
                    *counts.entry(format!("#{tri}")).or_insert(0.0) += self.config.trigram_weight;
                }
            }
        }
        let mut v = vec![0.0f32; self.config.dim];
        for (feature, tf) in counts {
            let (bucket, sign) = signed_bucket(&feature, self.config.dim);
            // Sublinear tf: repeated tokens saturate instead of dominating.
            v[bucket] += sign * (1.0 + tf.ln());
        }
        l2_normalize(&mut v);
        v
    }
}

/// Embeds a whole table: serialize row-major (Alg. 1 line 3), then encode
/// (Alg. 1 line 4).
pub fn embed_table(encoder: &HashedEncoder, table: &Table) -> Vector {
    encoder.encode(&table.serialize())
}

/// Embeds a table from a row sample — the Matelda-RS variant (§4.5.2),
/// which feeds only ~1% of rows to the encoder to cut embedding cost.
pub fn embed_table_sampled(encoder: &HashedEncoder, table: &Table, rows: &[usize]) -> Vector {
    encoder.encode(&table.serialize_rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{cosine, norm};
    use matelda_table::Column;

    fn enc() -> HashedEncoder {
        HashedEncoder::default()
    }

    #[test]
    fn encoding_is_deterministic_and_unit_norm() {
        let e = enc();
        let a = e.encode("liverpool beat chelsea in london");
        let b = e.encode("liverpool beat chelsea in london");
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
        assert_eq!(a.len(), 128);
    }

    #[test]
    fn same_domain_more_similar_than_cross_domain() {
        let e = enc();
        let football1 =
            e.encode("liverpool chelsea arsenal goals league season club striker england");
        let football2 = e.encode("manchester club league bayern goals season striker spain madrid");
        let movies =
            e.encode("director genre release screenplay studio drama thriller actor oscar");
        let within = cosine(&football1, &football2);
        let across = cosine(&football1, &movies);
        assert!(
            within > across,
            "within-domain cosine {within} should exceed cross-domain {across}"
        );
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = enc();
        let v = e.encode("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn table_embedding_matches_serialized_text() {
        let e = enc();
        let t = Table::new(
            "t",
            vec![Column::new("a", ["hello", "big"]), Column::new("b", ["world", "cat"])],
        );
        assert_eq!(embed_table(&e, &t), e.encode("hello world big cat"));
    }

    #[test]
    fn sampled_embedding_uses_only_selected_rows() {
        let e = enc();
        let t = Table::new(
            "t",
            vec![Column::new("a", ["hello", "big"]), Column::new("b", ["world", "cat"])],
        );
        assert_eq!(embed_table_sampled(&e, &t, &[1]), e.encode("big cat"));
    }

    #[test]
    fn sampled_embedding_approximates_full_embedding() {
        // A table with homogeneous rows: embedding from half the rows should
        // stay very close to the full embedding (the Matelda-RS premise).
        let e = enc();
        let values: Vec<String> = (0..200)
            .map(|i| if i % 2 == 0 { "red apple".to_string() } else { "green pear".to_string() })
            .collect();
        let t = Table::new("t", vec![Column::new("fruit", values)]);
        let full = embed_table(&e, &t);
        // A uniform sample keeps the row mix balanced, as random sampling
        // would in expectation.
        let rows: Vec<usize> = (0..200).step_by(5).collect();
        let sampled = embed_table_sampled(&e, &t, &rows);
        assert!(cosine(&full, &sampled) > 0.9, "cosine = {}", cosine(&full, &sampled));
    }

    #[test]
    fn dimension_is_configurable() {
        let e = HashedEncoder::new(EncoderConfig { dim: 32, ..EncoderConfig::default() });
        assert_eq!(e.encode("x y z").len(), 32);
        assert_eq!(e.dim(), 32);
    }
}
