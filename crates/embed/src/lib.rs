//! # matelda-embed
//!
//! Table/text embeddings for domain-based cell folding (paper §3.2).
//!
//! The paper serializes each table into one long string (Alg. 1 line 3)
//! and feeds it to a pre-trained **BERT** model to obtain one dense vector
//! per table, then clusters those vectors with HDBSCAN. The authors stress
//! that this step is a *coarse, pragmatic domain filter* — "we do not
//! believe that there is a best domain-based folding technique" — and show
//! (§4.5.2) that swapping the embedding (SANTOS scores, 1%-row sampling)
//! barely changes effectiveness.
//!
//! This crate substitutes BERT with a deterministic **signed
//! feature-hashing encoder** ([`HashedEncoder`]): word uni/bi-grams and
//! character trigrams are hashed into a fixed-dimension vector with ±1
//! signs, weighted with sublinear term frequency and L2-normalized. Tables
//! from the same domain share vocabulary and value shapes, so their hashed
//! vectors have high cosine similarity exactly where BERT embeddings would
//! — which is all the downstream HDBSCAN step consumes.

pub mod encoder;
pub mod minhash;
pub mod vector;

pub use encoder::{embed_table, embed_table_sampled, EncoderConfig, HashedEncoder};
pub use minhash::MinHashSketch;
pub use vector::{cosine, euclidean, Vector};
