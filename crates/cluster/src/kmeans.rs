//! Mini-batch K-Means (Sculley, WWW 2010) with k-means++ seeding.
//!
//! This is the clustering step of quality-based cell folding (paper Alg. 1
//! line 13): each domain fold's cells — embedded in the unified detector
//! feature space — are folded into `k` quality folds, where `k` is that
//! fold's share of the labeling budget. The paper picks mini-batch k-means
//! over the hierarchical clustering of prior work for efficiency (§3.3.2)
//! and sets the batch size to `256 × cores` (§4.1.3).

use crate::matrix::{nearest_centers_blocked, PointMatrix};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

/// Mini-batch K-Means configuration.
#[derive(Debug, Clone)]
pub struct MiniBatchKMeansConfig {
    /// Number of clusters. Clamped to the number of points at fit time.
    pub k: usize,
    /// Mini-batch size per iteration (paper: 256 × cores).
    pub batch_size: usize,
    /// Number of mini-batch iterations.
    pub iterations: usize,
    /// RNG seed; fits are deterministic given the seed.
    pub seed: u64,
}

impl Default for MiniBatchKMeansConfig {
    fn default() -> Self {
        Self { k: 8, batch_size: 256, iterations: 100, seed: 0 }
    }
}

/// Result of a fit: centers and per-point assignments.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Final cluster centers, `k × dim`.
    pub centers: Vec<Vec<f32>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
}

/// The estimator.
///
/// ```
/// use matelda_cluster::kmeans::{MiniBatchKMeans, MiniBatchKMeansConfig};
/// let points: Vec<Vec<f32>> = (0..40)
///     .map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 }, i as f32 * 0.01])
///     .collect();
/// let fit = MiniBatchKMeans::new(MiniBatchKMeansConfig { k: 2, ..Default::default() })
///     .fit(&points);
/// assert_eq!(fit.centers.len(), 2);
/// assert_ne!(fit.assignments[0], fit.assignments[1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MiniBatchKMeans {
    config: MiniBatchKMeansConfig,
}

impl MiniBatchKMeans {
    /// Creates an estimator with the given configuration.
    pub fn new(config: MiniBatchKMeansConfig) -> Self {
        Self { config }
    }

    /// Fits on `points` (row-major, equal dims). Returns centers and
    /// assignments. With fewer points than `k`, every point becomes its
    /// own center.
    ///
    /// Convenience wrapper that copies the rows into a contiguous
    /// [`PointMatrix`] and delegates to [`MiniBatchKMeans::fit_matrix`].
    pub fn fit(&self, points: &[Vec<f32>]) -> KMeansFit {
        self.fit_matrix(&PointMatrix::from_rows(points))
    }

    /// Fits on a contiguous feature matrix — the zero-copy entry point
    /// used by the pipeline's quality-folding stage. Bit-identical to
    /// [`MiniBatchKMeans::fit`] on the same rows: the RNG call sequence
    /// (seeding, k-means++ picks, per-iteration batch sampling) and every
    /// float operation are unchanged; only the distance kernel iterates
    /// in cache blocks over contiguous storage.
    pub fn fit_matrix(&self, points: &PointMatrix) -> KMeansFit {
        let n = points.n();
        if n == 0 {
            return KMeansFit { centers: Vec::new(), assignments: Vec::new() };
        }
        let k = self.config.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centers = kmeanspp_init(points, k, &mut rng);

        // Sculley's algorithm: per-center counts give decaying step sizes.
        let mut counts = vec![0usize; k];
        let batch = self.config.batch_size.min(n).max(1);
        let mut batch_rows: Vec<usize> = Vec::with_capacity(batch);
        for _ in 0..self.config.iterations {
            let idx = sample(&mut rng, n, batch);
            batch_rows.clear();
            batch_rows.extend(idx.iter());
            // Cache nearest centers for the whole batch first (the paper's
            // algorithm caches before updating).
            let nearest = nearest_centers_blocked(points, &batch_rows, &centers);
            for (&i, &c) in batch_rows.iter().zip(&nearest) {
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f32;
                for (cv, pv) in centers[c].iter_mut().zip(points.row(i)) {
                    *cv += eta * (*pv - *cv);
                }
            }
        }

        let all_rows: Vec<usize> = (0..n).collect();
        let assignments = nearest_centers_blocked(points, &all_rows, &centers);
        KMeansFit { centers, assignments }
    }
}

/// Index of the nearest center by squared Euclidean distance; ties go to
/// the lowest index (determinism).
pub fn nearest_center(point: &[f32], centers: &[Vec<f32>]) -> usize {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, center) in centers.iter().enumerate() {
        let d = sq_dist(point, center);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Squared Euclidean distance. The vectors must have equal dimension —
/// enforced in every build profile, because a `debug_assert!` would let
/// release builds silently `zip`-truncate a mismatched pair and return
/// a wrong (too small) distance.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist: dimension mismatch ({} vs {})", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++ seeding (Arthur & Vassilvitskii 2007).
fn kmeanspp_init(points: &PointMatrix, k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let n = points.n();
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(points.row(rng.random_range(0..n)).to_vec());
    let mut d2: Vec<f32> = (0..n).map(|i| sq_dist(points.row(i), &centers[0])).collect();
    while centers.len() < k {
        let total: f32 = d2.iter().sum();
        let next = if total <= 0.0 || !total.is_finite() {
            // All remaining points coincide with existing centers — or a
            // huge/NaN feature value pushed the distance mass out of f32
            // range, where `random_range(0.0..total)` would panic and
            // the weights are meaningless anyway. Pick uniformly to
            // still reach k centers.
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centers.push(points.row(next).to_vec());
        let latest = centers.last().expect("just pushed").clone();
        for (i, d2i) in d2.iter_mut().enumerate() {
            let d = sq_dist(points.row(i), &latest);
            if d < *d2i {
                *d2i = d;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + 0.01 * i as f32, 0.0]);
            pts.push(vec![10.0 + 0.01 * i as f32, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let fit =
            MiniBatchKMeans::new(MiniBatchKMeansConfig { k: 2, seed: 3, ..Default::default() })
                .fit(&two_blobs());
        assert_eq!(fit.centers.len(), 2);
        // Points alternate blob A / blob B; assignments must too.
        let a = fit.assignments[0];
        let b = fit.assignments[1];
        assert_ne!(a, b);
        for (i, &l) in fit.assignments.iter().enumerate() {
            assert_eq!(l, if i % 2 == 0 { a } else { b });
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let cfg = MiniBatchKMeansConfig { k: 4, seed: 42, ..Default::default() };
        let f1 = MiniBatchKMeans::new(cfg.clone()).fit(&pts);
        let f2 = MiniBatchKMeans::new(cfg).fit(&pts);
        assert_eq!(f1.assignments, f2.assignments);
        assert_eq!(f1.centers, f2.centers);
    }

    #[test]
    fn k_clamped_to_n_points() {
        let pts = vec![vec![0.0], vec![1.0]];
        let fit =
            MiniBatchKMeans::new(MiniBatchKMeansConfig { k: 10, ..Default::default() }).fit(&pts);
        assert_eq!(fit.centers.len(), 2);
        assert_ne!(fit.assignments[0], fit.assignments[1]);
    }

    #[test]
    fn empty_input() {
        let fit = MiniBatchKMeans::default().fit(&[]);
        assert!(fit.centers.is_empty());
        assert!(fit.assignments.is_empty());
    }

    #[test]
    fn identical_points_do_not_crash_kmeanspp() {
        let pts = vec![vec![5.0, 5.0]; 10];
        let fit =
            MiniBatchKMeans::new(MiniBatchKMeansConfig { k: 3, ..Default::default() }).fit(&pts);
        assert_eq!(fit.centers.len(), 3);
        assert!(fit.assignments.iter().all(|&a| a < 3));
    }

    #[test]
    fn assignments_point_to_nearest_center() {
        let pts = two_blobs();
        let fit =
            MiniBatchKMeans::new(MiniBatchKMeansConfig { k: 3, seed: 7, ..Default::default() })
                .fit(&pts);
        for (p, &a) in pts.iter().zip(&fit.assignments) {
            assert_eq!(a, nearest_center(p, &fit.centers));
        }
    }

    /// Regression: `sq_dist` used to check dimensions only with a
    /// `debug_assert!`, so release builds silently zip-truncated and
    /// returned a too-small distance. The contract must hold in every
    /// build profile.
    #[test]
    fn sq_dist_rejects_mismatched_dimensions() {
        let caught = std::panic::catch_unwind(|| sq_dist(&[1.0, 2.0, 3.0], &[1.0, 2.0]));
        assert!(caught.is_err(), "mismatched dimensions must panic, not truncate");
    }

    /// Regression: a NaN feature poisons the k-means++ distance sum, and
    /// `random_range(0.0..NaN)` used to panic. The seeding must fall back
    /// to the uniform pick instead.
    #[test]
    fn nan_features_fall_back_to_uniform_seeding() {
        let pts = vec![vec![f32::NAN, 0.0], vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let fit = MiniBatchKMeans::new(MiniBatchKMeansConfig {
            k: 2,
            iterations: 5,
            seed: 0,
            ..Default::default()
        })
        .fit(&pts);
        assert_eq!(fit.centers.len(), 2);
        assert!(fit.assignments.iter().all(|&a| a < 2));
    }

    /// Regression: `f32::MAX`-magnitude features square to `+inf`, so the
    /// weighted-sampling total overflows. Seeding must survive and still
    /// produce k centers with valid assignments.
    #[test]
    fn extreme_magnitudes_do_not_break_seeding() {
        let pts = vec![
            vec![f32::MAX, 0.0],
            vec![-f32::MAX, 0.0],
            vec![0.0, f32::MAX],
            vec![0.0, -f32::MAX],
            vec![1.0, 1.0],
        ];
        let fit = MiniBatchKMeans::new(MiniBatchKMeansConfig {
            k: 3,
            iterations: 10,
            seed: 11,
            ..Default::default()
        })
        .fit(&pts);
        assert_eq!(fit.centers.len(), 3);
        assert!(fit.assignments.iter().all(|&a| a < 3));
    }

    /// The pre-matrix implementation, kept verbatim as the equivalence
    /// reference: per-point `nearest_center` calls over slice-of-rows
    /// storage. The production path must match it bit for bit.
    fn naive_fit(config: &MiniBatchKMeansConfig, points: &[Vec<f32>]) -> KMeansFit {
        fn naive_kmeanspp(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
            let n = points.len();
            let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
            centers.push(points[rng.random_range(0..n)].clone());
            let mut d2: Vec<f32> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();
            while centers.len() < k {
                let total: f32 = d2.iter().sum();
                let next = if total <= 0.0 || !total.is_finite() {
                    rng.random_range(0..n)
                } else {
                    let mut target = rng.random_range(0.0..total);
                    let mut chosen = n - 1;
                    for (i, &d) in d2.iter().enumerate() {
                        if target < d {
                            chosen = i;
                            break;
                        }
                        target -= d;
                    }
                    chosen
                };
                centers.push(points[next].clone());
                let latest = centers.last().expect("just pushed").clone();
                for (i, p) in points.iter().enumerate() {
                    let d = sq_dist(p, &latest);
                    if d < d2[i] {
                        d2[i] = d;
                    }
                }
            }
            centers
        }

        let n = points.len();
        if n == 0 {
            return KMeansFit { centers: Vec::new(), assignments: Vec::new() };
        }
        let k = config.k.clamp(1, n);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centers = naive_kmeanspp(points, k, &mut rng);
        let mut counts = vec![0usize; k];
        let batch = config.batch_size.min(n).max(1);
        for _ in 0..config.iterations {
            let idx = sample(&mut rng, n, batch);
            let nearest: Vec<usize> =
                idx.iter().map(|i| nearest_center(&points[i], &centers)).collect();
            for (i, &c) in idx.iter().zip(&nearest) {
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f32;
                for (cv, pv) in centers[c].iter_mut().zip(&points[i]) {
                    *cv += eta * (*pv - *cv);
                }
            }
        }
        let assignments = points.iter().map(|p| nearest_center(p, &centers)).collect();
        KMeansFit { centers, assignments }
    }

    #[test]
    fn matrix_fit_equals_naive_fit_on_blobs() {
        let pts = two_blobs();
        for seed in 0..8 {
            let cfg = MiniBatchKMeansConfig { k: 3, seed, ..Default::default() };
            let fast = MiniBatchKMeans::new(cfg.clone()).fit(&pts);
            let slow = naive_fit(&cfg, &pts);
            assert_eq!(fast.assignments, slow.assignments, "seed {seed}");
            assert_eq!(fast.centers, slow.centers, "seed {seed}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        // The blocked/matrix fit is pinned to the pre-matrix reference
        // implementation: identical centers (bit for bit) and identical
        // assignments for arbitrary inputs, seeds, and batch shapes.
        #[test]
        fn matrix_fit_equals_naive_fit(
            raw in proptest::collection::vec(
                proptest::collection::vec(-100.0f32..100.0, 3),
                1..40,
            ),
            k in 1usize..7,
            seed in 0u64..1000,
            batch in 1usize..12,
            iterations in 0usize..12,
        ) {
            let cfg = MiniBatchKMeansConfig { k, batch_size: batch, iterations, seed };
            let fast = MiniBatchKMeans::new(cfg.clone()).fit(&raw);
            let slow = naive_fit(&cfg, &raw);
            proptest::prop_assert_eq!(fast.assignments, slow.assignments);
            proptest::prop_assert_eq!(fast.centers, slow.centers);
        }

        // Seeding and fitting never panic for feature values anywhere in
        // the f32 range, including magnitudes whose squared distances
        // overflow to +inf.
        #[test]
        fn kmeanspp_survives_extreme_feature_values(
            raw in proptest::collection::vec(
                proptest::collection::vec(-3.4e38f32..3.4e38f32, 2),
                1..24,
            ),
            k in 1usize..6,
            seed in 0u64..1000,
        ) {
            let fit = MiniBatchKMeans::new(MiniBatchKMeansConfig {
                k,
                batch_size: 8,
                iterations: 5,
                seed,
            })
            .fit(&raw);
            let want_k = k.min(raw.len());
            proptest::prop_assert_eq!(fit.centers.len(), want_k);
            proptest::prop_assert_eq!(fit.assignments.len(), raw.len());
            proptest::prop_assert!(fit.assignments.iter().all(|&a| a < want_k));
        }
    }
}
