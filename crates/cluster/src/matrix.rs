//! Contiguous row-major feature matrices and the cache-blocked distance
//! kernels shared by mini-batch k-means and HDBSCAN.
//!
//! The kernels here are *exactly* equivalent to their naive counterparts
//! ([`crate::kmeans::sq_dist`] / [`crate::kmeans::nearest_center`] and the
//! per-pair Euclidean closure HDBSCAN used to pass to `fit_with`): each
//! point×center (or point×point) distance is accumulated dimension by
//! dimension in the same order with the same float types, and ties resolve
//! to the lowest index via the same strict `<` comparison. Blocking only
//! changes *which pair* is computed next, never the arithmetic of a pair —
//! so results are bit-identical, which the proptests in this module pin.
//! (The ‖x‖² + ‖c‖² − 2x·c expansion was deliberately rejected: it changes
//! f32 rounding and would break the exact-equivalence contract; see
//! DESIGN.md "Performance contract".)

use crate::budget::{check_budget, dense_matrix_bytes, ScaleError};
use crate::kmeans::sq_dist;

/// Rows of points per cache block in [`nearest_centers_blocked`].
const ROW_BLOCK: usize = 64;
/// Centers per cache block in [`nearest_centers_blocked`].
const CENTER_BLOCK: usize = 8;

/// A dense row-major point matrix: `n` points of `dim` f32 features in one
/// contiguous allocation.
#[derive(Debug, Clone, Default)]
pub struct PointMatrix {
    n: usize,
    dim: usize,
    data: Vec<f32>,
}

impl PointMatrix {
    /// An empty matrix ready to receive `n` rows of `dim` features via
    /// [`PointMatrix::push_row`].
    pub fn with_capacity(n: usize, dim: usize) -> Self {
        Self { n: 0, dim, data: Vec::with_capacity(n * dim) }
    }

    /// Copies a slice-of-rows representation into a contiguous matrix.
    ///
    /// # Panics
    /// Panics if rows have unequal dimensions.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut m = Self::with_capacity(rows.len(), dim);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "PointMatrix: row dimension mismatch");
        self.data.extend_from_slice(row);
        self.n += 1;
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Point `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// For each listed row, the index of its nearest center by squared
/// Euclidean distance (ties to the lowest center index) — bit-identical
/// to calling [`crate::kmeans::nearest_center`] per row, but iterating in
/// cache blocks over the contiguous matrix and a flattened center array.
pub fn nearest_centers_blocked(
    points: &PointMatrix,
    rows: &[usize],
    centers: &[Vec<f32>],
) -> Vec<usize> {
    let dim = points.dim();
    let k = centers.len();
    // Flatten centers once so the inner loop reads two contiguous slices.
    let mut flat: Vec<f32> = Vec::with_capacity(k * dim);
    for c in centers {
        assert_eq!(c.len(), dim, "nearest_centers_blocked: center dimension mismatch");
        flat.extend_from_slice(c);
    }

    let mut best = vec![0usize; rows.len()];
    let mut best_d = vec![f32::INFINITY; rows.len()];
    for row_block in (0..rows.len()).step_by(ROW_BLOCK) {
        let row_end = (row_block + ROW_BLOCK).min(rows.len());
        // Ascending center order across and within blocks keeps the
        // strict `<` tie rule identical to the per-point reference.
        for center_block in (0..k).step_by(CENTER_BLOCK) {
            let center_end = (center_block + CENTER_BLOCK).min(k);
            for r in row_block..row_end {
                let p = points.row(rows[r]);
                for c in center_block..center_end {
                    let d = sq_dist(p, &flat[c * dim..(c + 1) * dim]);
                    if d < best_d[r] {
                        best_d[r] = d;
                        best[r] = c;
                    }
                }
            }
        }
    }
    best
}

/// Full symmetric pairwise Euclidean distance matrix (`n × n`, row-major).
///
/// Each pair is computed once with the exact per-pair arithmetic HDBSCAN's
/// point interface has always used — f32 subtraction widened to f64,
/// squared, summed in dimension order, then `sqrt` — and mirrored
/// (subtraction is sign-exact, so `d(a,b) == d(b,a)` bit for bit).
pub fn pairwise_euclidean(points: &PointMatrix) -> Vec<f64> {
    pairwise_euclidean_with(points, &matelda_exec::Executor::single())
}

/// [`pairwise_euclidean_with`] behind the memory budget: the `n × n`
/// f64 matrix is only allocated if it fits, otherwise a structured
/// [`ScaleError`] comes back before a byte is touched. All pairwise
/// materializations route through here — the unbudgeted names are
/// `budget: None` wrappers.
pub fn try_pairwise_euclidean_with(
    points: &PointMatrix,
    exec: &matelda_exec::Executor,
    budget: Option<u64>,
) -> Result<Vec<f64>, ScaleError> {
    check_budget("pairwise distance matrix", dense_matrix_bytes(points.n()), budget)?;
    Ok(pairwise_euclidean_unchecked(points, exec))
}

/// Row-block size of the parallel pairwise build: big enough that a
/// block's upper-triangle work dwarfs its merge cost, small enough that
/// the executor's range stealing can rebalance the triangle's skew
/// (early rows carry `n − i − 1` pairs, late rows almost none).
const PAIRWISE_ROW_BLOCK: usize = 32;

/// [`pairwise_euclidean`] scheduled over row blocks on `exec`.
///
/// Each block computes its rows' upper-triangle segments independently
/// (per-pair arithmetic untouched), and the caller merges + mirrors in
/// row order — so the matrix is bit-identical to the serial build at
/// every thread count, which the proptests below pin.
pub fn pairwise_euclidean_with(points: &PointMatrix, exec: &matelda_exec::Executor) -> Vec<f64> {
    try_pairwise_euclidean_with(points, exec, None).expect("no budget")
}

fn pairwise_euclidean_unchecked(points: &PointMatrix, exec: &matelda_exec::Executor) -> Vec<f64> {
    let n = points.n();
    if n == 0 {
        return Vec::new();
    }
    let n_blocks = n.div_ceil(PAIRWISE_ROW_BLOCK);
    let blocks = exec.map_n(n_blocks, |b| {
        let lo = b * PAIRWISE_ROW_BLOCK;
        let hi = (lo + PAIRWISE_ROW_BLOCK).min(n);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            let a = points.row(i);
            let mut row = Vec::with_capacity(n - i - 1);
            for j in (i + 1)..n {
                row.push(euclidean(a, points.row(j)));
            }
            rows.push(row);
        }
        rows
    });
    let mut out = vec![0.0f64; n * n];
    for (b, rows) in blocks.into_iter().enumerate() {
        for (k, row) in rows.into_iter().enumerate() {
            let i = b * PAIRWISE_ROW_BLOCK + k;
            for (off, d) in row.into_iter().enumerate() {
                let j = i + 1 + off;
                out[i * n + j] = d;
                out[j * n + i] = d;
            }
        }
    }
    out
}

/// Euclidean distance with f64 accumulation over f32 coordinates — the
/// per-pair arithmetic shared by HDBSCAN's distance construction.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: dimension mismatch ({} vs {})", a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x - *y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::nearest_center;

    #[test]
    fn parallel_pairwise_is_bit_identical_to_serial() {
        // Spans several row blocks so the parallel build actually fans
        // out; the matrix must match the single-thread build exactly.
        let pts: Vec<Vec<f32>> = (0..70)
            .map(|i| vec![(i as f32).sin() * 10.0, (i as f32 * 0.7).cos() * 5.0, i as f32])
            .collect();
        let m = PointMatrix::from_rows(&pts);
        let base = pairwise_euclidean(&m);
        for threads in [2, 4, 8] {
            let exec = matelda_exec::Executor::new(threads);
            assert_eq!(pairwise_euclidean_with(&m, &exec), base, "threads={threads}");
        }
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = PointMatrix::from_rows(&rows);
        assert_eq!(m.n(), 3);
        assert_eq!(m.dim(), 2);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(m.row(i), r.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn ragged_rows_panic() {
        let _ = PointMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn blocked_ties_go_to_lowest_center() {
        // Two identical centers: every point must pick index 0.
        let m = PointMatrix::from_rows(&[vec![5.0f32, 5.0], vec![-1.0, 2.0]]);
        let centers = vec![vec![0.0f32, 0.0], vec![0.0, 0.0]];
        let rows: Vec<usize> = (0..m.n()).collect();
        assert_eq!(nearest_centers_blocked(&m, &rows, &centers), vec![0, 0]);
    }

    #[test]
    fn blocked_handles_more_rows_and_centers_than_one_block() {
        let rows_vec: Vec<Vec<f32>> =
            (0..200).map(|i| vec![(i % 17) as f32, (i % 5) as f32]).collect();
        let centers: Vec<Vec<f32>> = (0..19).map(|c| vec![c as f32, (c % 3) as f32]).collect();
        let m = PointMatrix::from_rows(&rows_vec);
        let idx: Vec<usize> = (0..m.n()).collect();
        let got = nearest_centers_blocked(&m, &idx, &centers);
        for (i, p) in rows_vec.iter().enumerate() {
            assert_eq!(got[i], nearest_center(p, &centers));
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        // The blocked kernel is pinned to the naive per-point reference:
        // identical nearest indices for arbitrary f32 inputs (including
        // values whose squared distances overflow to +inf).
        #[test]
        fn blocked_kernel_matches_naive_nearest_center(
            pts in proptest::collection::vec(
                proptest::collection::vec(-3.4e38f32..3.4e38f32, 3),
                1..80,
            ),
            centers in proptest::collection::vec(
                proptest::collection::vec(-3.4e38f32..3.4e38f32, 3),
                1..20,
            ),
        ) {
            let m = PointMatrix::from_rows(&pts);
            let rows: Vec<usize> = (0..m.n()).collect();
            let got = nearest_centers_blocked(&m, &rows, &centers);
            for (i, p) in pts.iter().enumerate() {
                proptest::prop_assert_eq!(got[i], nearest_center(p, &centers));
            }
        }

        // The pairwise matrix is pinned to the original on-the-fly
        // closure: exact f64 equality, symmetric, zero diagonal.
        #[test]
        fn pairwise_matches_per_pair_reference(
            pts in proptest::collection::vec(
                proptest::collection::vec(-1e6f32..1e6f32, 2),
                1..30,
            ),
        ) {
            let n = pts.len();
            let m = PointMatrix::from_rows(&pts);
            let pd = pairwise_euclidean(&m);
            let reference = |a: usize, b: usize| {
                pts[a]
                    .iter()
                    .zip(&pts[b])
                    .map(|(x, y)| {
                        let d = (*x - *y) as f64;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            };
            for i in 0..n {
                for j in 0..n {
                    proptest::prop_assert_eq!(pd[i * n + j], reference(i, j));
                    proptest::prop_assert_eq!(pd[i * n + j], pd[j * n + i]);
                }
            }
        }
    }
}
