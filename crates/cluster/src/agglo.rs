//! Average-linkage agglomerative clustering with a fixed cluster count.
//!
//! Used by the Raha baseline (the Raha paper clusters each column's cells
//! hierarchically and cuts the dendrogram at the labeling budget) and
//! available as the "hierarchical clustering of prior work" alternative the
//! paper contrasts with mini-batch k-means in §3.3.2.

/// Clusters `n` items into (at most) `k` clusters using average linkage on
/// the given distance function. Returns dense labels `0..k'`, `k' <= k`.
///
/// Naive O(n³) implementation — Raha applies it per column, where n is the
/// number of rows of one table, which keeps this comfortably fast.
pub fn agglomerative(n: usize, k: usize, dist: impl Fn(usize, usize) -> f64) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    // Active cluster list: member indices per cluster.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    // Pairwise item distances, cached once.
    let d: Vec<Vec<f64>> =
        (0..n).map(|i| (0..n).map(|j| if i == j { 0.0 } else { dist(i, j) }).collect()).collect();

    let avg = |a: &[usize], b: &[usize]| -> f64 {
        let mut s = 0.0;
        for &x in a {
            for &y in b {
                s += d[x][y];
            }
        }
        s / (a.len() * b.len()) as f64
    };

    while clusters.len() > k {
        // Find the closest pair under average linkage; ties break to the
        // lexicographically smallest (i, j) for determinism.
        let mut best = (0usize, 1usize);
        let mut best_d = f64::INFINITY;
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let dd = avg(&clusters[i], &clusters[j]);
                if dd < best_d {
                    best_d = dd;
                    best = (i, j);
                }
            }
        }
        let merged = clusters.remove(best.1);
        clusters[best.0].extend(merged);
    }

    let mut labels = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &m in members {
            labels[m] = c;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_degenerate() {
        assert!(agglomerative(0, 3, |_, _| 0.0).is_empty());
        assert_eq!(agglomerative(1, 3, |_, _| 0.0), vec![0]);
        // k = 0 clamps to 1: everything in one cluster.
        assert_eq!(agglomerative(3, 0, |_, _| 1.0), vec![0, 0, 0]);
    }

    #[test]
    fn splits_line_into_two_groups() {
        let pos: [f64; 6] = [0.0, 0.1, 0.2, 9.0, 9.1, 9.2];
        let labels = agglomerative(6, 2, |a, b| (pos[a] - pos[b]).abs());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn k_equals_n_keeps_singletons() {
        let labels = agglomerative(4, 4, |_, _| 1.0);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic() {
        let pos: [f64; 5] = [0.0, 5.0, 5.1, 10.0, 0.2];
        let l1 = agglomerative(5, 3, |a, b| (pos[a] - pos[b]).abs());
        let l2 = agglomerative(5, 3, |a, b| (pos[a] - pos[b]).abs());
        assert_eq!(l1, l2);
    }
}
