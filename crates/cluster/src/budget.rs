//! Byte budgets for the O(n²) materializations in this crate.
//!
//! HDBSCAN's point interface builds two dense `n × n` f64 matrices (the
//! pairwise distances and the mutual-reachability matrix). At toy lake
//! sizes that is noise; at the scale tiers it is the single allocation
//! that kills the process — silently, via the OOM killer, with no
//! degradation path. Every dense materialization therefore goes through
//! [`check_budget`] first: when a configured budget would be blown the
//! caller gets a structured [`ScaleError`] *before* the allocation is
//! attempted, and the engine's fault policy decides what degrades
//! (DESIGN.md §14). An absent budget (`None`) preserves the historical
//! unchecked behavior bit for bit.

use std::fmt;

/// A dense materialization would exceed the configured memory budget.
///
/// This is a *planning* error: nothing was allocated, no work was lost,
/// and the caller can degrade (skip the fold, fall back to a coarser
/// strategy) exactly as it would for an injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleError {
    /// What was about to be materialized (e.g. `"hdbscan pairwise matrix"`).
    pub what: &'static str,
    /// Bytes the materialization needs.
    pub needed_bytes: u64,
    /// The budget it would blow.
    pub budget_bytes: u64,
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} needs {} bytes, over the {}-byte memory budget",
            self.what, self.needed_bytes, self.budget_bytes
        )
    }
}

impl std::error::Error for ScaleError {}

/// Bytes of one dense `n × n` f64 matrix (saturating — a size that
/// overflows `u64` is over every budget anyway).
pub fn dense_matrix_bytes(n: usize) -> u64 {
    (n as u64).saturating_mul(n as u64).saturating_mul(8)
}

/// Passes iff `needed_bytes` fits in `budget` (or there is no budget).
pub fn check_budget(
    what: &'static str,
    needed_bytes: u64,
    budget: Option<u64>,
) -> Result<(), ScaleError> {
    match budget {
        Some(limit) if needed_bytes > limit => {
            Err(ScaleError { what, needed_bytes, budget_bytes: limit })
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_budget_always_passes() {
        assert_eq!(check_budget("m", u64::MAX, None), Ok(()));
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        assert_eq!(check_budget("m", 100, Some(100)), Ok(()));
        let err = check_budget("m", 101, Some(100)).unwrap_err();
        assert_eq!(err.needed_bytes, 101);
        assert_eq!(err.budget_bytes, 100);
        assert!(err.to_string().contains("101 bytes"));
    }

    #[test]
    fn dense_matrix_bytes_saturates_instead_of_wrapping() {
        assert_eq!(dense_matrix_bytes(0), 0);
        assert_eq!(dense_matrix_bytes(1000), 8_000_000);
        assert_eq!(dense_matrix_bytes(usize::MAX), u64::MAX);
    }
}
