//! Single-linkage dendrogram machinery: union-find and the scipy-style
//! merge list shared by HDBSCAN and the agglomerative fallback.

/// Disjoint-set with path compression and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new root, or `None` if
    /// they were already joined.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        Some(big)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

/// One merge of a single-linkage dendrogram. Leaves are `0..n`; merge `i`
/// creates internal node `n + i` (scipy convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance of this merge.
    pub distance: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// Builds a single-linkage dendrogram from edges sorted ascending by
/// weight. `edges` must connect all `n` nodes (an MST does).
///
/// # Panics
/// Panics if the edges do not connect the graph.
pub fn single_linkage(n: usize, sorted_edges: &[(usize, usize, f64)]) -> Vec<Merge> {
    if n <= 1 {
        return Vec::new();
    }
    let mut uf = UnionFind::new(2 * n - 1);
    // node_of[root] = current dendrogram node id for that set.
    let mut node_of: Vec<usize> = (0..2 * n - 1).collect();
    let mut merges = Vec::with_capacity(n - 1);
    let mut next_node = n;
    for &(a, b, d) in sorted_edges {
        let (ra, rb) = (uf.find(a), uf.find(b));
        if ra == rb {
            continue;
        }
        let (na, nb) = (node_of[ra], node_of[rb]);
        let size = uf.set_size(a) + uf.set_size(b);
        let root = uf.union(a, b).expect("distinct roots merge");
        node_of[root] = next_node;
        merges.push(Merge { left: na, right: nb, distance: d, size });
        next_node += 1;
    }
    assert_eq!(merges.len(), n - 1, "edges do not span all {n} points");
    merges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_merges_and_sizes() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_size(0), 1);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(0, 1).is_none());
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
        uf.union(2, 3);
        uf.union(1, 3);
        assert_eq!(uf.set_size(0), 4);
    }

    #[test]
    fn linkage_on_chain() {
        // 0 -1- 1 -2- 2: merges at 1 then 2.
        let merges = single_linkage(3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        assert_eq!(merges.len(), 2);
        assert_eq!(merges[0].distance, 1.0);
        assert_eq!(merges[0].size, 2);
        assert_eq!(merges[1].size, 3);
        // Second merge joins node 3 (the first merge) with leaf 2.
        assert!(merges[1].left == 3 || merges[1].right == 3);
    }

    #[test]
    fn linkage_trivial_sizes() {
        assert!(single_linkage(0, &[]).is_empty());
        assert!(single_linkage(1, &[]).is_empty());
        let m = single_linkage(2, &[(0, 1, 0.5)]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].size, 2);
    }

    #[test]
    #[should_panic(expected = "edges do not span")]
    fn disconnected_edges_panic() {
        let _ = single_linkage(3, &[(0, 1, 1.0)]);
    }
}
