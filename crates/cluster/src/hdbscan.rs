//! HDBSCAN* — hierarchical density-based clustering (Campello, Moulavi,
//! Zimek, Sander 2015), implemented in full:
//!
//! 1. core distances (k-NN with `k = min_samples`, self included),
//! 2. mutual-reachability distances,
//! 3. minimum spanning tree over the mutual-reachability graph (Prim,
//!    dense O(n²) — the paper clusters *tables*, so n is at most a few
//!    thousand),
//! 4. single-linkage dendrogram,
//! 5. condensed tree with `min_cluster_size`,
//! 6. excess-of-mass (EOM) cluster extraction by stability.
//!
//! The paper's domain folding runs this with `min_cluster_size = 2`
//! (§4.1.3); outlying tables come back as [`NOISE`] and are promoted to
//! singleton domain folds by the pipeline.

use crate::budget::{check_budget, dense_matrix_bytes, ScaleError};
use crate::linkage::{single_linkage, Merge};
use crate::matrix::{pairwise_euclidean_with, PointMatrix};
use matelda_exec::Executor;

/// Label for points not assigned to any cluster.
pub const NOISE: isize = -1;

/// HDBSCAN configuration.
#[derive(Debug, Clone)]
pub struct HdbscanConfig {
    /// Smallest size a condensed cluster may have. The paper sets 2.
    pub min_cluster_size: usize,
    /// Neighborhood size for core distances; `None` means
    /// `min_cluster_size` (the library default).
    pub min_samples: Option<usize>,
    /// If true, the dendrogram root itself may be selected when it is the
    /// most stable cluster (library's `allow_single_cluster`).
    pub allow_single_cluster: bool,
}

impl Default for HdbscanConfig {
    fn default() -> Self {
        Self { min_cluster_size: 2, min_samples: None, allow_single_cluster: false }
    }
}

/// The HDBSCAN* estimator.
///
/// ```
/// use matelda_cluster::{Hdbscan, NOISE};
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![9.0, 9.0], vec![9.1, 9.0], vec![9.0, 9.1],
///     vec![100.0, -50.0], // loner
/// ];
/// let labels = Hdbscan::default().fit_points(&points);
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[3]);
/// assert_eq!(labels[6], NOISE);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Hdbscan {
    config: HdbscanConfig,
}

/// One edge of the condensed tree.
#[derive(Debug, Clone, Copy)]
struct CondensedEdge {
    parent: usize,
    child: usize,
    lambda: f64,
    size: usize,
}

impl Hdbscan {
    /// Creates an estimator with the given configuration.
    pub fn new(config: HdbscanConfig) -> Self {
        Self { config }
    }

    /// Clusters `n` items given a pairwise distance function. Returns one
    /// label per item; unclustered items get [`NOISE`]. Cluster labels are
    /// dense `0..k` and deterministic.
    pub fn fit_with(&self, n: usize, dist: impl Fn(usize, usize) -> f64 + Sync) -> Vec<isize> {
        self.fit_with_exec(n, dist, &Executor::single())
    }

    /// [`Hdbscan::fit_with`] with the distance-construction hot spots —
    /// core distances and the mutual-reachability matrix — built in
    /// parallel over row blocks on `exec`. Per-row arithmetic is
    /// untouched and rows merge in index order, so labels are
    /// bit-identical at every thread count (Prim's edge selection itself
    /// stays sequential: each step consumes the previous one's tree).
    pub fn fit_with_exec(
        &self,
        n: usize,
        dist: impl Fn(usize, usize) -> f64 + Sync,
        exec: &Executor,
    ) -> Vec<isize> {
        self.try_fit_with_exec(n, dist, exec, None).expect("no budget")
    }

    /// [`Hdbscan::fit_with_exec`] behind the memory budget: the fit
    /// materializes one dense `n × n` f64 mutual-reachability matrix, so
    /// the check covers it before allocation. Over budget the caller
    /// gets a [`ScaleError`] to degrade on; within budget the labels are
    /// bit-identical to the unbudgeted path.
    pub fn try_fit_with_exec(
        &self,
        n: usize,
        dist: impl Fn(usize, usize) -> f64 + Sync,
        exec: &Executor,
        budget: Option<u64>,
    ) -> Result<Vec<isize>, ScaleError> {
        check_budget("hdbscan mutual-reachability matrix", dense_matrix_bytes(n), budget)?;
        Ok(self.fit_with_exec_unchecked(n, dist, exec))
    }

    fn fit_with_exec_unchecked(
        &self,
        n: usize,
        dist: impl Fn(usize, usize) -> f64 + Sync,
        exec: &Executor,
    ) -> Vec<isize> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![NOISE];
        }
        let mcs = self.config.min_cluster_size.max(2);
        let min_samples = self.config.min_samples.unwrap_or(mcs).max(1).min(n);

        // 1. Core distances: distance to the min_samples-th nearest
        // neighbor, counting the point itself at distance 0.
        let core = core_distances(n, &dist, min_samples, exec);

        // 2+3. MST over mutual reachability. The n×n reachability matrix
        // is materialized in parallel row blocks (each cell is
        // `max(dist, core[a], core[b])` — exact, order-free), then Prim
        // runs over cheap lookups.
        let mreach = mutual_reachability(n, &dist, &core, exec);
        let mut edges = prim_mst(n, |a, b| mreach[a * n + b]);
        edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances"));

        // 4. Single-linkage dendrogram.
        let merges = single_linkage(n, &edges);

        // 5. Condensed tree.
        let condensed = condense(n, &merges, mcs);

        // 6. Stability + EOM extraction.
        extract_eom(n, &condensed, self.config.allow_single_cluster)
    }

    /// Clusters points under Euclidean distance.
    ///
    /// The full pairwise matrix is materialized once up front (same
    /// per-pair arithmetic as before, each pair computed a single time)
    /// instead of re-deriving distances on the fly inside core-distance
    /// and MST construction, which visits every pair more than once.
    pub fn fit_points(&self, points: &[Vec<f32>]) -> Vec<isize> {
        self.fit_points_with(points, &Executor::single())
    }

    /// [`Hdbscan::fit_points`] with the pairwise matrix, core distances
    /// and mutual-reachability build scheduled over `PointMatrix` row
    /// blocks on `exec`. Bit-identical to the serial path at every
    /// thread count.
    pub fn fit_points_with(&self, points: &[Vec<f32>], exec: &Executor) -> Vec<isize> {
        self.try_fit_points_with(points, exec, None).expect("no budget")
    }

    /// [`Hdbscan::fit_points_with`] behind the memory budget. The point
    /// interface materializes *two* dense `n × n` f64 matrices (pairwise
    /// distances here, mutual reachability inside the fit), so the check
    /// covers both before either is allocated; over budget, the caller
    /// gets a [`ScaleError`] and decides how to degrade — same labels as
    /// the unbudgeted path whenever the budget passes.
    pub fn try_fit_points_with(
        &self,
        points: &[Vec<f32>],
        exec: &Executor,
        budget: Option<u64>,
    ) -> Result<Vec<isize>, ScaleError> {
        let n = points.len();
        check_budget(
            "hdbscan pairwise + mutual-reachability matrices",
            dense_matrix_bytes(n).saturating_mul(2),
            budget,
        )?;
        let pd = pairwise_euclidean_with(&PointMatrix::from_rows(points), exec);
        Ok(self.fit_with_exec(n, |a, b| pd[a * n + b], exec))
    }
}

/// Row-block size for the parallel core-distance and mutual-reachability
/// builds: each block's rows are independent, so results merge in row
/// order and match the serial loop bit for bit.
const HDBSCAN_ROW_BLOCK: usize = 32;

fn core_distances(
    n: usize,
    dist: &(impl Fn(usize, usize) -> f64 + Sync),
    k: usize,
    exec: &Executor,
) -> Vec<f64> {
    let n_blocks = n.div_ceil(HDBSCAN_ROW_BLOCK);
    let blocks = exec.map_n(n_blocks, |b| {
        let lo = b * HDBSCAN_ROW_BLOCK;
        let hi = (lo + HDBSCAN_ROW_BLOCK).min(n);
        let mut out = Vec::with_capacity(hi - lo);
        let mut row = vec![0.0f64; n];
        for i in lo..hi {
            for (j, r) in row.iter_mut().enumerate() {
                *r = if i == j { 0.0 } else { dist(i, j) };
            }
            // k-th smallest including self (k >= 1).
            let kth = k - 1;
            row.select_nth_unstable_by(kth, |a, b| a.partial_cmp(b).expect("finite"));
            out.push(row[kth]);
        }
        out
    });
    blocks.concat()
}

/// Materializes the mutual-reachability matrix `max(dist(a,b), core[a],
/// core[b])` in parallel row blocks. `max` over identical inputs is
/// exact, so the matrix (and everything downstream) is thread-count
/// independent.
fn mutual_reachability(
    n: usize,
    dist: &(impl Fn(usize, usize) -> f64 + Sync),
    core: &[f64],
    exec: &Executor,
) -> Vec<f64> {
    let n_blocks = n.div_ceil(HDBSCAN_ROW_BLOCK);
    let blocks = exec.map_n(n_blocks, |b| {
        let lo = b * HDBSCAN_ROW_BLOCK;
        let hi = (lo + HDBSCAN_ROW_BLOCK).min(n);
        let mut rows = vec![0.0f64; (hi - lo) * n];
        for i in lo..hi {
            let row = &mut rows[(i - lo) * n..(i - lo + 1) * n];
            for (j, r) in row.iter_mut().enumerate() {
                *r = if i == j { 0.0 } else { dist(i, j).max(core[i]).max(core[j]) };
            }
        }
        rows
    });
    blocks.concat()
}

/// Dense Prim's algorithm; returns the n-1 MST edges.
fn prim_mst(n: usize, dist: impl Fn(usize, usize) -> f64) -> Vec<(usize, usize, f64)> {
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for j in 1..n {
        best[j] = dist(0, j);
        best_from[j] = 0;
    }
    for _ in 1..n {
        let (next, _) = best
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("unvisited node remains");
        in_tree[next] = true;
        edges.push((best_from[next], next, best[next]));
        for j in 0..n {
            if !in_tree[j] {
                let d = dist(next, j);
                if d < best[j] {
                    best[j] = d;
                    best_from[j] = next;
                }
            }
        }
    }
    edges
}

/// Converts a merge distance to a density lambda, guarding zero distances.
fn lambda_of(distance: f64) -> f64 {
    if distance <= 1e-12 {
        1e12
    } else {
        1.0 / distance
    }
}

/// Condenses the single-linkage dendrogram: splits that produce two
/// children of size >= `mcs` become new clusters; smaller children "fall
/// out" of the parent cluster point by point.
fn condense(n: usize, merges: &[Merge], mcs: usize) -> Vec<CondensedEdge> {
    let root = 2 * n - 2; // scipy node id of the last merge
    let node_size = |node: usize| if node < n { 1 } else { merges[node - n].size };
    let leaves_under = |node: usize| -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if x < n {
                out.push(x);
            } else {
                let m = merges[x - n];
                stack.push(m.left);
                stack.push(m.right);
            }
        }
        out
    };

    let mut condensed = Vec::new();
    let mut next_label = n + 1;
    // (dendrogram node, condensed label of the cluster it belongs to)
    let mut stack: Vec<(usize, usize)> = vec![(root, n)];
    while let Some((node, label)) = stack.pop() {
        if node < n {
            continue;
        }
        let m = merges[node - n];
        let lambda = lambda_of(m.distance);
        let (ls, rs) = (node_size(m.left), node_size(m.right));
        match (ls >= mcs, rs >= mcs) {
            (true, true) => {
                let (cl, cr) = (next_label, next_label + 1);
                next_label += 2;
                condensed.push(CondensedEdge { parent: label, child: cl, lambda, size: ls });
                condensed.push(CondensedEdge { parent: label, child: cr, lambda, size: rs });
                stack.push((m.left, cl));
                stack.push((m.right, cr));
            }
            (true, false) => {
                for p in leaves_under(m.right) {
                    condensed.push(CondensedEdge { parent: label, child: p, lambda, size: 1 });
                }
                stack.push((m.left, label));
            }
            (false, true) => {
                for p in leaves_under(m.left) {
                    condensed.push(CondensedEdge { parent: label, child: p, lambda, size: 1 });
                }
                stack.push((m.right, label));
            }
            (false, false) => {
                for p in leaves_under(m.left).into_iter().chain(leaves_under(m.right)) {
                    condensed.push(CondensedEdge { parent: label, child: p, lambda, size: 1 });
                }
            }
        }
    }
    condensed
}

/// Excess-of-mass cluster extraction: computes stabilities over the
/// condensed tree, selects the most stable antichain, labels points.
fn extract_eom(n: usize, condensed: &[CondensedEdge], allow_single_cluster: bool) -> Vec<isize> {
    if condensed.is_empty() {
        return vec![NOISE; n];
    }
    let max_label = condensed.iter().map(|e| e.parent.max(e.child)).max().expect("non-empty") + 1;

    // Birth lambda of each cluster: lambda of the edge that created it;
    // the root (cluster n) is born at lambda 0.
    let mut birth = vec![0.0f64; max_label];
    let mut parent_of = vec![usize::MAX; max_label];
    for e in condensed {
        if e.child >= n {
            birth[e.child] = e.lambda;
            parent_of[e.child] = e.parent;
        }
    }

    // Stability: sum over departing mass of (lambda_departure - birth).
    let mut stability = vec![0.0f64; max_label];
    for e in condensed {
        stability[e.parent] += e.size as f64 * (e.lambda - birth[e.parent]);
    }

    // Children clusters of each cluster.
    let mut cluster_children: Vec<Vec<usize>> = vec![Vec::new(); max_label];
    for e in condensed {
        if e.child >= n {
            cluster_children[e.parent].push(e.child);
        }
    }

    // Bottom-up EOM: condensed labels are assigned increasing with depth,
    // so descending id order visits children before parents.
    let mut selected = vec![false; max_label];
    let mut propagated = vec![0.0f64; max_label];
    for c in (n..max_label).rev() {
        let child_sum: f64 = cluster_children[c].iter().map(|&ch| propagated[ch]).sum();
        let is_root = c == n;
        if (!is_root || allow_single_cluster)
            && (cluster_children[c].is_empty() || stability[c] >= child_sum)
        {
            selected[c] = true;
            propagated[c] = stability[c].max(child_sum);
        } else {
            selected[c] = false;
            propagated[c] = child_sum;
        }
    }
    // Enforce an antichain: deselect descendants of selected clusters.
    for c in n..max_label {
        if selected[c] {
            let mut stack = cluster_children[c].clone();
            while let Some(d) = stack.pop() {
                selected[d] = false;
                stack.extend(cluster_children[d].iter().copied());
            }
        }
    }

    // Compact selected ids to 0..k in id order (deterministic).
    let mut compact = vec![NOISE; max_label];
    let mut k = 0isize;
    for c in n..max_label {
        if selected[c] {
            compact[c] = k;
            k += 1;
        }
    }

    // Each point belongs to the nearest selected ancestor of the cluster
    // it fell out of; no selected ancestor -> noise.
    let mut labels = vec![NOISE; n];
    for e in condensed {
        if e.child < n {
            let mut c = e.parent;
            labels[e.child] = loop {
                if selected[c] {
                    break compact[c];
                }
                if parent_of[c] == usize::MAX {
                    break NOISE;
                }
                c = parent_of[c];
            };
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f32, f32), k: usize, spread: f32) -> Vec<Vec<f32>> {
        // Deterministic ring of points around the center.
        (0..k)
            .map(|i| {
                let a = i as f32 * 2.399963; // golden angle: no collinearity
                vec![
                    center.0 + spread * (1.0 + 0.1 * i as f32) * a.cos(),
                    center.1 + spread * (1.0 + 0.1 * i as f32) * a.sin(),
                ]
            })
            .collect()
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let h = Hdbscan::default();
        assert!(h.fit_points(&[]).is_empty());
        assert_eq!(h.fit_points(&[vec![1.0, 2.0]]), vec![NOISE]);
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial_across_thread_counts() {
        // Large enough to span several row blocks of the parallel core /
        // reachability builds; includes noise points and two clusters.
        let mut pts = blob((0.0, 0.0), 40, 0.05);
        pts.extend(blob((10.0, 10.0), 40, 0.05));
        pts.push(vec![100.0, -50.0]);
        pts.push(vec![-80.0, 60.0]);
        let h = Hdbscan::new(HdbscanConfig { min_cluster_size: 4, ..Default::default() });
        let base = h.fit_points(&pts);
        for threads in [2, 4, 8] {
            let exec = Executor::new(threads);
            assert_eq!(h.fit_points_with(&pts, &exec), base, "threads={threads}");
        }
    }

    #[test]
    fn budgeted_fit_degrades_to_a_scale_error_instead_of_allocating() {
        let pts = blob((0.0, 0.0), 32, 0.05);
        let h = Hdbscan::default();
        // 32 points → two 32×32 f64 matrices = 16 KiB; a 1 KiB budget
        // must refuse before allocating either.
        let err = h.try_fit_points_with(&pts, &Executor::single(), Some(1024)).unwrap_err();
        assert_eq!(err.needed_bytes, 2 * 32 * 32 * 8);
        assert_eq!(err.budget_bytes, 1024);
        // A budget that fits changes nothing: labels bit-identical to
        // the unbudgeted path at several thread counts.
        let base = h.fit_points(&pts);
        for threads in [1, 2, 4] {
            let exec = Executor::new(threads);
            let labels = h.try_fit_points_with(&pts, &exec, Some(1 << 20)).unwrap();
            assert_eq!(labels, base, "threads={threads}");
        }
    }

    #[test]
    fn budgeted_fit_with_exec_checks_the_mutual_reachability_matrix() {
        let pts = blob((0.0, 0.0), 24, 0.05);
        let n = pts.len();
        let dist = |a: usize, b: usize| {
            let dx = (pts[a][0] - pts[b][0]) as f64;
            let dy = (pts[a][1] - pts[b][1]) as f64;
            (dx * dx + dy * dy).sqrt()
        };
        let h = Hdbscan::default();
        // One 24×24 f64 matrix = 4608 bytes; a budget one byte short
        // must refuse, the exact budget must pass (inclusive boundary).
        let err =
            h.try_fit_with_exec(n, dist, &Executor::single(), Some(24 * 24 * 8 - 1)).unwrap_err();
        assert_eq!(err.needed_bytes, 24 * 24 * 8);
        let base = h.fit_with_exec(n, dist, &Executor::single());
        let budgeted =
            h.try_fit_with_exec(n, dist, &Executor::single(), Some(24 * 24 * 8)).unwrap();
        assert_eq!(budgeted, base);
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut pts = blob((0.0, 0.0), 8, 0.05);
        pts.extend(blob((10.0, 10.0), 8, 0.05));
        let labels = Hdbscan::new(HdbscanConfig { min_cluster_size: 3, ..Default::default() })
            .fit_points(&pts);
        let a = labels[0];
        let b = labels[8];
        assert_ne!(a, NOISE);
        assert_ne!(b, NOISE);
        assert_ne!(a, b);
        assert!(labels[..8].iter().all(|&l| l == a), "{labels:?}");
        assert!(labels[8..].iter().all(|&l| l == b), "{labels:?}");
    }

    #[test]
    fn far_outlier_is_noise() {
        let mut pts = blob((0.0, 0.0), 10, 0.05);
        pts.extend(blob((10.0, 0.0), 10, 0.05));
        pts.push(vec![500.0, 500.0]);
        let labels = Hdbscan::new(HdbscanConfig { min_cluster_size: 4, ..Default::default() })
            .fit_points(&pts);
        assert_eq!(*labels.last().expect("non-empty"), NOISE, "{labels:?}");
        assert!(labels[..10].iter().all(|&l| l != NOISE));
    }

    #[test]
    fn min_cluster_size_two_pairs_tables() {
        // The paper's setting: clusters may be as small as two tables.
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![50.0, 50.0],
            vec![50.1, 50.0],
            vec![-80.0, 90.0], // loner
        ];
        let labels = Hdbscan::default().fit_points(&pts);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], NOISE);
        assert_eq!(labels[4], NOISE);
    }

    #[test]
    fn all_identical_points_single_cluster_when_allowed() {
        let pts = vec![vec![1.0, 1.0]; 6];
        let cfg = HdbscanConfig { allow_single_cluster: true, ..Default::default() };
        let labels = Hdbscan::new(cfg).fit_points(&pts);
        assert!(labels.iter().all(|&l| l == 0), "{labels:?}");
    }

    #[test]
    fn three_blobs_three_clusters() {
        let mut pts = blob((0.0, 0.0), 6, 0.1);
        pts.extend(blob((20.0, 0.0), 6, 0.1));
        pts.extend(blob((0.0, 20.0), 6, 0.1));
        let labels = Hdbscan::new(HdbscanConfig { min_cluster_size: 3, ..Default::default() })
            .fit_points(&pts);
        let distinct: std::collections::HashSet<_> =
            labels.iter().filter(|&&l| l != NOISE).collect();
        assert_eq!(distinct.len(), 3, "{labels:?}");
    }

    #[test]
    fn labels_are_dense_from_zero() {
        let mut pts = blob((0.0, 0.0), 5, 0.1);
        pts.extend(blob((30.0, 0.0), 5, 0.1));
        let labels = Hdbscan::new(HdbscanConfig { min_cluster_size: 3, ..Default::default() })
            .fit_points(&pts);
        let mut seen: Vec<isize> = labels.iter().copied().filter(|&l| l != NOISE).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn fit_with_custom_metric() {
        // Distance on a line given by index gaps.
        let d = |a: usize, b: usize| {
            let pos: [f64; 6] = [0.0, 0.2, 0.4, 10.0, 10.2, 10.4];
            pos[a] - pos[b]
        };
        let labels = Hdbscan::new(HdbscanConfig { min_cluster_size: 3, ..Default::default() })
            .fit_with(6, |a, b| d(a, b).abs());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }
}
