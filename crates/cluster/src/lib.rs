//! # matelda-cluster
//!
//! The clustering substrate for MaTElDa, implemented from scratch:
//!
//! * [`hdbscan`] — full HDBSCAN* (Campello et al. 2015): core distances →
//!   mutual reachability → MST → single-linkage dendrogram → condensed tree
//!   → excess-of-mass cluster extraction. Used for **domain-based cell
//!   folding** (paper §3.2, `min_cluster_size = 2`).
//! * [`kmeans`] — Mini-batch K-Means (Sculley 2010) with k-means++
//!   seeding and per-center learning rates. Used for **quality-based cell
//!   folding** (paper §3.3.2 / Alg. 1 line 13).
//! * [`agglo`] — average-linkage agglomerative clustering, used by the Raha
//!   baseline (which the Raha paper builds on hierarchical clustering) and
//!   as the hierarchical alternative the paper mentions in §3.3.2.
//! * [`linkage`] — the shared single-linkage dendrogram machinery
//!   (union-find, merge list).
//! * [`matrix`] — the contiguous row-major [`PointMatrix`] and the
//!   cache-blocked distance kernels shared by k-means assignment and
//!   HDBSCAN's pairwise construction (bit-identical to the naive paths).
//!
//! All entry points are deterministic given their seed.

pub mod agglo;
pub mod budget;
pub mod hdbscan;
pub mod kmeans;
pub mod linkage;
pub mod matrix;

pub use agglo::agglomerative;
pub use budget::{check_budget, dense_matrix_bytes, ScaleError};
pub use hdbscan::{Hdbscan, HdbscanConfig, NOISE};
pub use kmeans::{MiniBatchKMeans, MiniBatchKMeansConfig};
pub use matrix::PointMatrix;
