//! The storage VFS seam: every durability byte goes through a [`Vfs`].
//!
//! PR 3 proved the checkpoint layer against *crashes*; this module is
//! how the workspace proves it against a *hostile filesystem*. A
//! [`Vfs`] is a cloneable handle wrapping the handful of filesystem
//! operations durability code is allowed to perform — read, atomic
//! write, rename, remove, directory listing/creation — with three
//! orthogonal capabilities layered behind one `Option` branch:
//!
//! * **Fault injection.** A [`FaultInjector`] sees every operation
//!   (globally numbered, typed by [`IoOp`]) before it executes and may
//!   answer with a [`FaultKind`]: a plain errno (`ENOSPC`, `EIO`, …), a
//!   short write (half the bytes land, then the error), or a torn
//!   rename (a prefix of the payload appears under the *final* name —
//!   the fault class the commit protocol cannot prevent and the
//!   envelope checks must catch). Injection is how the fault-matrix
//!   audit enumerates "the Nth I/O operation fails" exhaustively.
//! * **Disk budget.** A [`Vfs::with_budget`] handle accounts every byte
//!   it puts under its root and refuses — with
//!   [`io::ErrorKind::StorageFull`] — any write that would exceed the
//!   budget. The accounting is conservative: while a commit is in
//!   flight both the tmp file and the old target are charged, so the
//!   bytes on disk never exceed the budget even transiently.
//!   [`Vfs::budget_release`] gives eviction layers (the serve state
//!   manager) their refund when they delete through the handle.
//! * **Bounded retry.** Transient errnos (`Interrupted`, `WouldBlock`,
//!   `TimedOut`) are retried up to [`TRANSIENT_RETRIES`] times inside
//!   [`Vfs::write_atomic`] and [`Vfs::read`]; anything else surfaces
//!   immediately. The retry count rides back on [`AtomicCommit`] so
//!   callers can log it.
//!
//! The plain handle ([`Vfs::real`], also `Default`) carries no state at
//! all and compiles down to the direct `std::fs` calls plus one
//! discriminant check — the `storage` section of `BENCH_stages.json`
//! holds the measured indirection under its 5% budget.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many times a transient errno is retried before it surfaces.
pub const TRANSIENT_RETRIES: u32 = 3;

/// The operation classes a [`FaultInjector`] can see (and fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Creating/opening a file for writing (the tmp file of a commit).
    Open,
    /// Reading a whole file.
    Read,
    /// Writing payload bytes to an open file.
    Write,
    /// `fsync` on a file.
    Sync,
    /// Renaming tmp → final.
    Rename,
    /// Removing a file or directory tree.
    Remove,
    /// Listing a directory.
    ReadDir,
    /// Creating a directory chain.
    CreateDir,
    /// Best-effort `fsync` on a directory.
    DirSync,
}

impl IoOp {
    /// Stable lowercase name (event payloads, test labels).
    pub fn name(self) -> &'static str {
        match self {
            IoOp::Open => "open",
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::Remove => "remove",
            IoOp::ReadDir => "read_dir",
            IoOp::CreateDir => "create_dir",
            IoOp::DirSync => "dir_sync",
        }
    }
}

/// What an injector can do to one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with this errno; the operation has no effect.
    Errno(io::ErrorKind),
    /// Only half the payload reaches the file, then `WriteZero`.
    /// Meaningful for [`IoOp::Write`]; other ops treat it as `EIO`.
    ShortWrite,
    /// The rename "succeeds partially": a prefix of the payload lands
    /// under the destination name, the tmp file is gone, and the caller
    /// sees `EIO`. Models a non-atomic filesystem — the case that only
    /// envelope validation, never the commit protocol, can catch.
    /// Meaningful for [`IoOp::Rename`]; other ops treat it as `EIO`.
    TornRename,
}

impl FaultKind {
    /// The errno surfaced to the caller when this fault fires.
    pub fn errno(self) -> io::ErrorKind {
        match self {
            FaultKind::Errno(k) => k,
            FaultKind::ShortWrite => io::ErrorKind::WriteZero,
            FaultKind::TornRename => io::ErrorKind::Other,
        }
    }
}

/// Decides, for each numbered operation, whether to inject a fault.
///
/// `n` is the handle's global 0-based operation index — stable for a
/// deterministic workload, which is what lets the fault-matrix audit
/// enumerate sites by first counting a clean run's operations.
pub trait FaultInjector: Send + Sync + fmt::Debug {
    /// `Some(fault)` makes operation `n` fail as described.
    fn inject(&self, n: u64, op: IoOp, path: &Path) -> Option<FaultKind>;
}

/// A [`FaultInjector`] that faults exactly one operation index.
#[derive(Debug)]
pub struct InjectAt {
    /// The operation index to fault.
    pub at: u64,
    /// What to do to it.
    pub kind: FaultKind,
    fired: AtomicU64,
}

impl InjectAt {
    /// Faults operation `at` with `kind`; every other op passes.
    pub fn new(at: u64, kind: FaultKind) -> Arc<InjectAt> {
        Arc::new(InjectAt { at, kind, fired: AtomicU64::new(0) })
    }

    /// How many times the fault actually fired (0 or 1 per run unless
    /// retries re-reach the same index — they cannot: indices are
    /// globally monotonic).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

impl FaultInjector for InjectAt {
    fn inject(&self, n: u64, _op: IoOp, _path: &Path) -> Option<FaultKind> {
        if n == self.at {
            self.fired.fetch_add(1, Ordering::Relaxed);
            Some(self.kind)
        } else {
            None
        }
    }
}

/// Shared byte accounting for one budgeted root.
#[derive(Debug)]
struct Budget {
    limit: u64,
    used: AtomicU64,
}

#[derive(Debug, Default)]
struct Instrumented {
    ops: AtomicU64,
    injector: Option<Arc<dyn FaultInjector>>,
    budget: Option<Budget>,
}

/// The storage handle. Cloning shares the op counter, injector and
/// budget, so one handle threads through store, cache and service
/// layers while faults and accounting stay globally coherent.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    inner: Option<Arc<Instrumented>>,
}

impl Vfs {
    /// The plain handle: direct `std::fs`, no counting, no faults, no
    /// budget. This is `Default` and what production runs use.
    pub fn real() -> Vfs {
        Vfs { inner: None }
    }

    /// A counting handle with no injector: operations execute normally
    /// but [`Vfs::op_count`] records how many there were — the site
    /// enumeration pass of the fault-matrix audit.
    pub fn recording() -> Vfs {
        Vfs { inner: Some(Arc::new(Instrumented::default())) }
    }

    /// A handle that consults `injector` before every operation.
    pub fn with_injector(injector: Arc<dyn FaultInjector>) -> Vfs {
        Vfs {
            inner: Some(Arc::new(Instrumented {
                ops: AtomicU64::new(0),
                injector: Some(injector),
                budget: None,
            })),
        }
    }

    /// A handle enforcing a byte budget, pre-charged with `used` bytes
    /// (what a scan of the root found already on disk). Writes that
    /// would push usage past `limit` fail with
    /// [`io::ErrorKind::StorageFull`] before touching the disk.
    pub fn with_budget(limit: u64, used: u64) -> Vfs {
        Vfs {
            inner: Some(Arc::new(Instrumented {
                ops: AtomicU64::new(0),
                injector: None,
                budget: Some(Budget { limit, used: AtomicU64::new(used) }),
            })),
        }
    }

    /// Operations executed through this handle (and its clones) so far.
    /// Always 0 on a plain [`Vfs::real`] handle.
    pub fn op_count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ops.load(Ordering::Relaxed))
    }

    /// Bytes currently charged against the budget (`None` without one).
    pub fn budget_used(&self) -> Option<u64> {
        Some(self.inner.as_ref()?.budget.as_ref()?.used.load(Ordering::Relaxed))
    }

    /// The budget limit (`None` without one).
    pub fn budget_limit(&self) -> Option<u64> {
        Some(self.inner.as_ref()?.budget.as_ref()?.limit)
    }

    /// Refunds `bytes` to the budget — called by eviction layers after
    /// deleting files *through this handle* ([`Vfs::remove_file`] and
    /// [`Vfs::remove_dir_all`] refund automatically; this is for
    /// callers that measured and removed some other way).
    pub fn budget_release(&self, bytes: u64) {
        if let Some(b) = self.inner.as_ref().and_then(|i| i.budget.as_ref()) {
            // Saturating: a release can race a concurrent scan re-charge,
            // and a budget that under-counts is safer than one that wraps.
            let mut cur = b.used.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(bytes);
                match b.used.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Charges `bytes` against the budget without performing I/O (the
    /// scan path when adopting pre-existing files). Infallible: adoption
    /// must reflect reality even when reality is over budget.
    pub fn budget_charge(&self, bytes: u64) {
        if let Some(b) = self.inner.as_ref().and_then(|i| i.budget.as_ref()) {
            b.used.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    fn try_reserve(&self, bytes: u64) -> io::Result<()> {
        let Some(b) = self.inner.as_ref().and_then(|i| i.budget.as_ref()) else {
            return Ok(());
        };
        let mut cur = b.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > b.limit {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    format!(
                        "disk budget exhausted: {cur} + {bytes} bytes exceeds the {} byte budget",
                        b.limit
                    ),
                ));
            }
            match b.used.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }

    /// The injection gate: numbers the operation, asks the injector.
    /// Returns the fault to apply, if any.
    fn gate(&self, op: IoOp, path: &Path) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        let n = inner.ops.fetch_add(1, Ordering::Relaxed);
        inner.injector.as_ref()?.inject(n, op, path)
    }

    fn gate_errno(&self, op: IoOp, path: &Path) -> io::Result<()> {
        match self.gate(op, path) {
            Some(fault) => Err(io::Error::new(
                fault.errno(),
                format!("injected {:?} at {} {}", fault, op.name(), path.display()),
            )),
            None => Ok(()),
        }
    }

    /// Reads a whole file, retrying transient errnos.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        retry_transient(|| {
            self.gate_errno(IoOp::Read, path)?;
            fs::read(path)
        })
        .map(|(bytes, _)| bytes)
    }

    /// Reads up to `len` bytes starting at `offset` (fewer at EOF, an
    /// empty vector past it), retrying transient errnos. Counts and
    /// faults as [`IoOp::Read`] — one gated operation per chunk — so
    /// out-of-core readers that pull a file through this method inherit
    /// the storage fault matrix site by site.
    pub fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        retry_transient(|| {
            self.gate_errno(IoOp::Read, path)?;
            let mut f = File::open(path)?;
            f.seek(SeekFrom::Start(offset))?;
            let mut buf = vec![0u8; len];
            let mut filled = 0;
            while filled < len {
                match f.read(&mut buf[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            buf.truncate(filled);
            Ok(buf)
        })
        .map(|(bytes, _)| bytes)
    }

    /// The byte length of a file, through the [`IoOp::Read`] gate (a
    /// chunked reader's size probe must be as injectable as its reads).
    pub fn file_len(&self, path: &Path) -> io::Result<u64> {
        retry_transient(|| {
            self.gate_errno(IoOp::Read, path)?;
            fs::metadata(path).map(|m| m.len())
        })
        .map(|(len, _)| len)
    }

    /// Removes one file, refunding its size to the budget.
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        self.gate_errno(IoOp::Remove, path)?;
        fs::remove_file(path)?;
        self.budget_release(len);
        Ok(())
    }

    /// Removes a directory tree, refunding its total file bytes.
    pub fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        let len = dir_bytes(path).unwrap_or(0);
        self.gate_errno(IoOp::Remove, path)?;
        fs::remove_dir_all(path)?;
        self.budget_release(len);
        Ok(())
    }

    /// `create_dir_all` through the gate.
    pub fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.gate_errno(IoOp::CreateDir, path)?;
        fs::create_dir_all(path)
    }

    /// Lists the entry paths of a directory (unsorted, files and dirs).
    pub fn read_dir_paths(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.gate_errno(IoOp::ReadDir, dir)?;
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    /// Commits `bytes` to `path` with the classic protocol — tmp,
    /// fsync, rename, best-effort directory fsync — every step through
    /// the injection gate and the budget.
    ///
    /// On success the target holds exactly `bytes`. On failure the
    /// target is untouched (except under an injected [`FaultKind::
    /// TornRename`], which deliberately plants a torn file there), and
    /// any `*.tmp` litter is left for the caller's scavenger — exactly
    /// what a crash would leave. Transient errnos restart the whole
    /// protocol up to [`TRANSIENT_RETRIES`] times.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<AtomicCommit> {
        let (dir_synced, retries) = retry_transient(|| self.write_atomic_once(path, bytes))?;
        Ok(AtomicCommit { dir_synced, retries })
    }

    fn write_atomic_once(&self, path: &Path, bytes: &[u8]) -> io::Result<bool> {
        let tmp = path.with_extension("tmp");
        // Conservative reservation: tmp and the old target coexist
        // until the rename lands, so the full new length is charged up
        // front and the old target refunded only after it is replaced.
        self.try_reserve(bytes.len() as u64)?;
        let replaced_len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let commit = (|| -> io::Result<bool> {
            self.gate_errno(IoOp::Open, &tmp)?;
            let mut f = File::create(&tmp)?;
            match self.gate(IoOp::Write, &tmp) {
                Some(FaultKind::ShortWrite) => {
                    // Half the payload lands, then the error — the torn
                    // state a real short write leaves in the tmp file.
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!("injected short write at {}", tmp.display()),
                    ));
                }
                Some(fault) => {
                    return Err(io::Error::new(
                        fault.errno(),
                        format!("injected {fault:?} at write {}", tmp.display()),
                    ));
                }
                None => f.write_all(bytes)?,
            }
            self.gate_errno(IoOp::Sync, &tmp)?;
            f.sync_all()?;
            drop(f);
            match self.gate(IoOp::Rename, path) {
                Some(FaultKind::TornRename) => {
                    // The fault class atomic commit cannot rule out: a
                    // prefix of the payload appears under the final
                    // name. Only envelope validation catches this.
                    let _ = fs::write(path, &bytes[..bytes.len() / 2]);
                    let _ = fs::remove_file(&tmp);
                    return Err(io::Error::other(format!(
                        "injected torn rename at {}",
                        path.display()
                    )));
                }
                Some(fault) => {
                    return Err(io::Error::new(
                        fault.errno(),
                        format!("injected {fault:?} at rename {}", path.display()),
                    ));
                }
                None => fs::rename(&tmp, path)?,
            }
            self.budget_release(replaced_len);
            // Persist the rename itself. Some filesystems refuse fsync
            // on a directory handle; the rename is still ordered after
            // the file data, so failure here only widens the crash
            // window, never corrupts — best-effort, but *observable*:
            // the caller gets the outcome and can count it.
            let dir_synced = match path.parent() {
                Some(parent) => {
                    self.gate(IoOp::DirSync, parent).is_none()
                        && File::open(parent).and_then(|d| d.sync_all()).is_ok()
                }
                None => false,
            };
            Ok(dir_synced)
        })();
        if commit.is_err() {
            // The reservation was for bytes that never became durable.
            self.budget_release(bytes.len() as u64);
        }
        commit
    }
}

/// What a successful [`Vfs::write_atomic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicCommit {
    /// Whether the best-effort directory fsync succeeded. `false` means
    /// the commit is on disk but the *rename* may not survive a power
    /// cut — callers count this (`ckpt.dirsync_failed`) instead of
    /// silently dropping it.
    pub dir_synced: bool,
    /// Transient-errno retries the commit needed (0 on the happy path).
    pub retries: u32,
}

/// The out-of-core table layer reads and writes through [`ChunkSource`]
/// (`matelda-table` cannot depend on this crate); plugging the `Vfs` in
/// here routes every chunked column read and columnar write of the
/// scale tier through the same injection gate, op counter and disk
/// budget as checkpoints — the storage fault matrix covers the
/// out-of-core path for free.
impl matelda_table::chunked::ChunkSource for Vfs {
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Vfs::file_len(self, path)
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        Vfs::read_range(self, path, offset, len)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        Vfs::write_atomic(self, path, bytes).map(|_| ())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        Vfs::create_dir_all(self, dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.read_dir_paths(dir)
    }
}

/// Whether an errno is worth an immediate bounded retry.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Runs `f`, retrying transient errnos up to [`TRANSIENT_RETRIES`]
/// times. Returns the value and how many retries it took.
fn retry_transient<T>(mut f: impl FnMut() -> io::Result<T>) -> io::Result<(T, u32)> {
    let mut retries = 0;
    loop {
        match f() {
            Ok(v) => return Ok((v, retries)),
            Err(e) if is_transient(e.kind()) && retries < TRANSIENT_RETRIES => retries += 1,
            Err(e) => return Err(e),
        }
    }
}

/// Total bytes of regular files under `dir`, recursively. Missing
/// entries (concurrent deletion) count as zero — sizing is advisory.
pub fn dir_bytes(dir: &Path) -> io::Result<u64> {
    let mut total = 0;
    let meta = fs::metadata(dir)?;
    if meta.is_file() {
        return Ok(meta.len());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        match fs::metadata(&path) {
            Ok(m) if m.is_dir() => total += dir_bytes(&path).unwrap_or(0),
            Ok(m) => total += m.len(),
            Err(_) => {}
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("matelda-vfs-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_handle_round_trips_and_counts_nothing() {
        let dir = temp_dir("real");
        let vfs = Vfs::real();
        let path = dir.join("a.bin");
        let commit = vfs.write_atomic(&path, b"payload").unwrap();
        assert_eq!(commit.retries, 0);
        assert_eq!(vfs.read(&path).unwrap(), b"payload");
        assert_eq!(vfs.op_count(), 0, "plain handle never counts");
        assert!(!path.with_extension("tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recording_handle_counts_every_op() {
        let dir = temp_dir("count");
        let vfs = Vfs::recording();
        vfs.write_atomic(&dir.join("a.bin"), b"x").unwrap();
        // open + write + sync + rename + dirsync = 5 ops per commit.
        assert_eq!(vfs.op_count(), 5);
        vfs.read(&dir.join("a.bin")).unwrap();
        assert_eq!(vfs.op_count(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_errno_leaves_target_untouched() {
        let dir = temp_dir("errno");
        let path = dir.join("a.bin");
        Vfs::real().write_atomic(&path, b"old contents").unwrap();
        for at in 0..4 {
            // ops 0..4 of the next commit: open, write, sync, rename.
            let inj = InjectAt::new(at, FaultKind::Errno(io::ErrorKind::StorageFull));
            let vfs = Vfs::with_injector(inj.clone());
            let err = vfs.write_atomic(&path, b"new contents").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::StorageFull, "site {at}");
            assert_eq!(inj.fired(), 1);
            assert_eq!(fs::read(&path).unwrap(), b"old contents", "site {at}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_torn_tmp_never_torn_target() {
        let dir = temp_dir("short");
        let path = dir.join("a.bin");
        let vfs = Vfs::with_injector(InjectAt::new(1, FaultKind::ShortWrite));
        let err = vfs.write_atomic(&path, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(!path.exists(), "target must not exist");
        assert_eq!(fs::read(path.with_extension("tmp")).unwrap(), b"01234", "torn tmp litter");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rename_plants_a_prefix_under_the_final_name() {
        let dir = temp_dir("torn");
        let path = dir.join("a.bin");
        let vfs = Vfs::with_injector(InjectAt::new(3, FaultKind::TornRename));
        vfs.write_atomic(&path, b"0123456789").unwrap_err();
        assert_eq!(fs::read(&path).unwrap(), b"01234", "torn bytes under the final name");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_errnos_are_retried_to_success() {
        let dir = temp_dir("transient");
        let path = dir.join("a.bin");
        let vfs =
            Vfs::with_injector(InjectAt::new(2, FaultKind::Errno(io::ErrorKind::Interrupted)));
        let commit = vfs.write_atomic(&path, b"persistent").unwrap();
        assert_eq!(commit.retries, 1, "one transient retry");
        assert_eq!(fs::read(&path).unwrap(), b"persistent");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_refuses_with_storage_full_and_eviction_refunds() {
        let dir = temp_dir("budget");
        let vfs = Vfs::with_budget(10, 0);
        vfs.write_atomic(&dir.join("a.bin"), b"123456").unwrap();
        assert_eq!(vfs.budget_used(), Some(6));
        let err = vfs.write_atomic(&dir.join("b.bin"), b"123456").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!dir.join("b.bin").exists());
        assert_eq!(vfs.budget_used(), Some(6), "failed reservation refunded");
        vfs.remove_file(&dir.join("a.bin")).unwrap();
        assert_eq!(vfs.budget_used(), Some(0));
        vfs.write_atomic(&dir.join("b.bin"), b"123456").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_replacing_a_file_charges_the_delta() {
        let dir = temp_dir("replace");
        let vfs = Vfs::with_budget(16, 0);
        let path = dir.join("a.bin");
        vfs.write_atomic(&path, b"12345678").unwrap();
        // 8 on disk; replacing with 8 needs 16 transiently — exactly fits.
        vfs.write_atomic(&path, b"abcdefgh").unwrap();
        assert_eq!(vfs.budget_used(), Some(8), "replacement refunds the old length");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_range_chunks_reassemble_the_file_and_truncate_at_eof() {
        let dir = temp_dir("range");
        let path = dir.join("a.bin");
        let payload: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        Vfs::real().write_atomic(&path, &payload).unwrap();
        let vfs = Vfs::recording();
        assert_eq!(vfs.file_len(&path).unwrap(), 1000);
        // Reassemble through ragged chunk sizes, including one spanning EOF.
        for chunk in [1usize, 7, 256, 999, 1000, 4096] {
            let mut got = Vec::new();
            let mut offset = 0u64;
            loop {
                let part = vfs.read_range(&path, offset, chunk).unwrap();
                if part.is_empty() {
                    break;
                }
                offset += part.len() as u64;
                got.extend_from_slice(&part);
            }
            assert_eq!(got, payload, "chunk size {chunk}");
        }
        // Entirely past EOF: empty, not an error.
        assert!(vfs.read_range(&path, 5000, 16).unwrap().is_empty());
        assert!(vfs.op_count() > 0, "every range read is a counted op");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_range_is_injectable_per_chunk() {
        let dir = temp_dir("range-inject");
        let path = dir.join("a.bin");
        Vfs::real().write_atomic(&path, b"0123456789").unwrap();
        // Op 0 is the file_len probe, op 1 the first chunk, op 2 the
        // second: fault exactly the second chunk read.
        let inj = InjectAt::new(2, FaultKind::Errno(io::ErrorKind::Other));
        let vfs = Vfs::with_injector(inj.clone());
        assert_eq!(vfs.file_len(&path).unwrap(), 10);
        assert_eq!(vfs.read_range(&path, 0, 4).unwrap(), b"0123");
        let err = vfs.read_range(&path, 4, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(inj.fired(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn columnar_reads_through_the_vfs_hit_the_injection_gate() {
        use matelda_table::chunked::{write_table_columnar, ColumnarReader};
        use matelda_table::{Column, Table};
        let dir = temp_dir("columnar-vfs");
        let table = Table::new(
            "t",
            vec![Column::new("a", ["1", "2", "3"]), Column::new("b", ["x", "yy", "zzz"])],
        );
        // Written and read back through the recording Vfs: ops counted.
        let vfs = Vfs::recording();
        let path = write_table_columnar(&vfs, &dir, &table).unwrap();
        let back = ColumnarReader::open(&vfs, &path).unwrap().read_table(4).unwrap();
        assert_eq!(back, table);
        assert!(vfs.op_count() > 5, "columnar io is gated and counted");
        // A fault planted mid-column surfaces as an error, not a
        // misparse: the out-of-core path inherits the fault matrix.
        let ops = vfs.op_count();
        for at in 0..ops {
            let inj = InjectAt::new(at, FaultKind::Errno(io::ErrorKind::Other));
            let faulty = Vfs::with_injector(inj);
            let res = ColumnarReader::open(&faulty, &path).and_then(|r| r.read_table(4));
            if let Err(e) = res {
                let msg = e.to_string();
                assert!(msg.contains("injected") || msg.contains("chunked io"), "{msg}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_bytes_sums_recursively() {
        let dir = temp_dir("bytes");
        fs::create_dir_all(dir.join("sub")).unwrap();
        fs::write(dir.join("a"), b"1234").unwrap();
        fs::write(dir.join("sub/b"), b"56").unwrap();
        assert_eq!(dir_bytes(&dir).unwrap(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }
}
