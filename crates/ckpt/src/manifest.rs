//! The run manifest: the identity a set of snapshots belongs to.
//!
//! Matelda's pipeline is a pure function of (configuration, lake, seed,
//! label budget) — thread count only changes wall-clock, never bits.
//! The manifest records exactly those determinism inputs; its
//! [`Manifest::hash`] is stamped into every snapshot envelope so a
//! snapshot can never be re-attached to a run it was not computed for.
//! Thread count is stored for diagnostics but excluded from the hash:
//! resuming a 4-thread run with 1 thread is explicitly supported.

use crate::store::CkptError;
use crate::wire::{DecodeError, Reader, Writer};
use matelda_table::fingerprint::Fnv1a;

/// On-disk checkpoint format version. Bump on any change to the
/// envelope layout, the manifest layout, or a stage payload codec —
/// old snapshots are then rejected with `BadVersion` instead of being
/// misread.
///
/// v2: `CellFeatures` switched from per-cell vectors to one flat f32
/// matrix, changing the featurize-stage payload codec.
pub const FORMAT_VERSION: u32 = 2;

const MANIFEST_MAGIC: &[u8; 8] = b"MTLDMANI";

/// The determinism inputs of one detection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// FNV-1a digest of the canonicalized `MateldaConfig` (thread count
    /// excluded — see [`Manifest::hash`]).
    pub config_hash: u64,
    /// Content fingerprint of the input lake
    /// ([`matelda_table::lake_fingerprint`]).
    pub lake_fingerprint: u64,
    /// The run's RNG seed.
    pub seed: u64,
    /// The labeling budget in cells.
    pub budget: u64,
    /// Thread count of the run that *wrote* the manifest. Informational
    /// only: not hashed, not validated on resume.
    pub threads: u64,
}

impl Manifest {
    /// The identity digest stamped into snapshot envelopes. Covers
    /// everything that determines output bits; deliberately excludes
    /// `threads`.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(u64::from(FORMAT_VERSION));
        h.write_u64(self.config_hash);
        h.write_u64(self.lake_fingerprint);
        h.write_u64(self.seed);
        h.write_u64(self.budget);
        h.finish()
    }

    /// Serializes the manifest: magic, version, fields, then an FNV-1a
    /// digest over all preceding bytes so corruption of the manifest
    /// file itself is detected.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.write_raw(MANIFEST_MAGIC);
        w.write_u32(FORMAT_VERSION);
        w.write_u64(self.config_hash);
        w.write_u64(self.lake_fingerprint);
        w.write_u64(self.seed);
        w.write_u64(self.budget);
        w.write_u64(self.threads);
        let mut digest = Fnv1a::new();
        digest.write_bytes(w.as_bytes());
        w.write_u64(digest.finish());
        w.into_bytes()
    }

    /// Decodes and fully validates a manifest file.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, DecodeError> {
        let mut r = Reader::new(bytes);
        if r.read_raw(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC {
            return Err(DecodeError::BadMagic { expected: "MTLDMANI" });
        }
        let version = r.read_u32()?;
        if version != FORMAT_VERSION {
            return Err(DecodeError::BadVersion { found: version, expected: FORMAT_VERSION });
        }
        let m = Manifest {
            config_hash: r.read_u64()?,
            lake_fingerprint: r.read_u64()?,
            seed: r.read_u64()?,
            budget: r.read_u64()?,
            threads: r.read_u64()?,
        };
        let recorded = r.read_u64()?;
        let mut digest = Fnv1a::new();
        digest.write_bytes(&bytes[..bytes.len() - 8]);
        let computed = digest.finish();
        if recorded != computed {
            return Err(DecodeError::HashMismatch { expected: recorded, found: computed });
        }
        r.finish()?;
        Ok(m)
    }

    /// Checks a manifest read from disk against this (live) run,
    /// naming the first differing field. `threads` is exempt.
    ///
    /// Both sides carry their full identity ([`Manifest::identity`]) in
    /// the error, so a foreign-checkpoint rejection is triageable from
    /// the log line alone: which config hash and which lake fingerprint
    /// the checkpoint was written for, and which ones the rejecting run
    /// had.
    pub fn validate_against(&self, disk: &Manifest) -> Result<(), CkptError> {
        let fields: [(&str, u64, u64); 4] = [
            ("config", self.config_hash, disk.config_hash),
            ("lake fingerprint", self.lake_fingerprint, disk.lake_fingerprint),
            ("seed", self.seed, disk.seed),
            ("label budget", self.budget, disk.budget),
        ];
        for (what, live, stored) in fields {
            if live != stored {
                return Err(CkptError::Mismatch {
                    what,
                    expected: format!("{stored:#018x} [checkpoint {}]", disk.identity()),
                    found: format!("{live:#018x} [current run {}]", self.identity()),
                });
            }
        }
        Ok(())
    }

    /// A compact one-line identity for log messages: every hashed field
    /// plus the overall manifest hash.
    pub fn identity(&self) -> String {
        format!(
            "config {:#018x}, lake {:#018x}, seed {}, budget {}, manifest hash {:#018x}",
            self.config_hash,
            self.lake_fingerprint,
            self.seed,
            self.budget,
            self.hash()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest { config_hash: 1, lake_fingerprint: 2, seed: 3, budget: 4, threads: 8 }
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = manifest();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hash_ignores_threads_but_not_the_rest() {
        let base = manifest();
        let mut t = base;
        t.threads = 1;
        assert_eq!(base.hash(), t.hash(), "thread count must not affect snapshot identity");
        for field in 0..4usize {
            let mut m = base;
            match field {
                0 => m.config_hash ^= 1,
                1 => m.lake_fingerprint ^= 1,
                2 => m.seed ^= 1,
                _ => m.budget ^= 1,
            }
            assert_ne!(base.hash(), m.hash());
        }
    }

    #[test]
    fn flipped_byte_is_detected() {
        let mut bytes = manifest().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = manifest().encode();
        for cut in [0, 3, 8, bytes.len() - 1] {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = manifest().encode();
        bytes[8] = 0xEE; // version lives right after the 8-byte magic
        assert!(matches!(
            Manifest::decode(&bytes),
            Err(DecodeError::BadVersion { .. } | DecodeError::HashMismatch { .. })
        ));
    }

    #[test]
    fn validate_names_the_differing_field() {
        let live = manifest();
        let mut disk = live;
        disk.seed = 99;
        let err = live.validate_against(&disk).unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
        let mut disk = live;
        disk.threads = 1;
        live.validate_against(&disk).unwrap();
    }

    #[test]
    fn mismatch_message_carries_both_identities() {
        let live = manifest();
        let mut disk = live;
        disk.lake_fingerprint = 0xDEAD_BEEF;
        let msg = live.validate_against(&disk).unwrap_err().to_string();
        // Both sides' config hashes and lake fingerprints must appear, so
        // a foreign-checkpoint rejection is triageable from logs alone.
        for needle in [
            format!("{:#018x}", disk.lake_fingerprint),
            format!("{:#018x}", live.lake_fingerprint),
            format!("config {:#018x}", live.config_hash),
            disk.identity(),
            live.identity(),
        ] {
            assert!(msg.contains(&needle), "missing {needle:?} in: {msg}");
        }
        assert!(msg.contains("checkpoint"), "got: {msg}");
        assert!(msg.contains("current run"), "got: {msg}");
    }
}
