//! Little-endian wire primitives for snapshot payloads.
//!
//! The encoder is infallible ([`Writer`] appends to a growable buffer);
//! the decoder ([`Reader`]) is *total* — every read is bounds-checked
//! against the remaining input before anything is allocated, so
//! truncated or garbled bytes produce a structured [`DecodeError`],
//! never a panic or an attempt to allocate a bogus multi-gigabyte
//! vector. This is what the snapshot property tests lean on: decode of
//! arbitrary bytes must be safe.

use std::error::Error;
use std::fmt;

/// Why a byte buffer failed to decode. Carries enough context to tell a
/// torn write (EOF) from bit rot (hash/magic) from a format change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a fixed-size field: `wanted` bytes needed,
    /// `remaining` left.
    UnexpectedEof { wanted: usize, remaining: usize },
    /// A length prefix exceeds the bytes that follow it — the telltale
    /// of truncation mid-record (or garbage interpreted as a length).
    LengthOverflow { len: u64, remaining: usize },
    /// The leading magic bytes are not the expected tag.
    BadMagic { expected: &'static str },
    /// The format version is one this build does not understand.
    BadVersion { found: u32, expected: u32 },
    /// A content digest does not match the bytes it covers.
    HashMismatch { expected: u64, found: u64 },
    /// Decoding finished but `count` bytes were left over — a valid
    /// snapshot is consumed exactly.
    TrailingBytes { count: usize },
    /// A field decoded but its value is semantically impossible
    /// (e.g. a boolean byte that is neither 0 nor 1).
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { wanted, remaining } => {
                write!(f, "unexpected end of input: wanted {wanted} bytes, {remaining} remaining")
            }
            DecodeError::LengthOverflow { len, remaining } => {
                write!(f, "length prefix {len} exceeds {remaining} remaining bytes")
            }
            DecodeError::BadMagic { expected } => {
                write!(f, "bad magic: expected {expected:?}")
            }
            DecodeError::BadVersion { found, expected } => {
                write!(f, "unsupported format version {found} (this build reads {expected})")
            }
            DecodeError::HashMismatch { expected, found } => {
                write!(
                    f,
                    "content hash mismatch: recorded {expected:#018x}, computed {found:#018x}"
                )
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete record")
            }
            DecodeError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl Error for DecodeError {}

/// Append-only encoder. All integers are little-endian; variable-size
/// fields are length-prefixed with a `u64`.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — exact round-trip,
    /// no formatting involved.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a boolean as one byte (0 or 1).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a string as length-prefixed UTF-8.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Appends raw bytes with no prefix (magic tags, nested records).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` as an LEB128 varint (1 byte for values < 128,
    /// up to 10 for the full range). Snapshot payloads are dominated by
    /// small counts and indexes, so this is the default integer
    /// encoding for artifact codecs; fixed-width `write_u64` remains
    /// for envelope fields that must be seekable.
    pub fn write_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes so far, without consuming the writer.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { wanted: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a boolean byte; anything but 0 or 1 is [`DecodeError::Malformed`].
    pub fn read_bool(&mut self) -> Result<bool, DecodeError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::Malformed(format!("boolean byte {b}"))),
        }
    }

    /// Reads an LEB128 varint written by [`Writer::write_varint`].
    ///
    /// Only the *minimal* encoding of a value decodes: a padded form
    /// (trailing zero continuation groups) or one exceeding 64 bits is
    /// [`DecodeError::Malformed`]. Canonicality matters because the
    /// snapshot property tests assert that any byte string which
    /// decodes at all re-encodes to exactly itself.
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for i in 0..10 {
            let byte = self.read_u8()?;
            if i == 9 && byte > 0x01 {
                return Err(DecodeError::Malformed("varint exceeds 64 bits".into()));
            }
            value |= u64::from(byte & 0x7F) << (7 * i);
            if byte & 0x80 == 0 {
                if i > 0 && byte == 0 {
                    return Err(DecodeError::Malformed("non-canonical varint".into()));
                }
                return Ok(value);
            }
        }
        unreachable!("the tenth varint byte always terminates or errors")
    }

    /// Reads a varint length prefix, validated against the remaining
    /// input before any allocation — the varint twin of [`Reader::read_len`].
    pub fn read_varint_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.read_varint()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::LengthOverflow { len, remaining: self.remaining() });
        }
        Ok(len as usize)
    }

    /// Reads a `u64` length prefix, validated against the remaining
    /// input *before* any allocation. This is the load-bearing check
    /// that makes garbled input safe: a corrupted prefix claiming 2^60
    /// elements is rejected here, not handed to `Vec::with_capacity`.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.read_u64()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::LengthOverflow { len, remaining: self.remaining() });
        }
        Ok(len as usize)
    }

    /// Reads length-prefixed raw bytes.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.read_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, DecodeError> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DecodeError::Malformed(format!("invalid UTF-8: {e}")))
    }

    /// Reads exactly `n` un-prefixed bytes (magic tags, nested records).
    pub fn read_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Asserts the input is fully consumed — a complete record has no
    /// slack for trailing garbage to hide in.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes { count: self.remaining() });
        }
        Ok(())
    }
}

/// Magic tag of a chunked frame (see [`encode_chunked`]).
pub const CHUNKED_MAGIC: &[u8; 4] = b"MTCH";

/// Chunked-frame format version.
pub const CHUNKED_VERSION: u32 = 1;

/// FNV-1a over one chunk's bytes — the same hash family as the snapshot
/// envelope, via the table crate's incremental hasher.
fn chunk_digest(bytes: &[u8]) -> u64 {
    let mut h = matelda_table::fingerprint::Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

/// Frames a payload as independently-verifiable chunks:
///
/// ```text
/// "MTCH" | version:u32 | total_len:varint | n_chunks:varint
///        | { len:varint | bytes | fnv1a:u64 } × n_chunks
/// ```
///
/// Large snapshots (out-of-core featurize spill, columnar column files)
/// use this instead of one monolithic hashed blob: a torn tail or a
/// flipped bit is pinned to *one* chunk by [`decode_chunked`], and a
/// streaming writer can emit chunk frames as they are produced instead
/// of buffering the whole payload to hash it.
pub fn encode_chunked(payload: &[u8], chunk_len: usize) -> Vec<u8> {
    let chunk_len = chunk_len.max(1);
    let mut w = Writer::new();
    w.reserve(payload.len() + payload.len() / chunk_len * 12 + 32);
    w.write_raw(CHUNKED_MAGIC);
    w.write_u32(CHUNKED_VERSION);
    w.write_varint(payload.len() as u64);
    let n_chunks = payload.len().div_ceil(chunk_len);
    w.write_varint(n_chunks as u64);
    for chunk in payload.chunks(chunk_len) {
        w.write_varint(chunk.len() as u64);
        w.write_raw(chunk);
        w.write_u64(chunk_digest(chunk));
    }
    w.into_bytes()
}

/// Decodes a frame produced by [`encode_chunked`], validating magic,
/// version, every chunk digest, the total length and exact consumption.
pub fn decode_chunked(bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.read_raw(4)? != CHUNKED_MAGIC {
        return Err(DecodeError::BadMagic { expected: "MTCH" });
    }
    let version = r.read_u32()?;
    if version != CHUNKED_VERSION {
        return Err(DecodeError::BadVersion { found: version, expected: CHUNKED_VERSION });
    }
    let total = r.read_varint()?;
    if total > bytes.len() as u64 {
        return Err(DecodeError::LengthOverflow { len: total, remaining: r.remaining() });
    }
    let n_chunks = r.read_varint()?;
    let mut payload = Vec::with_capacity(total as usize);
    for _ in 0..n_chunks {
        let len = r.read_varint_len()?;
        let chunk = r.read_raw(len)?;
        let expected = r.read_u64()?;
        let found = chunk_digest(chunk);
        if found != expected {
            return Err(DecodeError::HashMismatch { expected, found });
        }
        payload.extend_from_slice(chunk);
    }
    if payload.len() as u64 != total {
        return Err(DecodeError::Malformed(format!(
            "chunked frame declares {total} payload bytes but chunks carry {}",
            payload.len()
        )));
    }
    r.finish()?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.write_u8(7);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX - 1);
        w.write_f64(-0.125);
        w.write_bool(true);
        w.write_bool(false);
        w.write_bytes(b"raw");
        w.write_str("snowman \u{2603}");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_f64().unwrap(), -0.125);
        assert!(r.read_bool().unwrap());
        assert!(!r.read_bool().unwrap());
        assert_eq!(r.read_bytes().unwrap(), b"raw");
        assert_eq!(r.read_str().unwrap(), "snowman \u{2603}");
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bitwise() {
        for v in [0.0, -0.0, f64::NAN, f64::INFINITY, 1.0e-300] {
            let mut w = Writer::new();
            w.write_f64(v);
            let bytes = w.into_bytes();
            let got = Reader::new(&bytes).read_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn varint_round_trips_across_the_full_range() {
        for v in [0u64, 1, 127, 128, 300, 16383, 16384, u64::from(u32::MAX), u64::MAX - 1, u64::MAX]
        {
            let mut w = Writer::new();
            w.write_varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.read_varint().unwrap(), v);
            r.finish().unwrap();
            // Minimal length: one byte per 7 bits, never more.
            let expected_len = (64 - v.leading_zeros()).div_ceil(7).max(1) as usize;
            assert_eq!(bytes.len(), expected_len, "value {v}");
        }
    }

    #[test]
    fn padded_or_oversized_varints_are_malformed() {
        // 0x80 0x00 decodes to the same value as 0x00 — reject the pad.
        assert!(matches!(Reader::new(&[0x80, 0x00]).read_varint(), Err(DecodeError::Malformed(_))));
        // Eleven continuation bytes exceed 64 bits.
        let too_long = [0xFFu8; 10];
        assert!(matches!(Reader::new(&too_long).read_varint(), Err(DecodeError::Malformed(_))));
        // The tenth byte may carry only bit 63.
        let mut max = [0x80u8; 10];
        max[9] = 0x02;
        assert!(matches!(Reader::new(&max).read_varint(), Err(DecodeError::Malformed(_))));
        // Truncation mid-varint is EOF, not a panic.
        assert!(matches!(
            Reader::new(&[0x80]).read_varint(),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn varint_length_prefix_is_checked_before_allocation() {
        let mut w = Writer::new();
        w.write_varint(1 << 40);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).read_varint_len(),
            Err(DecodeError::LengthOverflow { len, .. }) if len == 1 << 40
        ));
    }

    #[test]
    fn truncated_input_is_eof_not_panic() {
        let mut w = Writer::new();
        w.write_u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(r.read_u64(), Err(DecodeError::UnexpectedEof { wanted: 8, remaining: 5 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.write_u64(u64::MAX); // a length prefix claiming ~2^64 bytes
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.read_bytes(),
            Err(DecodeError::LengthOverflow { len: u64::MAX, remaining: 0 })
        );
    }

    #[test]
    fn bad_boolean_byte_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.read_bool(), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = Writer::new();
        w.write_u8(1);
        w.write_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.read_u8().unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn chunked_frame_round_trips_at_ragged_chunk_sizes() {
        let payload: Vec<u8> = (0u32..10_000).map(|i| (i * 7 % 256) as u8).collect();
        for chunk_len in [1usize, 13, 4096, 10_000, 1 << 20] {
            let framed = encode_chunked(&payload, chunk_len);
            assert_eq!(decode_chunked(&framed).unwrap(), payload, "chunk_len {chunk_len}");
        }
        // Empty payload: zero chunks, still a valid frame.
        let framed = encode_chunked(&[], 64);
        assert_eq!(decode_chunked(&framed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn chunked_frame_pins_corruption_to_a_chunk() {
        let payload = vec![0xABu8; 1000];
        let mut framed = encode_chunked(&payload, 100);
        // Flip one payload byte deep inside the frame: the owning
        // chunk's digest must catch it.
        let mid = framed.len() / 2;
        framed[mid] ^= 0x01;
        assert!(matches!(decode_chunked(&framed), Err(DecodeError::HashMismatch { .. })));
    }

    #[test]
    fn chunked_frame_rejects_truncation_magic_and_version_drift() {
        let framed = encode_chunked(b"hello chunked world", 4);
        // A torn tail is EOF or a length overflow, never a panic.
        for cut in 1..framed.len() {
            assert!(decode_chunked(&framed[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_magic = framed.clone();
        bad_magic[0] = b'X';
        assert!(matches!(decode_chunked(&bad_magic), Err(DecodeError::BadMagic { .. })));
        let mut bad_version = framed.clone();
        bad_version[4] = 99;
        assert!(matches!(decode_chunked(&bad_version), Err(DecodeError::BadVersion { .. })));
        // Trailing garbage after a complete frame is rejected.
        let mut trailing = framed.clone();
        trailing.push(0);
        assert!(matches!(decode_chunked(&trailing), Err(DecodeError::TrailingBytes { .. })));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = Writer::new();
        w.write_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(matches!(Reader::new(&bytes).read_str(), Err(DecodeError::Malformed(_))));
    }
}
