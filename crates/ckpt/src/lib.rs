//! # matelda-ckpt
//!
//! Durable run state for the Matelda pipeline: a versioned on-disk
//! snapshot format for stage artifacts, a run manifest binding those
//! snapshots to one (config, lake, seed, budget) tuple, and an atomic
//! [`CheckpointStore`] that makes interrupted runs resumable.
//!
//! ## Contract
//!
//! The pipeline is bit-deterministic: the same configuration, lake,
//! seed and label budget produce the same artifact at every stage, at
//! any thread count. Snapshots exploit that — a stage snapshot is valid
//! for *any* run whose [`Manifest`] hashes identically, and a resumed
//! run that restores a verified snapshot is indistinguishable from an
//! uninterrupted one. Thread count is recorded in the manifest for
//! diagnostics but deliberately excluded from its hash: crash at
//! `--threads 4`, resume at `--threads 1`, get the same bits.
//!
//! ## Crash safety
//!
//! Every file is committed with the classic tmp + fsync + rename
//! protocol: a crash at any instant leaves either the previous complete
//! file or an ignorable `*.tmp`, never a half-written snapshot under
//! the final name. Decoding still defends in depth — the envelope
//! carries magic, format version, manifest hash and an FNV-1a payload
//! digest, and a snapshot failing any of those checks is reported as a
//! structured [`CkptError`], never silently reused (see
//! `DESIGN.md §6`).
//!
//! Module map: [`wire`] — bounds-checked little-endian primitives and
//! [`wire::DecodeError`]; [`manifest`] — the run manifest; [`store`] —
//! the atomic store, snapshot envelope, and the `MATELDA_CKPT_CRASH`
//! crash-injection hook used by the chaos harness; [`vfs`] — the
//! storage seam every durability byte goes through, carrying errno
//! fault injection, disk-budget enforcement and bounded transient
//! retry (see `DESIGN.md §12`).

pub mod manifest;
pub mod store;
pub mod vfs;
pub mod wire;

pub use manifest::{Manifest, FORMAT_VERSION};
pub use store::{
    decode_envelope, encode_envelope, CheckpointStore, CkptError, CrashDirective, CrashMode,
    CRASH_ENV,
};
pub use vfs::{
    dir_bytes, AtomicCommit, FaultInjector, FaultKind, InjectAt, IoOp, Vfs, TRANSIENT_RETRIES,
};
pub use wire::{DecodeError, Reader, Writer};
