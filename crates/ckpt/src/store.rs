//! The atomic checkpoint store: one directory per run holding
//! `manifest.ckpt` plus one `<stage>.ckpt` snapshot per completed
//! stage.
//!
//! ## Commit protocol
//!
//! Every file is written as `<name>.tmp`, fsync'd, renamed over the
//! final name, and the directory fsync'd (best-effort). A crash at any
//! point leaves either the previous complete file or a stray `*.tmp`
//! that [`CheckpointStore::open`] sweeps away — the final name is never
//! observed half-written by a well-behaved writer. External corruption
//! (disk faults, hostile edits, the chaos harness's torn-write mode)
//! is caught by the envelope checks on load instead.
//!
//! ## Snapshot envelope
//!
//! ```text
//! "MTLDCKPT" | version:u32 | manifest_hash:u64 | stage:str
//!            | payload:bytes | payload_fnv1a:u64
//! ```
//!
//! A snapshot loads only if magic, version, manifest hash, stage name
//! and payload digest all check out and the file is consumed exactly.
//! Failures map to [`CkptError::Corrupt`] (bad bytes) or
//! [`CkptError::Mismatch`] (valid bytes from a *different* run) — the
//! caller decides whether that aborts the run or falls back to
//! recomputation, but a questionable snapshot is never silently reused.
//!
//! ## Crash injection
//!
//! For subprocess crash-recovery tests, the [`CRASH_ENV`] environment
//! variable (`after:<stage>` or `torn:<stage>`) makes [`CheckpointStore::
//! save_stage`] abort the process at the matching boundary — after a
//! complete commit, or after planting a truncated snapshot directly
//! under the final name (modelling corruption the rename protocol
//! cannot prevent). Parsed once per process; inert when unset.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::manifest::{Manifest, FORMAT_VERSION};
use crate::vfs::Vfs;
use crate::wire::{DecodeError, Reader, Writer};
use matelda_obs::{Obs, Val};
use matelda_table::fingerprint::Fnv1a;

const ENVELOPE_MAGIC: &[u8; 8] = b"MTLDCKPT";
const MANIFEST_FILE: &str = "manifest.ckpt";

/// Environment variable carrying a crash directive for subprocess
/// crash-recovery tests: `after:<stage>` or `torn:<stage>`.
pub const CRASH_ENV: &str = "MATELDA_CKPT_CRASH";

/// What a durability operation can fail with.
#[derive(Debug)]
pub enum CkptError {
    /// An I/O error touching the checkpoint directory.
    Io { path: PathBuf, source: io::Error },
    /// A file exists but its bytes do not decode as a valid record.
    Corrupt { path: PathBuf, reason: DecodeError },
    /// A valid record that belongs to a different run: resuming would
    /// silently mix artifacts from incompatible inputs, so it is a
    /// hard error naming the differing field.
    Mismatch { what: &'static str, expected: String, found: String },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, source } => {
                write!(f, "checkpoint I/O error at {}: {source}", path.display())
            }
            CkptError::Corrupt { path, reason } => {
                write!(f, "corrupt checkpoint {}: {reason}", path.display())
            }
            CkptError::Mismatch { what, expected, found } => {
                write!(
                    f,
                    "resume mismatch: checkpoint {what} is {expected}, current run has {found}"
                )
            }
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            CkptError::Corrupt { reason, .. } => Some(reason),
            CkptError::Mismatch { .. } => None,
        }
    }
}

/// Where in [`CheckpointStore::save_stage`] an injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Abort *after* the snapshot is fully committed — models a crash
    /// between stages; resume should restore everything up to and
    /// including this stage.
    AfterCommit,
    /// Write a truncated envelope directly under the final name
    /// (bypassing tmp+rename) and abort — models external corruption;
    /// resume must reject the snapshot.
    TornWrite,
}

/// A parsed [`CRASH_ENV`] directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashDirective {
    /// How to die.
    pub mode: CrashMode,
    /// The stage whose `save_stage` call triggers the crash.
    pub stage: String,
}

impl CrashDirective {
    /// Parses `after:<stage>` / `torn:<stage>`; `None` for anything else.
    pub fn parse(value: &str) -> Option<CrashDirective> {
        let (mode, stage) = value.split_once(':')?;
        let mode = match mode {
            "after" => CrashMode::AfterCommit,
            "torn" => CrashMode::TornWrite,
            _ => return None,
        };
        if stage.is_empty() {
            return None;
        }
        Some(CrashDirective { mode, stage: stage.to_owned() })
    }

    /// The [`CRASH_ENV`] value encoding this directive.
    pub fn env_value(&self) -> String {
        let mode = match self.mode {
            CrashMode::AfterCommit => "after",
            CrashMode::TornWrite => "torn",
        };
        format!("{mode}:{}", self.stage)
    }

    fn from_env() -> Option<&'static CrashDirective> {
        static DIRECTIVE: OnceLock<Option<CrashDirective>> = OnceLock::new();
        DIRECTIVE
            .get_or_init(|| std::env::var(CRASH_ENV).ok().as_deref().and_then(Self::parse))
            .as_ref()
    }
}

/// An open per-run checkpoint directory bound to one [`Manifest`].
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    manifest: Manifest,
    obs: Obs,
    vfs: Vfs,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory for a run
    /// described by `manifest`, with plain filesystem I/O. See
    /// [`CheckpointStore::open_with`] for the full contract.
    pub fn open(
        dir: &Path,
        manifest: Manifest,
        resume: bool,
    ) -> Result<CheckpointStore, CkptError> {
        Self::open_with(dir, manifest, resume, Vfs::real())
    }

    /// Opens (creating if needed) a checkpoint directory for a run
    /// described by `manifest`, routing every byte through `vfs`.
    ///
    /// Stray `*.tmp` files from interrupted commits are always removed.
    /// With `resume = false` any existing snapshots are deleted and a
    /// fresh manifest written. With `resume = true` and an existing
    /// manifest on disk, the stored determinism inputs must match the
    /// live run (thread count exempt) or the open fails with
    /// [`CkptError::Mismatch`]; a missing manifest degrades to a fresh
    /// run, a corrupt one is [`CkptError::Corrupt`].
    pub fn open_with(
        dir: &Path,
        manifest: Manifest,
        resume: bool,
        vfs: Vfs,
    ) -> Result<CheckpointStore, CkptError> {
        let io_err = |source| CkptError::Io { path: dir.to_path_buf(), source };
        vfs.create_dir_all(dir).map_err(io_err)?;
        Self::sweep(&vfs, dir, "tmp").map_err(io_err)?;

        let manifest_path = dir.join(MANIFEST_FILE);
        let stored = if resume {
            match vfs.read(&manifest_path) {
                Ok(bytes) => Some(Manifest::decode(&bytes).map_err(|reason| {
                    CkptError::Corrupt { path: manifest_path.clone(), reason }
                })?),
                Err(e) if e.kind() == io::ErrorKind::NotFound => None,
                Err(source) => return Err(CkptError::Io { path: manifest_path, source }),
            }
        } else {
            None
        };

        match stored {
            Some(disk) => manifest.validate_against(&disk)?,
            None => {
                // Fresh run (or resume with nothing to resume from):
                // stale snapshots must not survive under a new manifest.
                Self::sweep(&vfs, dir, "ckpt").map_err(io_err)?;
                vfs.write_atomic(&manifest_path, &manifest.encode())
                    .map_err(|source| CkptError::Io { path: manifest_path, source })?;
            }
        }
        Ok(CheckpointStore { dir: dir.to_path_buf(), manifest, obs: Obs::disabled(), vfs })
    }

    /// Attaches an observability handle: commits and restores then
    /// land in the run event log (`ckpt.commit` / `ckpt.load`) with
    /// matching counters. Events describe I/O only — snapshot bytes,
    /// checksums and the manifest never depend on the handle.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Deletes every regular file in `dir` with the given extension.
    fn sweep(vfs: &Vfs, dir: &Path, ext: &str) -> io::Result<()> {
        for path in vfs.read_dir_paths(dir)? {
            if path.extension().is_some_and(|e| e == ext) && path.is_file() {
                vfs.remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest this store is bound to.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The storage handle this store routes its I/O through.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    fn stage_path(&self, stage: &str) -> PathBuf {
        // Stage names are pipeline identifiers (`embed`, `quality_folds`,
        // …), never user input, so plain join is safe.
        self.dir.join(format!("{stage}.ckpt"))
    }

    /// Commits one stage snapshot atomically. If a [`CRASH_ENV`]
    /// directive names this stage, the process aborts per its mode.
    pub fn save_stage(&self, stage: &str, payload: &[u8]) -> Result<(), CkptError> {
        let path = self.stage_path(stage);
        let bytes = encode_envelope(self.manifest.hash(), stage, payload);
        let io_err = |source| CkptError::Io { path: path.clone(), source };

        if let Some(d) = CrashDirective::from_env() {
            if d.stage == stage {
                match d.mode {
                    CrashMode::AfterCommit => {
                        self.vfs.write_atomic(&path, &bytes).map_err(io_err)?;
                        std::process::abort();
                    }
                    CrashMode::TornWrite => {
                        // Plant a half-written snapshot under the final
                        // name, bypassing tmp+rename: this is the fault
                        // class atomic commit *cannot* rule out, only
                        // the envelope checks can catch.
                        let torn = &bytes[..bytes.len() / 2];
                        fs::write(&path, torn).map_err(io_err)?;
                        std::process::abort();
                    }
                }
            }
        }
        let commit = self.vfs.write_atomic(&path, &bytes).map_err(io_err)?;
        if !commit.dir_synced {
            // The snapshot is durable but the *rename* may not survive a
            // power cut. Not fatal — but no longer silent either.
            self.obs.counter_add("ckpt.dirsync_failed", 1);
            if self.obs.is_enabled() {
                self.obs.event("ckpt.dirsync_failed", &[("stage", Val::S(stage))]);
            }
        }
        if self.obs.is_enabled() {
            self.obs.event(
                "ckpt.commit",
                &[
                    ("stage", Val::S(stage)),
                    ("bytes", Val::U(bytes.len() as u64)),
                    ("retries", Val::U(commit.retries as u64)),
                ],
            );
            self.obs.counter_add("ckpt.commits", 1);
        }
        Ok(())
    }

    /// Loads and fully verifies one stage snapshot.
    ///
    /// `Ok(None)` means no snapshot exists (the stage must run).
    /// `Err(Corrupt)` means a file exists but fails any envelope check;
    /// `Err(Mismatch)` means a *valid* snapshot stamped with a different
    /// manifest hash. Neither is ever reinterpreted as "just recompute".
    pub fn load_stage(&self, stage: &str) -> Result<Option<Vec<u8>>, CkptError> {
        let path = self.stage_path(stage);
        let bytes = match self.vfs.read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(CkptError::Io { path, source }),
        };
        let (manifest_hash, name, payload) = decode_envelope(&bytes)
            .map_err(|reason| CkptError::Corrupt { path: path.clone(), reason })?;
        if name != stage {
            return Err(CkptError::Mismatch {
                what: "stage name",
                expected: stage.to_owned(),
                found: name,
            });
        }
        if manifest_hash != self.manifest.hash() {
            // The envelope only carries the combined hash, but the
            // rejecting run knows its own full identity — include it so
            // the log line says which config/lake/seed refused the file.
            return Err(CkptError::Mismatch {
                what: "manifest hash",
                expected: format!("{manifest_hash:#018x} [from {}]", path.display()),
                found: format!(
                    "{:#018x} [current run {}]",
                    self.manifest.hash(),
                    self.manifest.identity()
                ),
            });
        }
        if self.obs.is_enabled() {
            self.obs.event(
                "ckpt.load",
                &[("stage", Val::S(stage)), ("bytes", Val::U(payload.len() as u64))],
            );
            self.obs.counter_add("ckpt.loads", 1);
        }
        Ok(Some(payload))
    }
}

/// Builds the snapshot envelope around a stage payload.
pub fn encode_envelope(manifest_hash: u64, stage: &str, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.write_raw(ENVELOPE_MAGIC);
    w.write_u32(FORMAT_VERSION);
    w.write_u64(manifest_hash);
    w.write_str(stage);
    w.write_bytes(payload);
    let mut digest = Fnv1a::new();
    digest.write_bytes(payload);
    w.write_u64(digest.finish());
    w.into_bytes()
}

/// Decodes and fully verifies a snapshot envelope, returning
/// `(manifest_hash, stage_name, payload)`.
pub fn decode_envelope(bytes: &[u8]) -> Result<(u64, String, Vec<u8>), DecodeError> {
    let mut r = Reader::new(bytes);
    if r.read_raw(ENVELOPE_MAGIC.len())? != ENVELOPE_MAGIC {
        return Err(DecodeError::BadMagic { expected: "MTLDCKPT" });
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion { found: version, expected: FORMAT_VERSION });
    }
    let manifest_hash = r.read_u64()?;
    let stage = r.read_str()?;
    let payload = r.read_bytes()?.to_vec();
    let recorded = r.read_u64()?;
    r.finish()?;
    let mut digest = Fnv1a::new();
    digest.write_bytes(&payload);
    let computed = digest.finish();
    if recorded != computed {
        return Err(DecodeError::HashMismatch { expected: recorded, found: computed });
    }
    Ok((manifest_hash, stage, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn manifest() -> Manifest {
        Manifest { config_hash: 11, lake_fingerprint: 22, seed: 33, budget: 44, threads: 2 }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("matelda-ckpt-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir, manifest(), false).unwrap();
        store.save_stage("embed", b"artifact bytes").unwrap();
        assert_eq!(store.load_stage("embed").unwrap().unwrap(), b"artifact bytes");
        assert_eq!(store.load_stage("classify").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_open_discards_old_snapshots_resume_keeps_them() {
        let dir = temp_dir("fresh");
        let store = CheckpointStore::open(&dir, manifest(), false).unwrap();
        store.save_stage("embed", b"old").unwrap();

        let resumed = CheckpointStore::open(&dir, manifest(), true).unwrap();
        assert_eq!(resumed.load_stage("embed").unwrap().unwrap(), b"old");

        let fresh = CheckpointStore::open(&dir, manifest(), false).unwrap();
        assert_eq!(fresh.load_stage("embed").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_changed_inputs_is_a_named_mismatch() {
        let dir = temp_dir("mismatch");
        CheckpointStore::open(&dir, manifest(), false).unwrap();
        let mut other = manifest();
        other.seed ^= 1;
        let err = CheckpointStore::open(&dir, other, true).unwrap_err();
        assert!(err.to_string().contains("seed"), "got: {err}");
        // Thread count alone must not block resume.
        let mut threads = manifest();
        threads.threads = 16;
        CheckpointStore::open(&dir, threads, true).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_without_manifest_degrades_to_fresh() {
        let dir = temp_dir("nomanifest");
        let store = CheckpointStore::open(&dir, manifest(), true).unwrap();
        assert_eq!(store.load_stage("embed").unwrap(), None);
        assert!(dir.join(MANIFEST_FILE).is_file());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_reused() {
        let dir = temp_dir("torn");
        let store = CheckpointStore::open(&dir, manifest(), false).unwrap();
        store.save_stage("embed", b"some payload with real length").unwrap();
        let path = dir.join("embed.ckpt");
        let full = fs::read(&path).unwrap();
        for cut in [0, 5, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(store.load_stage("embed"), Err(CkptError::Corrupt { .. })),
                "cut at {cut}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_snapshot_is_corrupt() {
        let dir = temp_dir("garble");
        let store = CheckpointStore::open(&dir, manifest(), false).unwrap();
        store.save_stage("embed", b"payload payload payload").unwrap();
        let path = dir.join("embed.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload-digest bit
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.load_stage("embed"), Err(CkptError::Corrupt { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_from_another_run_is_a_mismatch() {
        let dir_a = temp_dir("foreign-a");
        let dir_b = temp_dir("foreign-b");
        let a = CheckpointStore::open(&dir_a, manifest(), false).unwrap();
        a.save_stage("embed", b"theirs").unwrap();
        let mut other = manifest();
        other.seed = 777;
        let b = CheckpointStore::open(&dir_b, other, false).unwrap();
        fs::copy(dir_a.join("embed.ckpt"), dir_b.join("embed.ckpt")).unwrap();
        assert!(matches!(b.load_stage("embed"), Err(CkptError::Mismatch { .. })));
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn stray_tmp_files_are_swept_on_open() {
        let dir = temp_dir("sweep");
        fs::write(dir.join("embed.tmp"), b"half a write").unwrap();
        CheckpointStore::open(&dir, manifest(), true).unwrap();
        assert!(!dir.join("embed.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_directive_parses_and_round_trips() {
        let d = CrashDirective::parse("after:classify").unwrap();
        assert_eq!(d, CrashDirective { mode: CrashMode::AfterCommit, stage: "classify".into() });
        assert_eq!(CrashDirective::parse(&d.env_value()).unwrap(), d);
        let t = CrashDirective::parse("torn:embed").unwrap();
        assert_eq!(t.mode, CrashMode::TornWrite);
        for bad in ["", "after", "boom:embed", "after:"] {
            assert_eq!(CrashDirective::parse(bad), None, "{bad:?}");
        }
    }
}
