//! # matelda-obs
//!
//! Zero-dependency structured observability for the pipeline. One
//! cloneable [`Obs`] handle carries three instruments behind a single
//! mutex:
//!
//! * **Tracing spans** — hierarchical (run → stage → per-worker batch)
//!   with monotonic timings. A [`SpanGuard`] is also the workspace's
//!   one stopwatch primitive: [`SpanGuard::finish_secs`] returns the
//!   elapsed wall seconds whether or not recording is enabled, so call
//!   sites that used to keep ad-hoc `Instant` pairs next to their
//!   reports now time *through* the span.
//! * **Metrics registry** — typed counters, gauges and fixed-bucket
//!   histograms (e.g. cells/s per stage, fold sizes, labels spent vs
//!   budget, quarantine and checkpoint counts). Keys live in
//!   `BTreeMap`s so every export is deterministically ordered.
//! * **Run event log** — append-only list of timestamped events
//!   (checkpoint commits, restores, per-item faults, injected chaos),
//!   exported as JSONL.
//!
//! The disabled handle ([`Obs::disabled`], also `Default`) holds no
//! allocation and every recording call is a branch on a `None` — the
//! pipeline pays ~nothing when tracing is off. Everything here is
//! *read-only instrumentation*: no result, artifact or checkpoint byte
//! ever depends on an `Obs`, which is what keeps the determinism and
//! durability contracts intact with tracing on (DESIGN.md §7).
//!
//! Exports: [`Obs::events_jsonl`] (one JSON object per line),
//! [`Obs::metrics_json`], and [`Obs::trace_json`] — the latter in the
//! `chrome://tracing` / Perfetto trace-event format (`ph:"X"` complete
//! spans, `ph:"i"` instants, microsecond timestamps relative to the
//! handle's epoch). [`Obs::write_dir`] writes all three files.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A monotonic stopwatch: the single timing primitive the workspace
/// uses wherever an elapsed-seconds number is needed without a span.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// A borrowed event field value — call sites build `&[(&str, Val)]`
/// slices on the stack, so emitting an event allocates nothing until
/// (and unless) the handle is enabled.
#[derive(Debug, Clone, Copy)]
pub enum Val<'a> {
    /// An unsigned integer.
    U(u64),
    /// A float.
    F(f64),
    /// A string.
    S(&'a str),
}

/// An owned event field value, as stored in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedVal {
    /// An unsigned integer.
    U(u64),
    /// A float.
    F(f64),
    /// A string.
    S(String),
}

impl Val<'_> {
    fn to_owned_val(self) -> OwnedVal {
        match self {
            Val::U(v) => OwnedVal::U(v),
            Val::F(v) => OwnedVal::F(v),
            Val::S(v) => OwnedVal::S(v.to_string()),
        }
    }
}

/// One recorded event: a timestamp, a name and typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the handle was enabled.
    pub ts_us: u64,
    /// Event name (dotted taxonomy, e.g. `ckpt.commit`).
    pub name: String,
    /// Typed payload fields.
    pub fields: Vec<(String, OwnedVal)>,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Span id (1-based, in creation order).
    pub id: u64,
    /// Id of the enclosing scoped span, or 0 at the root.
    pub parent: u64,
    /// Category (`run`, `stage`, `exec`, ...).
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Display lane: 0 for the coordinating thread, worker index + 1
    /// for executor workers.
    pub tid: u64,
    /// Start, microseconds since the handle was enabled.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Numeric annotations (item counts, busy time, ...).
    pub args: Vec<(String, f64)>,
}

/// Preset histogram bucket layouts. Fixed bounds keep the registry
/// allocation-free per sample and the exports comparable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buckets {
    /// Latencies in microseconds: 1µs .. 2.5s in a 1-2.5-5 ladder.
    LatencyUs,
    /// Set sizes (fold sizes, batch sizes): powers of two up to 65536.
    Size,
}

const LATENCY_US_BOUNDS: &[f64] = &[
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
];
const SIZE_BOUNDS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
    16384.0, 32768.0, 65536.0,
];

impl Buckets {
    /// The upper bounds of this layout (exclusive of the overflow
    /// bucket appended at export time).
    pub fn bounds(self) -> &'static [f64] {
        match self {
            Buckets::LatencyUs => LATENCY_US_BOUNDS,
            Buckets::Size => SIZE_BOUNDS,
        }
    }
}

/// A fixed-bucket histogram: counts per `value <= bound` bucket plus an
/// overflow bucket, with running count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds, ascending.
    pub bounds: &'static [f64],
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: f64,
    /// Smallest recorded sample.
    pub min: f64,
    /// Largest recorded sample.
    pub max: f64,
}

impl Histogram {
    fn new(buckets: Buckets) -> Self {
        let bounds = buckets.bounds();
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, v: f64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

#[derive(Default)]
struct State {
    next_id: u64,
    /// Stack of open *scoped* span ids — the top is the parent that new
    /// spans attach to.
    scope: Vec<u64>,
    spans: Vec<SpanRec>,
    events: Vec<Event>,
    metrics: Registry,
}

struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// The cloneable observability handle. `Obs::disabled()` (the default)
/// is a no-op shell; `Obs::enabled()` records into shared state that
/// every clone appends to.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.is_enabled()).finish()
    }
}

impl Obs {
    /// A handle that records nothing. Every call is a cheap no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A recording handle; timestamps are relative to this call.
    pub fn enabled() -> Self {
        Obs { inner: Some(Arc::new(Inner { epoch: Instant::now(), state: Mutex::default() })) }
    }

    /// Whether this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(inner: &Inner) -> MutexGuard<'_, State> {
        // Instrumentation must not take the pipeline down: a panic
        // while the state lock was held only loses observability data.
        inner.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn ts_us(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span attached to the innermost open scoped span. The
    /// guard times even when disabled (see [`SpanGuard::finish_secs`]).
    pub fn span(&self, cat: &'static str, name: &str) -> SpanGuard {
        self.open_span(cat, name, false)
    }

    /// Opens a span that also becomes the parent of spans opened while
    /// it is live (until [`SpanGuard::finish_secs`] or drop).
    pub fn span_scope(&self, cat: &'static str, name: &str) -> SpanGuard {
        self.open_span(cat, name, true)
    }

    fn open_span(&self, cat: &'static str, name: &str, scoped: bool) -> SpanGuard {
        let data = self.inner.as_ref().map(|inner| {
            let mut st = Self::lock(inner);
            st.next_id += 1;
            let id = st.next_id;
            let parent = st.scope.last().copied().unwrap_or(0);
            if scoped {
                st.scope.push(id);
            }
            let start_us = Self::ts_us(inner);
            Box::new(SpanData {
                id,
                parent,
                cat,
                name: name.to_string(),
                tid: 0,
                start_us,
                args: Vec::new(),
                scoped,
            })
        });
        SpanGuard { obs: self.clone(), watch: Stopwatch::start(), data }
    }

    /// Appends an event to the run log. Free when disabled — the field
    /// slice is borrowed and only copied into owned storage on record.
    pub fn event(&self, name: &str, fields: &[(&str, Val<'_>)]) {
        if let Some(inner) = &self.inner {
            let ev = Event {
                ts_us: Self::ts_us(inner),
                name: name.to_string(),
                fields: fields.iter().map(|(k, v)| (k.to_string(), v.to_owned_val())).collect(),
            };
            Self::lock(inner).events.push(ev);
        }
    }

    /// Adds `delta` to a counter (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut st = Self::lock(inner);
            *st.metrics.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            Self::lock(inner).metrics.gauges.insert(name.to_string(), value);
        }
    }

    /// Records `value` into the named histogram with the given layout.
    pub fn record(&self, name: &str, value: f64, buckets: Buckets) {
        if let Some(inner) = &self.inner {
            let mut st = Self::lock(inner);
            st.metrics
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Histogram::new(buckets))
                .record(value);
        }
    }

    /// Current value of a counter, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.inner.as_ref().and_then(|i| Self::lock(i).metrics.counters.get(name).copied())
    }

    /// Current value of a gauge, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.as_ref().and_then(|i| Self::lock(i).metrics.gauges.get(name).copied())
    }

    /// A snapshot of the named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.as_ref().and_then(|i| Self::lock(i).metrics.histograms.get(name).cloned())
    }

    /// A snapshot of all finished spans, in finish order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.inner.as_ref().map_or_else(Vec::new, |i| Self::lock(i).spans.clone())
    }

    /// A snapshot of the event log, in append order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| Self::lock(i).events.clone())
    }

    /// The logged events carrying the given name, in append order.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        let mut evs = self.events();
        evs.retain(|e| e.name == name);
        evs
    }

    /// The event log as JSON Lines: one object per event, fields
    /// flattened next to `ts_us` and `event`.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!("{{\"ts_us\":{},\"event\":{}", e.ts_us, json_string(&e.name)));
            for (k, v) in &e.fields {
                out.push_str(&format!(",{}:{}", json_string(k), json_val(v)));
            }
            out.push_str("}\n");
        }
        out
    }

    /// The span tree in the `chrome://tracing` trace-event format:
    /// complete (`ph:"X"`) events for spans, instant (`ph:"i"`) events
    /// for the run log, microsecond timestamps.
    pub fn trace_json(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start_us, s.id));
        let mut out = String::from(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
             {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"matelda\"}}",
        );
        for s in &spans {
            out.push_str(&format!(
                ",{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\
                 \"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
                json_string(&s.name),
                json_string(s.cat),
                s.start_us,
                s.dur_us,
                s.tid,
                s.id,
                s.parent,
            ));
            for (k, v) in &s.args {
                out.push_str(&format!(",{}:{}", json_string(k), json_f64(*v)));
            }
            out.push_str("}}");
        }
        for e in self.events() {
            out.push_str(&format!(
                ",{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":1,\
                 \"tid\":0,\"args\":{{",
                json_string(&e.name),
                e.ts_us,
            ));
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_string(k), json_val(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}\n");
        out
    }

    /// The metrics registry as one JSON object, deterministically
    /// key-ordered.
    pub fn metrics_json(&self) -> String {
        let (counters, gauges, histograms) = match &self.inner {
            Some(inner) => {
                let st = Self::lock(inner);
                (
                    st.metrics.counters.clone(),
                    st.metrics.gauges.clone(),
                    st.metrics.histograms.clone(),
                )
            }
            None => Default::default(),
        };
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(k), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bounds\":[",
                json_string(k),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
            ));
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_f64(*b));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}\n");
        out
    }

    /// Writes `events.jsonl`, `trace.json` and `metrics.json` into
    /// `dir` (created if missing).
    pub fn write_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("events.jsonl"), self.events_jsonl())?;
        std::fs::write(dir.join("trace.json"), self.trace_json())?;
        std::fs::write(dir.join("metrics.json"), self.metrics_json())?;
        Ok(())
    }
}

struct SpanData {
    id: u64,
    parent: u64,
    cat: &'static str,
    name: String,
    tid: u64,
    start_us: u64,
    args: Vec<(String, f64)>,
    scoped: bool,
}

/// An open span. Records itself on [`SpanGuard::finish_secs`] or drop;
/// times monotonically even when the handle is disabled, so call sites
/// need no separate `Instant` pair for their reports.
pub struct SpanGuard {
    obs: Obs,
    watch: Stopwatch,
    data: Option<Box<SpanData>>,
}

impl SpanGuard {
    /// Sets the display lane (worker index + 1; 0 = coordinator).
    pub fn with_tid(mut self, tid: u64) -> Self {
        if let Some(d) = &mut self.data {
            d.tid = tid;
        }
        self
    }

    /// Attaches a numeric annotation (no-op when disabled).
    pub fn arg(&mut self, key: &str, value: f64) {
        if let Some(d) = &mut self.data {
            d.args.push((key.to_string(), value));
        }
    }

    /// Finishes the span and returns the elapsed wall seconds — the
    /// return value is live whether or not recording is enabled.
    pub fn finish_secs(mut self) -> f64 {
        let secs = self.watch.elapsed_secs();
        self.close();
        secs
    }

    fn close(&mut self) {
        let Some(d) = self.data.take() else { return };
        let Some(inner) = &self.obs.inner else { return };
        let end_us = Obs::ts_us(inner);
        let mut st = Obs::lock(inner);
        if d.scoped {
            if let Some(pos) = st.scope.iter().rposition(|&id| id == d.id) {
                st.scope.remove(pos);
            }
        }
        st.spans.push(SpanRec {
            id: d.id,
            parent: d.parent,
            cat: d.cat,
            name: d.name,
            tid: d.tid,
            start_us: d.start_us,
            dur_us: end_us.saturating_sub(d.start_us),
            args: d.args,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.close();
    }
}

fn json_val(v: &OwnedVal) -> String {
    match v {
        OwnedVal::U(u) => u.to_string(),
        OwnedVal::F(f) => json_f64(*f),
        OwnedVal::S(s) => json_string(s),
    }
}

/// JSON-renders a float; non-finite values become `null`. (Rust's
/// `{}` prints `1` for `1.0_f64`, which JSON readers accept.)
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_but_still_times() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut span = obs.span("t", "noop");
        span.arg("items", 3.0);
        obs.event("e", &[("k", Val::U(1))]);
        obs.counter_add("c", 5);
        obs.gauge_set("g", 1.0);
        obs.record("h", 2.0, Buckets::Size);
        let secs = span.finish_secs();
        assert!(secs >= 0.0, "the stopwatch works even when disabled");
        assert!(obs.spans().is_empty());
        assert!(obs.events().is_empty());
        assert_eq!(obs.counter("c"), None);
        assert_eq!(obs.gauge("g"), None);
        assert!(obs.histogram("h").is_none());
    }

    #[test]
    fn spans_nest_under_the_scoped_parent() {
        let obs = Obs::enabled();
        let run = obs.span_scope("run", "detect");
        let stage = obs.span_scope("stage", "embed");
        let worker = obs.span("exec", "embed").with_tid(1);
        drop(worker);
        stage.finish_secs();
        // A span opened after the stage closed attaches to the run.
        let late = obs.span("stage", "featurize");
        drop(late);
        run.finish_secs();

        let spans = obs.spans();
        assert_eq!(spans.len(), 4);
        let by_name = |cat: &str, n: &str| {
            spans
                .iter()
                .find(|s| s.cat == cat && s.name == n)
                .unwrap_or_else(|| panic!("span {cat}/{n}"))
        };
        let (run, stage) = (by_name("run", "detect"), by_name("stage", "embed"));
        assert_eq!(run.parent, 0);
        assert_eq!(stage.parent, run.id);
        let worker = spans.iter().find(|s| s.cat == "exec").expect("worker span");
        assert_eq!(worker.parent, stage.id);
        assert_eq!(worker.tid, 1);
        assert_eq!(by_name("stage", "featurize").parent, run.id);
    }

    #[test]
    fn metrics_accumulate_and_histograms_bucket_correctly() {
        let obs = Obs::enabled();
        obs.counter_add("n", 2);
        obs.counter_add("n", 3);
        assert_eq!(obs.counter("n"), Some(5));
        obs.gauge_set("g", 1.5);
        obs.gauge_set("g", 2.5);
        assert_eq!(obs.gauge("g"), Some(2.5));

        for v in [0.5, 1.0, 3.0, 1e9] {
            obs.record("h", v, Buckets::Size);
        }
        let h = obs.histogram("h").expect("histogram exists");
        assert_eq!(h.count, 4);
        assert_eq!(h.counts.iter().sum::<u64>(), 4);
        assert_eq!(h.counts[0], 2, "0.5 and 1.0 land in the `<= 1` bucket");
        assert_eq!(h.counts[2], 1, "3.0 lands in the `<= 4` bucket");
        assert_eq!(*h.counts.last().unwrap(), 1, "1e9 overflows");
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e9);
    }

    #[test]
    fn exports_are_well_formed_and_deterministic() {
        let feed = |obs: &Obs| {
            let mut s = obs.span_scope("stage", "embed \"q\"");
            s.arg("items", 7.0);
            s.finish_secs();
            obs.event("ckpt.commit", &[("stage", Val::S("embed")), ("bytes", Val::U(42))]);
            obs.counter_add("stage.items.embed", 7);
            obs.gauge_set("rate", 1.25);
            obs.record("sizes", 3.0, Buckets::Size);
        };
        let (a, b) = (Obs::enabled(), Obs::enabled());
        feed(&a);
        feed(&b);

        let jsonl = a.events_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"event\":\"ckpt.commit\""), "{jsonl}");
        assert!(jsonl.contains("\"bytes\":42"), "{jsonl}");

        let trace = a.trace_json();
        assert!(trace.starts_with("{\"displayTimeUnit\""), "{trace}");
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\":\"X\""), "span event present");
        assert!(trace.contains("\"ph\":\"i\""), "instant event present");
        assert!(trace.contains("embed \\\"q\\\""), "names are escaped: {trace}");

        // Metrics export is byte-identical for identical feeds (the
        // registry holds no wall-clock data).
        assert_eq!(a.metrics_json(), b.metrics_json());
        assert!(a.metrics_json().contains("\"stage.items.embed\":7"));
        assert!(a.metrics_json().contains("\"rate\":1.25"));
        assert!(a.metrics_json().contains("\"counts\":["));
    }

    #[test]
    fn write_dir_creates_all_three_artifacts() {
        let obs = Obs::enabled();
        obs.event("e", &[]);
        obs.span("t", "s").finish_secs();
        let dir = std::env::temp_dir().join(format!("matelda_obs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        obs.write_dir(&dir).expect("write_dir");
        for f in ["events.jsonl", "trace.json", "metrics.json"] {
            assert!(dir.join(f).is_file(), "{f} written");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_finite_values_export_as_null() {
        let obs = Obs::enabled();
        obs.gauge_set("bad", f64::NAN);
        obs.gauge_set("inf", f64::INFINITY);
        let json = obs.metrics_json();
        assert!(json.contains("\"bad\":null"), "{json}");
        assert!(json.contains("\"inf\":null"), "{json}");
    }

    #[test]
    fn clones_share_state_across_threads() {
        let obs = Obs::enabled();
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let obs = obs.clone();
                scope.spawn(move || {
                    obs.counter_add("shared", 1);
                    obs.span("exec", "work").with_tid(w + 1).finish_secs();
                });
            }
        });
        assert_eq!(obs.counter("shared"), Some(4));
        assert_eq!(obs.spans().len(), 4);
    }
}
