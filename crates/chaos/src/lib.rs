//! # matelda-chaos
//!
//! A seed-deterministic chaos harness for the fault-isolated pipeline.
//!
//! Robustness claims are only testable if the faults themselves are
//! reproducible, so everything here derives from a single [`FaultPlan`]
//! seed:
//!
//! * **File-level** — [`FaultPlan::corrupt_dir`] picks victim CSV files
//!   in a lake directory and applies a [`Corruption`] (truncate mid-byte,
//!   garble with invalid UTF-8, raggedize rows). Running the same plan on
//!   two identical directories produces byte-identical corruption, so
//!   ingestion tests can assert exact outcomes.
//! * **Stage-level** — [`FaultPlan::stage_points`] picks victim
//!   `(stage, index)` work items; arm them with
//!   [`matelda_exec::faultpoint::arm`] and the executor
//!   converts each injected panic into a per-item fault that the engine
//!   quarantines under `FaultPolicy::Skip`.
//! * **Process-level** — [`FaultPlan::crash_directive`] picks the stage
//!   boundary at which a *subprocess* run dies: exported through the
//!   [`CRASH_ENV`] environment variable, the checkpoint store aborts the
//!   process right after committing that stage's snapshot
//!   ([`CrashMode::AfterCommit`]) or after planting a truncated snapshot
//!   under the final name ([`CrashMode::TornWrite`]). The crash-recovery
//!   suites then resume and assert bit-identity with a clean run.
//! * **Storage-level** — [`FaultPlan::io_fault`] picks the Nth
//!   durability I/O operation and an errno-level [`FaultKind`]
//!   (ENOSPC, EIO, short write, torn rename) to inject through the
//!   checkpoint layer's [`Vfs`] seam; `tests/io_faults.rs` sweeps
//!   *every* site exhaustively and asserts the degradation contract
//!   (DESIGN.md §12): bit-identical digest or an explicit degraded /
//!   storage-full outcome — never a panic, never silent corruption.
//!
//! The integration suites (`tests/chaos.rs`, `tests/durability.rs`) use
//! these layers to assert the robustness contracts: a run with k killed
//! tables completes, quarantines exactly those k, and scores the
//! survivors bit-identically to a faultless run on the survivor-only
//! lake; a run killed at any checkpoint boundary resumes bit-identically
//! to an uninterrupted one — at any thread count.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::{Path, PathBuf};

pub use matelda_ckpt::{CrashDirective, CrashMode, CRASH_ENV};
pub use matelda_ckpt::{FaultInjector, FaultKind, InjectAt, IoOp, Vfs};
pub use matelda_exec::faultpoint;

/// The errno-level storage faults an I/O plan can inject — the hostile
/// filesystem's repertoire: out of space, a medium error, a write cut
/// short, a rename that leaves torn bytes under the final name.
pub const IO_FAULT_KINDS: [FaultKind; 4] = [
    FaultKind::Errno(io::ErrorKind::StorageFull),
    FaultKind::Errno(io::ErrorKind::Other),
    FaultKind::ShortWrite,
    FaultKind::TornRename,
];

/// The pipeline's stage names in execution order — the checkpoint
/// boundaries a [`FaultPlan::crash_directive`] can pick from.
pub const STAGE_NAMES: [&str; 6] =
    ["embed", "featurize", "domain_folds", "quality_folds", "label", "classify"];

/// The kinds of file corruption the harness can inflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the file at a random byte offset (possibly mid-record,
    /// mid-field or mid-quote).
    Truncate,
    /// Overwrite ~10% of the bytes with values from `0x80..=0xFF`,
    /// which are never valid single-byte UTF-8.
    Garble,
    /// Add or remove trailing fields on random data rows, so row widths
    /// disagree with the header.
    Raggedize,
}

/// One applied corruption: which file, which kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionRecord {
    /// The corrupted file.
    pub path: PathBuf,
    /// What was done to it.
    pub kind: Corruption,
}

/// A reproducible plan of faults. Every decision — victim choice,
/// corruption kind, byte offsets — is a pure function of the plan seed
/// and a domain string (stage name or file name), so two plans with the
/// same seed inflict identical damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The master seed.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan with the given master seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The RNG for one decision domain: the master seed mixed with an
    /// FNV-1a hash of the domain string, so choices for different
    /// stages/files are independent but individually reproducible.
    fn rng(&self, domain: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ fnv1a(domain))
    }

    /// Picks `k` distinct victims among `n` items (ascending). `k` is
    /// clamped to `n`.
    pub fn victims(&self, domain: &str, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let mut rng = self.rng(domain);
        let mut idx: Vec<usize> = sample(&mut rng, n, k).into_iter().collect();
        idx.sort_unstable();
        idx
    }

    /// Stage-level injection points: kill `k` of the stage's `n_items`
    /// work items. Feed the result to
    /// [`matelda_exec::faultpoint::arm`].
    pub fn stage_points(&self, stage: &str, n_items: usize, k: usize) -> Vec<(String, usize)> {
        self.victims(stage, n_items, k).into_iter().map(|i| (stage.to_string(), i)).collect()
    }

    /// Picks the checkpoint boundary at which a subprocess run should
    /// die, deterministically from the plan seed and the crash mode.
    /// Export [`CrashDirective::env_value`] under [`CRASH_ENV`] in the
    /// child's environment; the checkpoint store does the killing.
    pub fn crash_directive(&self, mode: CrashMode) -> CrashDirective {
        let domain = match mode {
            CrashMode::AfterCommit => "crash:after",
            CrashMode::TornWrite => "crash:torn",
        };
        let mut rng = self.rng(domain);
        let stage = STAGE_NAMES[rng.random_range(0..STAGE_NAMES.len())];
        CrashDirective { mode, stage: stage.to_string() }
    }

    /// **Storage-level** — picks one I/O fault over a run known (from a
    /// [`Vfs::recording`] dry run) to perform `n_ops` storage
    /// operations: a site in `0..n_ops` and a kind from
    /// [`IO_FAULT_KINDS`], both pure functions of the plan seed and
    /// `domain`. Feed the result to [`FaultPlan::io_injector`] /
    /// [`Vfs::with_injector`].
    pub fn io_fault(&self, domain: &str, n_ops: u64) -> (u64, FaultKind) {
        let mut rng = self.rng(&format!("io:{domain}"));
        let at = rng.random_range(0..n_ops.max(1));
        let kind = IO_FAULT_KINDS[rng.random_range(0..IO_FAULT_KINDS.len())];
        (at, kind)
    }

    /// An armed single-site injector for the fault
    /// [`FaultPlan::io_fault`] picks; hand it to [`Vfs::with_injector`]
    /// and assert `fired() == 1` afterwards.
    pub fn io_injector(&self, domain: &str, n_ops: u64) -> std::sync::Arc<InjectAt> {
        let (at, kind) = self.io_fault(domain, n_ops);
        InjectAt::new(at, kind)
    }

    /// Corrupts `k` of the `*.csv` files under `dir` in place (victims
    /// chosen over the sorted file list, corruption kind and bytes
    /// derived per file name). Returns what was done to which file.
    pub fn corrupt_dir(&self, dir: &Path, k: usize) -> io::Result<Vec<CorruptionRecord>> {
        // The same file-name ordering ingestion uses, so victim indices
        // line up with table indices regardless of readdir order.
        let paths: Vec<PathBuf> = matelda_table::csv_paths_sorted(dir)?;
        let victims = self.victims("files", paths.len(), k);
        let mut records = Vec::with_capacity(victims.len());
        for &v in &victims {
            let path = &paths[v];
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
            let mut rng = self.rng(&format!("corrupt:{name}"));
            let kind = match rng.random_range(0..3usize) {
                0 => Corruption::Truncate,
                1 => Corruption::Garble,
                _ => Corruption::Raggedize,
            };
            let bytes = std::fs::read(path)?;
            std::fs::write(path, corrupt_bytes(&bytes, kind, &mut rng))?;
            records.push(CorruptionRecord { path: path.clone(), kind });
        }
        Ok(records)
    }

    /// [`Self::corrupt_dir`] with the inflicted damage recorded in an
    /// observability handle: one `chaos.corrupt` event per victim file
    /// plus a `chaos.corruptions` counter, so a traced chaos run's event
    /// log shows which faults were *planned* next to the `fault.item`
    /// events the pipeline emits when it hits them.
    pub fn corrupt_dir_logged(
        &self,
        dir: &Path,
        k: usize,
        obs: &matelda_obs::Obs,
    ) -> io::Result<Vec<CorruptionRecord>> {
        let records = self.corrupt_dir(dir, k)?;
        for rec in &records {
            let name = rec.path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
            let kind = match rec.kind {
                Corruption::Truncate => "truncate",
                Corruption::Garble => "garble",
                Corruption::Raggedize => "raggedize",
            };
            obs.event(
                "chaos.corrupt",
                &[
                    ("file", matelda_obs::Val::S(name)),
                    ("kind", matelda_obs::Val::S(kind)),
                    ("seed", matelda_obs::Val::U(self.seed)),
                ],
            );
        }
        obs.counter_add("chaos.corruptions", records.len() as u64);
        Ok(records)
    }
}

/// Corrupts one file in place, seed-deterministically: reads it, applies
/// [`corrupt_bytes`] with an RNG derived from `seed` and the file name,
/// writes the damage back. The serve memo-cache tests use this to prove
/// a checksum-validated cache entry is recomputed, never served, after
/// on-disk damage.
pub fn corrupt_file(path: &Path, kind: Corruption, seed: u64) -> io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(name));
    let bytes = std::fs::read(path)?;
    std::fs::write(path, corrupt_bytes(&bytes, kind, &mut rng))
}

/// Applies one corruption to a byte buffer (pure; exposed so tests can
/// corrupt in memory without touching disk).
pub fn corrupt_bytes(bytes: &[u8], kind: Corruption, rng: &mut StdRng) -> Vec<u8> {
    match kind {
        Corruption::Truncate => {
            if bytes.len() < 2 {
                return bytes.to_vec();
            }
            let cut = rng.random_range(1..bytes.len());
            bytes[..cut].to_vec()
        }
        Corruption::Garble => {
            let mut out = bytes.to_vec();
            if out.is_empty() {
                return out;
            }
            let hits = (out.len() / 10).max(1);
            for _ in 0..hits {
                let i = rng.random_range(0..out.len());
                out[i] = rng.random_range(0x80u8..=0xFF);
            }
            out
        }
        Corruption::Raggedize => {
            let mut lines: Vec<Vec<u8>> =
                bytes.split(|&b| b == b'\n').map(<[u8]>::to_vec).collect();
            // Skip the header (line 0); damage each data row with
            // probability 1/2: half the damaged rows grow a field, half
            // lose their last one.
            for line in lines.iter_mut().skip(1).filter(|l| !l.is_empty()) {
                match rng.random_range(0..4usize) {
                    0 => line.extend_from_slice(b",__chaos__"),
                    1 => {
                        if let Some(p) = line.iter().rposition(|&b| b == b',') {
                            line.truncate(p);
                        }
                    }
                    _ => {}
                }
            }
            lines.join(&b'\n')
        }
    }
}

/// FNV-1a over a string, used to derive per-domain seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_are_deterministic_distinct_and_bounded() {
        let plan = FaultPlan::new(42);
        let v = plan.victims("embed", 10, 3);
        assert_eq!(v, FaultPlan::new(42).victims("embed", 10, 3));
        assert_eq!(v.len(), 3);
        let mut d = v.clone();
        d.dedup();
        assert_eq!(d, v, "victims are distinct and sorted");
        assert!(v.iter().all(|&i| i < 10));
        // k clamps to n; k = 0 picks nobody.
        assert_eq!(plan.victims("embed", 2, 5).len(), 2);
        assert!(plan.victims("embed", 10, 0).is_empty());
        assert!(plan.victims("embed", 0, 3).is_empty());
    }

    #[test]
    fn stage_points_name_the_stage() {
        let plan = FaultPlan::new(7);
        let points = plan.stage_points("featurize", 6, 2);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|(s, i)| s == "featurize" && *i < 6));
    }

    #[test]
    fn crash_directive_is_deterministic_and_names_a_real_stage() {
        for mode in [CrashMode::AfterCommit, CrashMode::TornWrite] {
            let d = FaultPlan::new(11).crash_directive(mode);
            assert_eq!(d, FaultPlan::new(11).crash_directive(mode));
            assert!(STAGE_NAMES.contains(&d.stage.as_str()), "{d:?}");
            assert_eq!(d.mode, mode);
            // The env round trip the subprocess harness relies on.
            assert_eq!(CrashDirective::parse(&d.env_value()).unwrap(), d);
        }
        // Different seeds eventually pick different boundaries.
        let picks: std::collections::BTreeSet<String> = (0..32)
            .map(|s| FaultPlan::new(s).crash_directive(CrashMode::AfterCommit).stage)
            .collect();
        assert!(picks.len() > 1, "crash boundary must vary with the seed");
    }

    #[test]
    fn garble_introduces_invalid_utf8() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = corrupt_bytes(b"a,b\n1,2\n3,4\n", Corruption::Garble, &mut rng);
        assert!(std::str::from_utf8(&out).is_err());
        assert_eq!(out.len(), 12, "garbling preserves length");
    }

    #[test]
    fn truncate_shortens_without_growing() {
        let mut rng = StdRng::seed_from_u64(2);
        let input = b"a,b\n1,2\n3,4\n";
        let out = corrupt_bytes(input, Corruption::Truncate, &mut rng);
        assert!(!out.is_empty() && out.len() < input.len());
        assert!(input.starts_with(&out));
    }

    #[test]
    fn raggedize_keeps_the_header_line() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = corrupt_bytes(b"a,b\n1,2\n3,4\n5,6\n7,8\n", Corruption::Raggedize, &mut rng);
        assert!(out.starts_with(b"a,b\n"), "header untouched: {:?}", String::from_utf8_lossy(&out));
    }

    #[test]
    fn corruption_is_byte_deterministic() {
        for kind in [Corruption::Truncate, Corruption::Garble, Corruption::Raggedize] {
            let a = corrupt_bytes(b"x,y\n1,2\n3,4\n", kind, &mut StdRng::seed_from_u64(9));
            let b = corrupt_bytes(b"x,y\n1,2\n3,4\n", kind, &mut StdRng::seed_from_u64(9));
            assert_eq!(a, b, "{kind:?}");
        }
    }
}
