//! The in-process crash-recovery suite: acceptance tests for the
//! durability tentpole (ISSUE 3).
//!
//! Contract under test — resumed output is bit-identical to an
//! uninterrupted run:
//!
//! 1. a run killed at *every* checkpoint boundary (simulated by
//!    truncating the snapshot set to each prefix) resumes to the exact
//!    `DetectionResult` of a clean run,
//! 2. the same holds when the interruption is a live mid-stage panic
//!    and when the resume happens at a *different* thread count,
//! 3. a corrupted snapshot (torn or garbled) is rejected with a
//!    structured error, never silently reused,
//! 4. a checkpoint directory written under different determinism inputs
//!    is rejected with a mismatch naming the differing field.

use matelda_chaos::{corrupt_bytes, faultpoint, Corruption, FaultPlan, STAGE_NAMES};
use matelda_core::{
    CkptError, DetectionResult, Durability, Labeler, Matelda, MateldaConfig, Oracle,
};
use matelda_lakegen::QuintetLake;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("matelda_durability_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(threads: usize) -> MateldaConfig {
    MateldaConfig { threads, ..Default::default() }
}

fn durability(dir: &Path, resume: bool) -> Durability {
    Durability { checkpoint_dir: Some(dir.to_path_buf()), resume, ..Default::default() }
}

/// Full-result equality, minus stage wall times (restored stages report
/// the original run's timings, which legitimately differ).
fn assert_same_result(a: &DetectionResult, b: &DetectionResult, what: &str) {
    assert_eq!(a.predicted, b.predicted, "{what}: predictions diverge");
    assert_eq!(a.labels_used, b.labels_used, "{what}: labels_used diverge");
    assert_eq!(a.n_domain_folds, b.n_domain_folds, "{what}: n_domain_folds diverge");
    assert_eq!(a.n_quality_folds, b.n_quality_folds, "{what}: n_quality_folds diverge");
    assert_eq!(a.quarantine, b.quarantine, "{what}: quarantine diverges");
    assert_eq!(a.report.faults.len(), b.report.faults.len(), "{what}: fault logs diverge");
    let meta = |r: &DetectionResult| -> Vec<(String, u64, Vec<(String, f64)>)> {
        r.report.stages.iter().map(|s| (s.name.clone(), s.items, s.metrics.clone())).collect()
    };
    assert_eq!(meta(a), meta(b), "{what}: stage reports diverge");
}

#[test]
fn resume_from_every_stage_boundary_is_bit_identical() {
    let budget = 20;
    let gl = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(21);
    let pipeline = Matelda::new(config(2));
    // Quiesced: under a parallel test runner another test may be armed.
    let _fp = faultpoint::quiesce();

    // One clean, fully-checkpointed reference run.
    let master = tmp_dir("boundary_master");
    let mut oracle = Oracle::new(&gl.errors);
    let clean = pipeline
        .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&master, false))
        .unwrap();

    // "Crashed after stage k" == the checkpoint directory holds the
    // manifest plus the first k snapshots; k = 0 is a crash before any
    // boundary, k = 6 a crash after the last one.
    for k in 0..=STAGE_NAMES.len() {
        let dir = tmp_dir(&format!("boundary_{k}"));
        fs::create_dir_all(&dir).unwrap();
        fs::copy(master.join("manifest.ckpt"), dir.join("manifest.ckpt")).unwrap();
        for stage in &STAGE_NAMES[..k] {
            fs::copy(master.join(format!("{stage}.ckpt")), dir.join(format!("{stage}.ckpt")))
                .unwrap();
        }
        let mut oracle = Oracle::new(&gl.errors);
        let resumed = pipeline
            .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true))
            .unwrap();
        assert_same_result(&resumed, &clean, &format!("boundary {k}"));
        // Resume recommitted the missing snapshots.
        for stage in STAGE_NAMES {
            assert!(dir.join(format!("{stage}.ckpt")).is_file(), "boundary {k}: {stage}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&master).unwrap();
}

#[test]
fn mid_stage_panic_then_resume_is_bit_identical_across_thread_counts() {
    let budget = 20;
    let gl = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(22);

    // The uninterrupted reference (no checkpointing at all). Quiesced:
    // another test's armed plan must not leak into this control run.
    let clean = {
        let _fp = faultpoint::quiesce();
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(config(1)).detect(&gl.dirty, &mut oracle, budget)
    };

    // Interrupt a 4-thread checkpointed run with a live panic in the
    // quality-folds stage (Fail policy: first fault aborts the run,
    // leaving the embed/featurize/domain_folds snapshots committed).
    let dir = tmp_dir("panic_resume");
    {
        let _guard = faultpoint::arm([("quality_folds".to_string(), 0)]);
        let mut oracle = Oracle::new(&gl.errors);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Matelda::new(config(4)).detect_durable(
                &gl.dirty,
                &mut oracle,
                budget,
                &durability(&dir, false),
            )
        }));
        assert!(crashed.is_err(), "armed faultpoint must abort the run");
    }
    for stage in ["embed", "featurize", "domain_folds"] {
        assert!(dir.join(format!("{stage}.ckpt")).is_file(), "{stage} snapshot must survive");
    }
    assert!(!dir.join("quality_folds.ckpt").exists(), "crashed stage must not have committed");

    // Resume at 1, 2 and 4 threads: every result is bit-identical to the
    // clean single-thread run (thread count is outside the manifest).
    let _fp = faultpoint::quiesce();
    for threads in [1, 2, 4] {
        let resume_dir = tmp_dir(&format!("panic_resume_t{threads}"));
        fs::create_dir_all(&resume_dir).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            fs::copy(&p, resume_dir.join(p.file_name().unwrap())).unwrap();
        }
        let mut oracle = Oracle::new(&gl.errors);
        let resumed = Matelda::new(config(threads))
            .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&resume_dir, true))
            .unwrap();
        assert_same_result(&resumed, &clean, &format!("threads {threads}"));
        fs::remove_dir_all(&resume_dir).unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn interrupt_after_final_boundary_resumes_without_recomputation() {
    let budget = 15;
    let gl = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(23);
    let dir = tmp_dir("finalize");
    let pipeline = Matelda::new(config(2));

    // Killed between the last snapshot commit and result assembly: the
    // `finalize` faultpoint fires after every stage checkpointed.
    {
        let _guard = faultpoint::arm([("finalize".to_string(), 0)]);
        let mut oracle = Oracle::new(&gl.errors);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, false))
        }));
        assert!(crashed.is_err());
    }
    // Quiesced from here on: the resume and reference runs are unarmed.
    let _fp = faultpoint::quiesce();
    // Resume restores all six stages; the labeler is never consulted.
    let mut oracle = Oracle::new(&gl.errors);
    let resumed =
        pipeline.detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true)).unwrap();
    assert_eq!(oracle.labels_used(), 0, "fully-restored resume must not spend labels");

    let mut oracle = Oracle::new(&gl.errors);
    let clean = pipeline.detect(&gl.dirty, &mut oracle, budget);
    assert_same_result(&resumed, &clean, "finalize");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_or_garbled_snapshot_is_rejected_with_a_structured_error() {
    let budget = 15;
    let gl = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(24);
    let dir = tmp_dir("corrupt");
    let pipeline = Matelda::new(config(2));
    // Quiesced: under a parallel test runner another test may be armed.
    let _fp = faultpoint::quiesce();
    let mut oracle = Oracle::new(&gl.errors);
    pipeline.detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, false)).unwrap();

    let victim = dir.join("featurize.ckpt");
    let intact = fs::read(&victim).unwrap();
    let mut rng = StdRng::seed_from_u64(FaultPlan::new(7).seed);
    for kind in [Corruption::Truncate, Corruption::Garble] {
        fs::write(&victim, corrupt_bytes(&intact, kind, &mut rng)).unwrap();
        let mut oracle = Oracle::new(&gl.errors);
        let err = pipeline
            .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true))
            .unwrap_err();
        assert!(
            matches!(err, CkptError::Corrupt { .. }),
            "{kind:?} must surface as Corrupt, got: {err}"
        );
        assert_eq!(oracle.labels_used(), 0, "{kind:?}: no labels spent before rejection");
    }

    // Restore the intact snapshot: resume works again.
    fs::write(&victim, &intact).unwrap();
    let mut oracle = Oracle::new(&gl.errors);
    pipeline.detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true)).unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoints_from_different_inputs_are_rejected_by_name() {
    let budget = 15;
    let gl = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(25);
    let dir = tmp_dir("foreign");
    // Quiesced: under a parallel test runner another test may be armed.
    let _fp = faultpoint::quiesce();
    let mut oracle = Oracle::new(&gl.errors);
    Matelda::new(config(2))
        .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, false))
        .unwrap();

    // A different seed is a seed mismatch …
    let mut oracle = Oracle::new(&gl.errors);
    let err = Matelda::new(MateldaConfig { seed: 1, ..config(2) })
        .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true))
        .unwrap_err();
    assert!(matches!(&err, CkptError::Mismatch { what, .. } if *what == "seed"), "got: {err}");

    // … a different strategy is a config mismatch …
    let mut oracle = Oracle::new(&gl.errors);
    let cfg =
        MateldaConfig { training: matelda_core::TrainingStrategy::PerDomainFold, ..config(2) };
    let err = Matelda::new(cfg)
        .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true))
        .unwrap_err();
    assert!(matches!(&err, CkptError::Mismatch { what, .. } if *what == "config"), "got: {err}");

    // … but a different thread count resumes cleanly.
    let mut oracle = Oracle::new(&gl.errors);
    Matelda::new(config(4))
        .detect_durable(&gl.dirty, &mut oracle, budget, &durability(&dir, true))
        .unwrap();
    fs::remove_dir_all(&dir).unwrap();
}
