//! The storage fault-matrix audit (ISSUE 8 tentpole): every injectable
//! I/O fault site, every errno kind, at 1/2/4 threads — each cell must
//! end in one of exactly two outcomes:
//!
//! * `Ok` with the clean run's bit-identical digest (possibly marked
//!   degraded: the fault cost durability, never correctness), or
//! * a structured `CkptError` under `DurabilityPolicy::Fail`.
//!
//! Never a panic. Never a silently wrong digest. The site list is not
//! guessed: a [`Vfs::recording`] dry run counts the exact number of
//! storage operations a fresh durable run performs, and the sweep
//! enumerates all of them.

use matelda_chaos::{faultpoint, FaultKind, FaultPlan, InjectAt, Vfs, IO_FAULT_KINDS};
use matelda_core::{CkptError, Durability, DurabilityPolicy, Matelda, MateldaConfig, Oracle};
use matelda_lakegen::QuintetLake;
use std::fs;
use std::path::{Path, PathBuf};

const BUDGET: usize = 20;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matelda_io_faults_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(threads: usize) -> MateldaConfig {
    MateldaConfig { threads, ..Default::default() }
}

fn durability(dir: &Path, resume: bool, policy: DurabilityPolicy, vfs: Vfs) -> Durability {
    Durability { checkpoint_dir: Some(dir.to_path_buf()), resume, policy, vfs }
}

/// One durable run over `gl` with the given storage handle; panics in
/// the pipeline would propagate — their absence *is* the audit.
fn run(
    gl: &matelda_lakegen::GeneratedLake,
    threads: usize,
    dir: &Path,
    resume: bool,
    policy: DurabilityPolicy,
    vfs: Vfs,
) -> Result<matelda_core::DetectionResult, CkptError> {
    let mut oracle = Oracle::new(&gl.errors);
    Matelda::new(config(threads)).detect_durable(
        &gl.dirty,
        &mut oracle,
        BUDGET,
        &durability(dir, resume, policy, vfs),
    )
}

#[test]
fn every_fault_site_yields_the_clean_digest_or_an_explicit_error() {
    let gl = QuintetLake { rows_per_table: 15, error_rate: 0.1 }.generate(51);
    let _fp = faultpoint::quiesce();

    // The clean digest (no durability at all) — the bit-identity bar
    // every faulted cell must clear.
    let clean = {
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(config(1)).detect(&gl.dirty, &mut oracle, BUDGET).digest()
    };

    // Dry run through a recording handle: the authoritative site count.
    let recorder = Vfs::recording();
    let dir = tmp_dir("recording");
    run(&gl, 1, &dir, false, DurabilityPolicy::Fail, recorder.clone()).unwrap();
    let n_ops = recorder.op_count();
    fs::remove_dir_all(&dir).unwrap();
    assert!(n_ops > 0, "a durable run must perform storage operations");

    // The matrix under Degrade: every site sees every fault kind at one
    // thread, and every site runs again at 2 and 4 threads with the
    // kind rotating per site (thread count never changes what a fault
    // can corrupt — the rotation keeps full kind coverage across the
    // sweep without cubing the run count). Whatever the filesystem
    // does, the answer carries the clean bits.
    let check = |site: u64, kind: FaultKind, threads: usize| {
        let cell = format!("site {site}, {kind:?}, {threads} thread(s)");
        let dir = tmp_dir("cell");
        let inj = InjectAt::new(site, kind);
        let result = run(
            &gl,
            threads,
            &dir,
            false,
            DurabilityPolicy::Degrade,
            Vfs::with_injector(inj.clone()),
        )
        .unwrap_or_else(|e| panic!("{cell}: Degrade must still answer, got {e}"));
        assert_eq!(inj.fired(), 1, "{cell}: the fault must actually fire");
        assert_eq!(result.digest(), clean, "{cell}: digest diverged");
        let _ = fs::remove_dir_all(&dir);
    };
    for site in 0..n_ops {
        for kind in IO_FAULT_KINDS {
            check(site, kind, 1);
        }
        for (i, threads) in [2usize, 4].into_iter().enumerate() {
            check(site, IO_FAULT_KINDS[(site as usize + i) % IO_FAULT_KINDS.len()], threads);
        }
    }
}

#[test]
fn strict_policy_turns_every_hard_fault_into_a_structured_error() {
    let gl = QuintetLake { rows_per_table: 15, error_rate: 0.1 }.generate(51);
    let _fp = faultpoint::quiesce();

    let recorder = Vfs::recording();
    let dir = tmp_dir("strict_recording");
    run(&gl, 1, &dir, false, DurabilityPolicy::Fail, recorder.clone()).unwrap();
    let n_ops = recorder.op_count();
    fs::remove_dir_all(&dir).unwrap();

    // Spot-check the strict policy across the run: first, middle and
    // last commit sites. Dir-fsync sites are best-effort by contract
    // (observable, not fatal), so probe with a kind that hits the
    // rename instead on those: every Errno cell must either fail with
    // CkptError::Io or — only for a best-effort site — still succeed.
    for site in [0, n_ops / 2, n_ops - 1] {
        let dir = tmp_dir("strict_cell");
        let inj = InjectAt::new(site, FaultKind::Errno(std::io::ErrorKind::StorageFull));
        let outcome =
            run(&gl, 2, &dir, false, DurabilityPolicy::Fail, Vfs::with_injector(inj.clone()));
        assert_eq!(inj.fired(), 1, "site {site}: the fault must fire");
        match outcome {
            Err(CkptError::Io { .. }) => {}
            Ok(result) => assert!(
                !result.durability_degraded,
                "site {site}: Fail policy must never silently degrade"
            ),
            Err(other) => panic!("site {site}: expected Io, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_degraded_run_resumes_cleanly_after_the_storage_recovers() {
    let gl = QuintetLake { rows_per_table: 15, error_rate: 0.1 }.generate(52);
    let _fp = faultpoint::quiesce();
    let clean = {
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(config(2)).detect(&gl.dirty, &mut oracle, BUDGET).digest()
    };

    // ENOSPC partway through the run: some snapshots committed, then
    // the disk filled. The run degrades but answers with clean bits.
    // The site is the penultimate operation — the last commit's rename,
    // a hard fault by construction (the final op is the best-effort
    // dir-fsync) — found by counting, not guessed.
    let recorder = Vfs::recording();
    let sizing = tmp_dir("recover_sizing");
    run(&gl, 1, &sizing, false, DurabilityPolicy::Fail, recorder.clone()).unwrap();
    let _ = fs::remove_dir_all(&sizing);
    let dir = tmp_dir("recover");
    let inj =
        InjectAt::new(recorder.op_count() - 2, FaultKind::Errno(std::io::ErrorKind::StorageFull));
    let degraded =
        run(&gl, 2, &dir, false, DurabilityPolicy::Degrade, Vfs::with_injector(inj.clone()))
            .unwrap();
    assert_eq!(inj.fired(), 1);
    assert!(degraded.durability_degraded, "a mid-run ENOSPC must mark the run degraded");
    assert_eq!(degraded.digest(), clean);

    // The disk recovers (real I/O again): a resume over the partial
    // snapshot set restores what committed, re-runs the rest, and lands
    // on the same bits — the degraded run's leftovers are a valid
    // frontier, not poison.
    let resumed = run(&gl, 4, &dir, true, DurabilityPolicy::Fail, Vfs::real()).unwrap();
    assert!(!resumed.durability_degraded);
    assert_eq!(resumed.digest(), clean, "resume after recovery must be bit-identical");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn the_seeded_io_plan_is_reproducible_and_in_range() {
    let plan = FaultPlan::new(77);
    assert_eq!(plan.io_fault("audit", 35), plan.io_fault("audit", 35), "same seed, same fault");
    assert_ne!(
        plan.io_fault("audit", 1_000_000),
        FaultPlan::new(78).io_fault("audit", 1_000_000),
        "different seeds decorrelate"
    );
    for n_ops in [1u64, 7, 35] {
        let (at, _) = plan.io_fault(&format!("range:{n_ops}"), n_ops);
        assert!(at < n_ops, "site {at} out of range 0..{n_ops}");
    }
}
