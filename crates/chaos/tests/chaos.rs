//! The chaos integration suite: the tentpole acceptance tests for the
//! fault-isolated pipeline.
//!
//! Contract under test (ISSUE 2): with a [`FaultPlan`] killing k of N
//! tables, `detect` under `FaultPolicy::Skip`
//!
//! 1. completes,
//! 2. quarantines exactly those k tables,
//! 3. scores the surviving N−k tables bit-identically to a faultless run
//!    on a lake containing only the survivors, and
//! 4. produces bit-identical results at 1/2/4 threads under injection.

use matelda_chaos::{faultpoint, FaultPlan};
use matelda_core::{FaultPolicy, Matelda, MateldaConfig, Obs, Oracle};
use matelda_lakegen::QuintetLake;
use matelda_table::{
    read_lake_from_dir_with, write_lake_to_dir, CellId, CellMask, Lake, ReadOptions,
};
use std::path::PathBuf;

fn skip_config(threads: usize) -> MateldaConfig {
    MateldaConfig { on_error: FaultPolicy::Skip, threads, ..Default::default() }
}

/// Projects an error mask of `original` onto a lake holding only the
/// `survivors` (original table indices, ascending).
fn project_errors(errors: &CellMask, survivors: &[usize], projected: &Lake) -> CellMask {
    let cells = errors.iter_set().filter_map(|id| {
        survivors
            .iter()
            .position(|&t| t == id.table)
            .map(|local| CellId::new(local, id.row, id.col))
    });
    CellMask::from_cells(projected, cells.collect::<Vec<_>>())
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("matelda_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_tables_quarantine_and_survivors_match_a_projected_run() {
    let budget = 20;
    let gl = QuintetLake { rows_per_table: 30, error_rate: 0.1 }.generate(13);
    let n = gl.dirty.n_tables();
    let plan = FaultPlan::new(99);
    let points = plan.stage_points("embed", n, 2);
    let victims: Vec<usize> = points.iter().map(|(_, i)| *i).collect();
    assert_eq!(victims.len(), 2);

    let chaos = {
        let _guard = faultpoint::arm(points.clone());
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(skip_config(2)).detect(&gl.dirty, &mut oracle, budget)
    };

    // (1) completed, (2) quarantined exactly the planned victims.
    assert_eq!(chaos.quarantine.tables, victims);
    assert_eq!(chaos.report.faults.len(), victims.len());
    assert!(chaos.report.faults.iter().all(|f| f.stage == "embed"));

    // Quarantined tables are unscored: no cell of a victim is flagged.
    for &t in &victims {
        let (rows, cols) = (gl.dirty[t].n_rows(), gl.dirty[t].n_cols());
        for r in 0..rows {
            for c in 0..cols {
                assert!(!chaos.predicted.get(CellId::new(t, r, c)), "victim {t} cell flagged");
            }
        }
    }

    // (3) survivors score bit-identically to a faultless run on a lake
    // that never contained the victims.
    let survivors: Vec<usize> = (0..n).filter(|t| !victims.contains(t)).collect();
    let projected =
        Lake::new(survivors.iter().map(|&t| gl.dirty.tables[t].clone()).collect::<Vec<_>>());
    let proj_errors = project_errors(&gl.errors, &survivors, &projected);
    let mut oracle = Oracle::new(&proj_errors);
    // Quiesced: under a parallel test runner another test may be armed.
    let _fp = faultpoint::quiesce();
    let faultless = Matelda::new(skip_config(2)).detect(&projected, &mut oracle, budget);
    assert!(faultless.quarantine.is_empty());
    assert_eq!(chaos.labels_used, faultless.labels_used);
    for (local, &t) in survivors.iter().enumerate() {
        let (rows, cols) = (projected[local].n_rows(), projected[local].n_cols());
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(
                    chaos.predicted.get(CellId::new(t, r, c)),
                    faultless.predicted.get(CellId::new(local, r, c)),
                    "survivor {t} cell ({r},{c}) diverges from the projected run"
                );
            }
        }
    }
}

#[test]
fn bit_identical_across_thread_counts_under_injection() {
    let gl = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(7);
    let plan = FaultPlan::new(5);
    // Faults in three different stages at once.
    let mut points = plan.stage_points("featurize", gl.dirty.n_tables(), 1);
    points.extend(plan.stage_points("quality_folds", 3, 1));
    points.extend(plan.stage_points("classify", 6, 1));

    let run = |threads: usize| {
        let _guard = faultpoint::arm(points.clone());
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(skip_config(threads)).detect(&gl.dirty, &mut oracle, 20)
    };
    let base = run(1);
    assert!(!base.report.faults.is_empty(), "at least the featurize fault must fire");
    for threads in [2, 4] {
        let r = run(threads);
        assert_eq!(r.predicted, base.predicted, "threads={threads}");
        assert_eq!(r.quarantine, base.quarantine, "threads={threads}");
        assert_eq!(r.labels_used, base.labels_used, "threads={threads}");
        assert_eq!(r.report.faults, base.report.faults, "threads={threads}");
    }
}

#[test]
fn injected_faults_surface_in_the_event_log_without_changing_results() {
    let gl = QuintetLake { rows_per_table: 25, error_rate: 0.1 }.generate(7);
    let plan = FaultPlan::new(5);
    let mut points = plan.stage_points("featurize", gl.dirty.n_tables(), 1);
    points.extend(plan.stage_points("classify", 6, 1));

    let run = |obs: Obs| {
        let _guard = faultpoint::arm(points.clone());
        let mut oracle = Oracle::new(&gl.errors);
        Matelda::new(skip_config(2)).with_obs(obs).detect(&gl.dirty, &mut oracle, 20)
    };
    let untraced = run(Obs::disabled());
    let obs = Obs::enabled();
    let traced = run(obs.clone());

    // Observability is read-only: tracing a chaotic run changes nothing.
    assert_eq!(traced.predicted, untraced.predicted);
    assert_eq!(traced.quarantine, untraced.quarantine);
    assert_eq!(traced.report.faults, untraced.report.faults);

    // Every fault the engine recorded has a matching `fault.item` event,
    // all marked as injected (these are faultpoint panics, not organic).
    let fault_events = obs.events_named("fault.item");
    assert_eq!(fault_events.len(), traced.report.faults.len());
    assert!(!fault_events.is_empty(), "the armed faultpoints must fire");
    for ev in &fault_events {
        let injected = ev
            .fields
            .iter()
            .any(|(k, v)| k == "injected" && matches!(v, matelda_obs::OwnedVal::U(1)));
        assert!(injected, "fault event not marked injected: {ev:?}");
    }
    assert_eq!(obs.counter("faults.items"), Some(traced.report.faults.len() as u64));
}

#[test]
fn logged_corruption_matches_the_unlogged_plan() {
    let gl = QuintetLake { rows_per_table: 15, error_rate: 0.05 }.generate(9);
    let (dir_a, dir_b) = (tmp_dir("logged_a"), tmp_dir("logged_b"));
    write_lake_to_dir(&gl.dirty, &dir_a).expect("write a");
    write_lake_to_dir(&gl.dirty, &dir_b).expect("write b");

    let obs = Obs::enabled();
    let rec_logged = FaultPlan::new(31).corrupt_dir_logged(&dir_a, 2, &obs).expect("logged");
    let rec_plain = FaultPlan::new(31).corrupt_dir(&dir_b, 2).expect("plain");

    // The logging wrapper inflicts byte-identical damage...
    assert_eq!(rec_logged.len(), rec_plain.len());
    for (a, b) in rec_logged.iter().zip(&rec_plain) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.path.file_name(), b.path.file_name());
        assert_eq!(
            std::fs::read(&a.path).expect("read a"),
            std::fs::read(&b.path).expect("read b")
        );
    }
    // ...and records one event per victim plus the counter.
    assert_eq!(obs.events_named("chaos.corrupt").len(), rec_logged.len());
    assert_eq!(obs.counter("chaos.corruptions"), Some(rec_logged.len() as u64));
    std::fs::remove_dir_all(&dir_a).expect("cleanup a");
    std::fs::remove_dir_all(&dir_b).expect("cleanup b");
}

#[test]
fn corrupted_directory_ingests_under_tolerant_modes() {
    let gl = QuintetLake { rows_per_table: 20, error_rate: 0.08 }.generate(3);
    let dir = tmp_dir("ingest");
    write_lake_to_dir(&gl.dirty, &dir).expect("write lake");
    let n_files = gl.dirty.n_tables();

    let plan = FaultPlan::new(21);
    let records = plan.corrupt_dir(&dir, 3).expect("corrupt");
    assert_eq!(records.len(), 3);

    // Repair mode: never fails, every salvaged table is rectangular.
    let (lake, report) = read_lake_from_dir_with(&dir, &ReadOptions::repair()).expect("repair");
    assert_eq!(report.files.len(), n_files);
    assert!(lake.n_tables() >= n_files - 3, "the untouched files must load");
    for t in &lake.tables {
        for col in &t.columns {
            assert_eq!(col.values.len(), t.n_rows(), "{} not rectangular", t.name);
        }
    }

    // Skip mode: loaded + skipped covers every file, no panic, no error.
    let (skip_lake, skip_report) =
        read_lake_from_dir_with(&dir, &ReadOptions::skip()).expect("skip");
    assert_eq!(skip_lake.n_tables() + skip_report.skipped().count(), n_files);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn corruption_is_reproducible_across_identical_directories() {
    let gl = QuintetLake { rows_per_table: 15, error_rate: 0.05 }.generate(8);
    let (dir_a, dir_b) = (tmp_dir("repro_a"), tmp_dir("repro_b"));
    write_lake_to_dir(&gl.dirty, &dir_a).expect("write a");
    write_lake_to_dir(&gl.dirty, &dir_b).expect("write b");

    let rec_a = FaultPlan::new(17).corrupt_dir(&dir_a, 2).expect("corrupt a");
    let rec_b = FaultPlan::new(17).corrupt_dir(&dir_b, 2).expect("corrupt b");
    assert_eq!(rec_a.len(), rec_b.len());
    for (a, b) in rec_a.iter().zip(&rec_b) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.path.file_name(), b.path.file_name());
        let bytes_a = std::fs::read(&a.path).expect("read a");
        let bytes_b = std::fs::read(&b.path).expect("read b");
        assert_eq!(bytes_a, bytes_b, "{:?} corruption diverged", a.path.file_name());
    }
    std::fs::remove_dir_all(&dir_a).expect("cleanup a");
    std::fs::remove_dir_all(&dir_b).expect("cleanup b");
}

#[test]
fn end_to_end_chaos_run_completes() {
    // Both fault layers at once: corrupted files ingested tolerantly,
    // then detection with stage faults injected on top.
    let gl = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(11);
    let dir = tmp_dir("end_to_end");
    write_lake_to_dir(&gl.dirty, &dir).expect("write lake");
    let plan = FaultPlan::new(4);
    plan.corrupt_dir(&dir, 2).expect("corrupt");

    let (lake, _report) = read_lake_from_dir_with(&dir, &ReadOptions::repair()).expect("ingest");
    assert!(lake.n_tables() >= 3);

    let points = plan.stage_points("featurize", lake.n_tables(), 1);
    let _guard = faultpoint::arm(points);
    // The repaired lake has no ground truth; a constant labeler stands in.
    struct AlwaysClean(usize);
    impl matelda_core::Labeler for AlwaysClean {
        fn label(&mut self, _cell: CellId) -> bool {
            self.0 += 1;
            false
        }
        fn labels_used(&self) -> usize {
            self.0
        }
    }
    let mut labeler = AlwaysClean(0);
    let result = Matelda::new(skip_config(2)).detect(&lake, &mut labeler, 15);
    assert_eq!(result.quarantine.tables.len(), 1);
    assert_eq!(result.predicted.n_cells(), lake.n_cells());
    assert!(result.labels_used <= 15);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn workers_that_caught_item_panics_keep_serving_later_stages() {
    // The pool's workers are long-lived (ISSUE 6): an item panic on one
    // stage is caught on the worker via `catch_unwind`, and that same
    // worker — not a respawned replacement — must execute subsequent
    // stages' items. Two faulty maps followed by a clean one on the same
    // executor, with the spawn count pinned throughout.
    let exec = matelda_exec::Executor::new(4).with_inline_threshold(1);
    let _guard =
        faultpoint::arm(vec![("s1".to_string(), 3), ("s1".to_string(), 11), ("s2".to_string(), 0)]);

    for stage in ["s1", "s2"] {
        let out = exec.try_map_n(stage, 16, |i| {
            faultpoint::hit(stage, i);
            i * 2
        });
        let faults: Vec<usize> = (0..16).filter(|&i| out[i].is_err()).collect();
        let expected: Vec<usize> = if stage == "s1" { vec![3, 11] } else { vec![0] };
        assert_eq!(faults, expected, "stage {stage}");
        for (i, r) in out.iter().enumerate() {
            if let Ok(v) = r {
                assert_eq!(*v, i * 2);
            }
        }
    }
    let spawned = exec.workers_spawned();
    assert_eq!(spawned, 3, "4-thread pool = caller + 3 workers");

    // A clean third stage runs on the very same workers.
    let clean = exec.try_map_n("s3", 16, |i| i + 1);
    assert!(clean.iter().all(|r| r.is_ok()));
    assert_eq!(
        exec.workers_spawned(),
        spawned,
        "no worker died or was respawned after the caught panics"
    );
}
