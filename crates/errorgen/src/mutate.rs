//! Single-cell mutation primitives. Each returns `None` when the value is
//! not eligible for that mutation (the injector then tries another cell).

use matelda_table::value::{as_f64, is_null};
use rand::rngs::StdRng;
use rand::Rng;

/// Replaces the value with a missing-value token.
pub fn make_missing(value: &str, rng: &mut StdRng) -> Option<String> {
    if is_null(value) {
        return None; // already missing — not a new error
    }
    Some(if rng.random_bool(0.5) { String::new() } else { "NULL".to_string() })
}

/// Introduces a character-level typo: swap, delete, duplicate or replace.
/// Only values with at least two alphabetic characters are eligible.
pub fn make_typo(value: &str, rng: &mut StdRng) -> Option<String> {
    let chars: Vec<char> = value.chars().collect();
    let letter_positions: Vec<usize> =
        chars.iter().enumerate().filter(|(_, c)| c.is_alphabetic()).map(|(i, _)| i).collect();
    if letter_positions.len() < 2 {
        return None;
    }
    // Try a few times: some edits can be no-ops (swapping equal letters).
    for _ in 0..8 {
        let mut out = chars.clone();
        match rng.random_range(0..4u8) {
            0 => {
                // Swap two adjacent letters.
                let k = rng.random_range(0..letter_positions.len() - 1);
                let (i, j) = (letter_positions[k], letter_positions[k + 1]);
                out.swap(i, j);
            }
            1 => {
                // Delete a letter.
                let i = letter_positions[rng.random_range(0..letter_positions.len())];
                out.remove(i);
            }
            2 => {
                // Duplicate a letter.
                let i = letter_positions[rng.random_range(0..letter_positions.len())];
                let c = out[i];
                out.insert(i, c);
            }
            _ => {
                // Replace a letter with a random lowercase letter.
                let i = letter_positions[rng.random_range(0..letter_positions.len())];
                out[i] = (b'a' + rng.random_range(0..26u8)) as char;
            }
        }
        let candidate: String = out.into_iter().collect();
        if candidate != value {
            return Some(candidate);
        }
    }
    None
}

/// Introduces a formatting issue: currency prefix or thousands separators
/// on numerics, whitespace padding or case mangling otherwise.
pub fn make_formatting(value: &str, rng: &mut StdRng) -> Option<String> {
    if is_null(value) {
        return None;
    }
    let candidate = if as_f64(value).is_some() {
        match rng.random_range(0..3u8) {
            0 => format!("${value}"),
            1 => format!("{value}%"),
            _ => group_thousands(value),
        }
    } else if value.chars().any(|c| c.is_alphabetic()) {
        match rng.random_range(0..3u8) {
            0 => format!("  {value}"),
            1 => value.to_uppercase(),
            _ => value.to_lowercase(),
        }
    } else {
        format!(" {value} ")
    };
    (candidate != value).then_some(candidate)
}

/// Inserts `,` thousands separators into the integer part of a numeric
/// string (`534858444` → `534,858,444`).
fn group_thousands(value: &str) -> String {
    let (int_part, frac_part) = match value.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (value, None),
    };
    let digits: Vec<char> = int_part.chars().collect();
    let mut out = String::new();
    let digit_count = digits.iter().filter(|c| c.is_ascii_digit()).count();
    let mut remaining = digit_count;
    for c in digits {
        out.push(c);
        if c.is_ascii_digit() {
            remaining -= 1;
            if remaining > 0 && remaining % 3 == 0 {
                out.push(',');
            }
        }
    }
    if let Some(f) = frac_part {
        out.push('.');
        out.push_str(f);
    }
    out
}

/// Turns a numeric value into a far-out outlier (scale by 100/1000 or
/// inject a magnitude shift). Only numeric values are eligible.
pub fn make_outlier(value: &str, rng: &mut StdRng) -> Option<String> {
    let x = as_f64(value)?;
    let is_int = value.trim().parse::<i64>().is_ok();
    let factor = [100.0, 1000.0, -100.0][rng.random_range(0..3usize)];
    let y = if x.abs() < 1e-9 { factor * 7.7 } else { x * factor };
    let candidate = if is_int { format!("{}", y as i64) } else { format!("{y:.2}") };
    (candidate != value).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn missing_replaces_value() {
        let mut r = rng();
        let m = make_missing("Chelsea", &mut r).expect("eligible");
        assert!(m.is_empty() || m == "NULL");
        assert_eq!(make_missing("", &mut r), None);
        assert_eq!(make_missing("NULL", &mut r), None);
    }

    #[test]
    fn typo_changes_value_and_needs_letters() {
        let mut r = rng();
        for _ in 0..20 {
            let t = make_typo("France", &mut r).expect("eligible");
            assert_ne!(t, "France");
        }
        assert_eq!(make_typo("42", &mut r), None);
        assert_eq!(make_typo("a", &mut r), None);
        assert_eq!(make_typo("", &mut r), None);
    }

    #[test]
    fn formatting_changes_numeric_values() {
        let mut r = rng();
        for _ in 0..20 {
            let f = make_formatting("534858444", &mut r).expect("eligible");
            assert_ne!(f, "534858444");
            // Still recognizably the same digits underneath.
            let stripped: String = f.chars().filter(|c| c.is_ascii_digit()).collect();
            assert_eq!(stripped, "534858444");
        }
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands("534858444"), "534,858,444");
        assert_eq!(group_thousands("1234.5"), "1,234.5");
        assert_eq!(group_thousands("12"), "12");
        assert_eq!(group_thousands("-1234"), "-1,234");
    }

    #[test]
    fn outlier_is_far_from_original() {
        let mut r = rng();
        let o = make_outlier("42", &mut r).expect("numeric");
        let v = as_f64(&o).expect("still numeric");
        assert!(v.abs() >= 4200.0 - 1e-9);
        assert_eq!(make_outlier("Chelsea", &mut r), None);
    }

    #[test]
    fn outlier_on_zero_still_moves() {
        let mut r = rng();
        let o = make_outlier("0", &mut r).expect("numeric");
        assert_ne!(o, "0");
    }
}
