//! The injection planner: distributes a target error count evenly over the
//! requested error types and applies cell mutations.

use crate::mutate;
use matelda_fd::{mine_exact_injectable, Partition};
use matelda_table::value::as_f64;
use matelda_table::{DataType, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Error taxonomy, matching the paper's Table 1 legend: MV, T, FI, NO, VAD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ErrorType {
    /// Missing value (MV).
    MissingValue,
    /// Typo (T).
    Typo,
    /// Formatting issue (FI).
    Formatting,
    /// Numeric outlier (NO).
    NumericOutlier,
    /// Violated attribute dependency (VAD) — the semantic errors.
    FdViolation,
}

impl ErrorType {
    /// The paper's abbreviation for the type.
    pub fn abbrev(self) -> &'static str {
        match self {
            ErrorType::MissingValue => "MV",
            ErrorType::Typo => "T",
            ErrorType::Formatting => "FI",
            ErrorType::NumericOutlier => "NO",
            ErrorType::FdViolation => "VAD",
        }
    }
}

/// What to inject.
#[derive(Debug, Clone)]
pub struct ErrorSpec {
    /// Target fraction of cells to dirty (paper Table 1's "Error Rate").
    pub rate: f64,
    /// Error types; the target count is split evenly among them.
    pub types: Vec<ErrorType>,
    /// RNG seed.
    pub seed: u64,
}

impl ErrorSpec {
    /// Spec over all five types, matching REIN/DGov-style mixes.
    pub fn all_types(rate: f64, seed: u64) -> Self {
        Self {
            rate,
            types: vec![
                ErrorType::MissingValue,
                ErrorType::Typo,
                ErrorType::Formatting,
                ErrorType::NumericOutlier,
                ErrorType::FdViolation,
            ],
            seed,
        }
    }
}

/// Which cells were injected, with their error type.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// `(row, col, type)` of every injected cell.
    pub injected: Vec<(usize, usize, ErrorType)>,
}

impl InjectionReport {
    /// Cells of one specific error type.
    pub fn of_type(&self, t: ErrorType) -> Vec<(usize, usize)> {
        self.injected.iter().filter(|(_, _, et)| *et == t).map(|&(r, c, _)| (r, c)).collect()
    }

    /// Number of injected cells.
    pub fn len(&self) -> usize {
        self.injected.len()
    }

    /// `true` if nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.injected.is_empty()
    }
}

/// Injects errors into a clean table per `spec`. Returns the dirty table
/// and the injection report. The clean input is left untouched; diffing
/// dirty-vs-clean recovers exactly the injected set.
///
/// ```
/// use matelda_errorgen::{inject, ErrorSpec};
/// use matelda_table::{Column, Table};
/// let clean = Table::new(
///     "t",
///     vec![
///         Column::new("city", vec!["Paris"; 30]),
///         Column::new("n", (0..30).map(|i| (100 + i).to_string()).collect::<Vec<_>>()),
///     ],
/// );
/// let (dirty, report) = inject(&clean, &ErrorSpec::all_types(0.2, 7));
/// assert_eq!(report.len(), 12); // 20% of 60 cells
/// assert_ne!(dirty, clean);
/// ```
pub fn inject(clean: &Table, spec: &ErrorSpec) -> (Table, InjectionReport) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut dirty = clean.clone();
    let mut report = InjectionReport::default();
    let n_cells = clean.n_cells();
    if n_cells == 0 || spec.types.is_empty() || spec.rate <= 0.0 {
        return (dirty, report);
    }
    let target = ((spec.rate * n_cells as f64).round() as usize).min(n_cells);
    let mut used: HashSet<(usize, usize)> = HashSet::new();

    // Even split with remainder spread over the first types.
    let k = spec.types.len();
    let quotas: Vec<usize> = (0..k).map(|i| target / k + usize::from(i < target % k)).collect();

    // FD machinery is shared across passes: dependencies are mined once on
    // the clean table ("utilized as many functional dependencies as
    // possible").
    let fds = mine_exact_injectable(clean);
    let partitions: Vec<Partition> =
        (0..clean.n_cols()).map(|c| Partition::of_column(clean, c)).collect();

    // First pass: the even split. Later passes hand the entire shortfall
    // to whichever types can still absorb it (e.g. NumericOutlier quota on
    // a table without numeric columns flows to the other types), until the
    // target is met or no type makes progress.
    let mut leftover: usize = 0;
    for (ti, &ty) in spec.types.iter().enumerate() {
        let want = quotas[ti];
        let got = inject_type(
            clean,
            &mut dirty,
            ty,
            want,
            &fds,
            &partitions,
            &mut used,
            &mut report,
            &mut rng,
        );
        leftover += want - got;
    }
    while leftover > 0 {
        let before = leftover;
        for &ty in &spec.types {
            if leftover == 0 {
                break;
            }
            let got = inject_type(
                clean,
                &mut dirty,
                ty,
                leftover,
                &fds,
                &partitions,
                &mut used,
                &mut report,
                &mut rng,
            );
            leftover -= got;
        }
        if leftover == before {
            break; // nothing can absorb the rest
        }
    }
    report.injected.sort_unstable();
    (dirty, report)
}

/// Injects up to `want` errors of one type; returns how many succeeded.
#[allow(clippy::too_many_arguments)]
fn inject_type(
    clean: &Table,
    dirty: &mut Table,
    ty: ErrorType,
    want: usize,
    fds: &[matelda_fd::Fd],
    partitions: &[Partition],
    used: &mut HashSet<(usize, usize)>,
    report: &mut InjectionReport,
    rng: &mut StdRng,
) -> usize {
    if want == 0 {
        return 0;
    }
    let mut candidates = eligible_cells(clean, ty, fds, partitions);
    candidates.retain(|c| !used.contains(c));
    candidates.shuffle(rng);

    let mut done = 0;
    for (r, c) in candidates {
        if done >= want {
            break;
        }
        let original = clean.cell(r, c);
        let mutated = match ty {
            ErrorType::MissingValue => mutate::make_missing(original, rng),
            ErrorType::Typo => mutate::make_typo(original, rng),
            ErrorType::Formatting => mutate::make_formatting(original, rng),
            ErrorType::NumericOutlier => mutate::make_outlier(original, rng),
            ErrorType::FdViolation => make_fd_violation(clean, r, c, fds, partitions, rng),
        };
        if let Some(new_value) = mutated {
            if new_value != original {
                *dirty.cell_mut(r, c) = new_value;
                used.insert((r, c));
                report.injected.push((r, c, ty));
                done += 1;
            }
        }
    }
    done
}

/// Cells eligible for a given error type.
fn eligible_cells(
    table: &Table,
    ty: ErrorType,
    fds: &[matelda_fd::Fd],
    partitions: &[Partition],
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    match ty {
        ErrorType::MissingValue | ErrorType::Formatting => {
            for (c, col) in table.columns.iter().enumerate() {
                for (r, v) in col.values.iter().enumerate() {
                    if !matelda_table::value::is_null(v) {
                        out.push((r, c));
                    }
                }
            }
        }
        ErrorType::Typo => {
            for (c, col) in table.columns.iter().enumerate() {
                for (r, v) in col.values.iter().enumerate() {
                    if v.chars().filter(|ch| ch.is_alphabetic()).count() >= 2 {
                        out.push((r, c));
                    }
                }
            }
        }
        ErrorType::NumericOutlier => {
            for (c, col) in table.columns.iter().enumerate() {
                if !matches!(col.data_type(), DataType::Integer | DataType::Float) {
                    continue;
                }
                for (r, v) in col.values.iter().enumerate() {
                    if as_f64(v).is_some() {
                        out.push((r, c));
                    }
                }
            }
        }
        ErrorType::FdViolation => {
            // Any cell on either side of an injectable FD whose LHS group
            // has duplicates ("errors on both sides of a functional
            // dependency").
            let mut seen = HashSet::new();
            for fd in fds {
                for group in &partitions[fd.lhs].groups {
                    for &r in group {
                        seen.insert((r, fd.rhs));
                        seen.insert((r, fd.lhs));
                    }
                }
            }
            out.extend(seen);
            out.sort_unstable();
        }
    }
    out
}

/// Mutates cell `(r, c)` so that some clean FD becomes violated, using a
/// *plausible* replacement value drawn from the same column's domain.
fn make_fd_violation(
    clean: &Table,
    r: usize,
    c: usize,
    fds: &[matelda_fd::Fd],
    partitions: &[Partition],
    rng: &mut StdRng,
) -> Option<String> {
    let original = clean.cell(r, c);
    // Collect the FDs this cell can break, on either side.
    let mut applicable: Vec<&matelda_fd::Fd> = fds
        .iter()
        .filter(|fd| {
            (fd.rhs == c || fd.lhs == c) && partitions[fd.lhs].groups.iter().any(|g| g.contains(&r))
        })
        .collect();
    if applicable.is_empty() {
        return None;
    }
    applicable.sort();
    let fd = applicable[rng.random_range(0..applicable.len())];

    // Replacement pool: other distinct values of this column.
    let mut pool: Vec<&str> = clean.columns[c]
        .values
        .iter()
        .map(String::as_str)
        .filter(|v| *v != original && !matelda_table::value::is_null(v))
        .collect();
    pool.sort_unstable();
    pool.dedup();
    if pool.is_empty() {
        return None;
    }
    let replacement = pool[rng.random_range(0..pool.len())].to_string();

    // RHS-side change always violates (the group held one consistent RHS
    // value). LHS-side change violates unless the row's RHS happens to
    // match the adopted group's RHS; accept it anyway — BART's random
    // injection has the same slack, and the diff against the clean table
    // still counts it as an error.
    let _ = fd;
    Some(replacement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{diff_tables, CellMask, Column, Lake};

    /// A clean table with text, numeric and FD structure.
    fn clean() -> Table {
        let n = 40;
        let cities = ["Paris", "Berlin", "Rome", "Madrid"];
        let countries = ["France", "Germany", "Italy", "Spain"];
        Table::new(
            "clean",
            vec![
                Column::new("id", (0..n).map(|i| i.to_string())),
                Column::new("city", (0..n).map(|i| cities[i % 4].to_string())),
                Column::new("country", (0..n).map(|i| countries[i % 4].to_string())),
                Column::new("population", (0..n).map(|i| (1_000_000 + 13_337 * i).to_string())),
            ],
        )
    }

    #[test]
    fn injects_requested_rate() {
        let spec = ErrorSpec::all_types(0.1, 7);
        let (dirty, report) = inject(&clean(), &spec);
        let expected = (0.1f64 * 160.0).round() as usize;
        assert_eq!(report.len(), expected, "wanted {expected} errors");
        // The diff against clean recovers exactly the injected set.
        let lake = Lake::new(vec![dirty.clone()]);
        let mut mask = CellMask::empty(&lake);
        diff_tables(&dirty, &clean(), 0, &mut mask);
        assert_eq!(mask.count(), report.len());
        for &(r, c, _) in &report.injected {
            assert!(mask.get(matelda_table::CellId::new(0, r, c)));
        }
    }

    #[test]
    fn types_are_evenly_distributed() {
        let spec = ErrorSpec::all_types(0.2, 3);
        let (_, report) = inject(&clean(), &spec);
        for ty in &spec.types {
            let count = report.of_type(*ty).len();
            assert!(count >= 3, "type {:?} got only {count} of {} errors", ty, report.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ErrorSpec::all_types(0.15, 99);
        let (d1, r1) = inject(&clean(), &spec);
        let (d2, r2) = inject(&clean(), &spec);
        assert_eq!(d1, d2);
        assert_eq!(r1.injected, r2.injected);
    }

    #[test]
    fn no_cell_injected_twice() {
        let spec = ErrorSpec::all_types(0.3, 5);
        let (_, report) = inject(&clean(), &spec);
        let unique: HashSet<_> = report.injected.iter().map(|&(r, c, _)| (r, c)).collect();
        assert_eq!(unique.len(), report.len());
    }

    #[test]
    fn fd_violations_actually_violate() {
        let spec = ErrorSpec { rate: 0.05, types: vec![ErrorType::FdViolation], seed: 21 };
        let (dirty, report) = inject(&clean(), &spec);
        assert!(!report.is_empty());
        // The clean table satisfies city->country exactly; the dirty one
        // must not (at least one injected violation touches it).
        let stats = matelda_fd::violation_stats(&dirty, 1, 2);
        assert!(
            !stats.violating_rows.is_empty(),
            "expected city->country violations, report = {:?}",
            report.injected
        );
    }

    #[test]
    fn outliers_are_numeric_and_far() {
        let spec = ErrorSpec { rate: 0.05, types: vec![ErrorType::NumericOutlier], seed: 4 };
        let (dirty, report) = inject(&clean(), &spec);
        assert!(!report.is_empty());
        for (r, c) in report.of_type(ErrorType::NumericOutlier) {
            assert!(c == 0 || c == 3, "outliers only in numeric columns (id, population), got {c}");
            if c == 0 {
                continue;
            }
            let v = as_f64(dirty.cell(r, c)).expect("outlier remains numeric");
            assert!(v.abs() > 10_000_000.0 || v < 0.0, "value {v} is not an outlier");
        }
    }

    #[test]
    fn unfillable_quota_is_redistributed() {
        // No numeric columns: outlier quota must flow to other types.
        let t = Table::new(
            "text_only",
            vec![
                Column::new("a", ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]),
                Column::new("b", ["one", "two", "three", "four", "five", "six"]),
            ],
        );
        let spec = ErrorSpec {
            rate: 0.5,
            types: vec![ErrorType::NumericOutlier, ErrorType::Typo],
            seed: 8,
        };
        let (_, report) = inject(&t, &spec);
        assert_eq!(report.len(), 6, "half of 12 cells");
        assert!(report.of_type(ErrorType::NumericOutlier).is_empty());
        assert_eq!(report.of_type(ErrorType::Typo).len(), 6);
    }

    #[test]
    fn zero_rate_or_empty_table() {
        let (d, r) = inject(&clean(), &ErrorSpec::all_types(0.0, 1));
        assert_eq!(d, clean());
        assert!(r.is_empty());
        let empty = Table::new("e", vec![]);
        let (_, r) = inject(&empty, &ErrorSpec::all_types(0.5, 1));
        assert!(r.is_empty());
    }
}
