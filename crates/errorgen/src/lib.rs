//! # matelda-errorgen
//!
//! A BART-style error generator (Santoro et al., SIGMOD 2016 — the tool
//! the paper uses to synthesize its DGov-X and REIN benchmarks).
//!
//! Given a *clean* table it injects a configurable rate of errors, evenly
//! distributed over the requested error types (the paper: "we evenly
//! distributed the number of errors among the three types and utilized as
//! many functional dependencies as possible"):
//!
//! * **missing values** (MV) — blank out a cell,
//! * **typos** (T) — character-level edits in alphabetic values,
//! * **formatting issues** (FI) — currency signs, separators, date
//!   reformatting,
//! * **numeric outliers** (NO) — scale or shift a numeric value far out of
//!   its column distribution,
//! * **FD violations** (VAD, the semantic errors) — perturb either side of
//!   a mined functional dependency so a previously consistent group
//!   becomes inconsistent, using *plausible* in-domain replacement values
//!   (that is what makes them semantic rather than syntactic).
//!
//! Every injected cell is reported with its error type, so downstream
//! evaluation can compute per-type recall (paper Table 3, Figure 4).

pub mod infer;
pub mod inject;
pub mod mutate;

pub use infer::{infer_error_type, infer_typed_masks};
pub use inject::{inject, ErrorSpec, ErrorType, InjectionReport};
