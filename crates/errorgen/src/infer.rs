//! Inferring an error's *type* from a (dirty, clean) value pair.
//!
//! The CLI's `--failure-report` works on lakes loaded from disk, where
//! the injection report (which records each error's [`crate::ErrorType`])
//! does not exist — only the dirty and clean values do. This module
//! reverses the mutation signatures of [`crate::mutate`] to recover the
//! type: a dirty value that is a null token is a missing value, one
//! that equals the clean value after stripping formatting decoration is
//! a formatting issue, a numeric value scaled far away is an outlier, a
//! small character edit is a typo, and anything else (a value swapped
//! wholesale, as the FD injector does) is classed as a rule violation.

use crate::ErrorType;
use matelda_table::value::{as_f64, is_null};
use matelda_table::Lake;

/// Infers the error type of one `(dirty, clean)` cell pair. Returns
/// `None` when the values are equal (no error to classify).
pub fn infer_error_type(dirty: &str, clean: &str) -> Option<ErrorType> {
    if dirty == clean {
        return None;
    }
    // Missing value: the injector writes "" or "NULL" over a non-null
    // value (a null over a null is not a new error).
    if is_null(dirty) {
        return Some(ErrorType::MissingValue);
    }
    // Formatting: the clean value survives underneath the decoration —
    // currency/percent affixes, thousands separators, whitespace
    // padding, or a pure case change.
    if strip_formatting(dirty) == clean
        || dirty.trim() == clean
        || dirty.to_lowercase() == clean.to_lowercase()
    {
        return Some(ErrorType::Formatting);
    }
    // Numeric outlier: both parse and the dirty value sits a couple of
    // orders of magnitude away (the injector scales by ±100/1000).
    if let (Some(d), Some(c)) = (as_f64(dirty), as_f64(clean)) {
        let far = if c.abs() < 1e-9 { d.abs() > 1.0 } else { (d / c).abs() >= 50.0 };
        if far {
            return Some(ErrorType::NumericOutlier);
        }
    }
    // Typo: a small character-level edit of a value with letters (the
    // injector swaps/deletes/duplicates/replaces one letter, so the
    // edit distance is at most 2 — one swap touches two positions).
    if clean.chars().any(|ch| ch.is_alphabetic()) && edit_distance_at_most(dirty, clean, 2) {
        return Some(ErrorType::Typo);
    }
    // Everything else: the value was replaced wholesale, which is what
    // the FD-violation injector does (it copies another group's RHS).
    Some(ErrorType::FdViolation)
}

/// The typed truth masks of a `(dirty, clean)` lake pair: for each
/// error type present, the mask of cells whose diff classifies as that
/// type — the shape `matelda-bench`'s eval recorder and the failure
/// report consume. Order follows [`ErrorType`]'s canonical listing;
/// types with no cells are omitted.
pub fn infer_typed_masks(dirty: &Lake, clean: &Lake) -> Vec<(String, matelda_table::CellMask)> {
    let mut masks: Vec<(ErrorType, matelda_table::CellMask)> = [
        ErrorType::MissingValue,
        ErrorType::Typo,
        ErrorType::Formatting,
        ErrorType::NumericOutlier,
        ErrorType::FdViolation,
    ]
    .into_iter()
    .map(|t| (t, matelda_table::CellMask::empty(dirty)))
    .collect();
    for (t, (dt, ct)) in dirty.tables.iter().zip(&clean.tables).enumerate() {
        for (c, (dc, cc)) in dt.columns.iter().zip(&ct.columns).enumerate() {
            for (r, (dv, cv)) in dc.values.iter().zip(&cc.values).enumerate() {
                if let Some(ty) = infer_error_type(dv, cv) {
                    let slot = masks.iter_mut().find(|(t2, _)| *t2 == ty).expect("all types");
                    slot.1.set(matelda_table::CellId::new(t, r, c), true);
                }
            }
        }
    }
    masks
        .into_iter()
        .filter(|(_, m)| m.count() > 0)
        .map(|(t, m)| (t.abbrev().to_string(), m))
        .collect()
}

/// Strips the formatting decoration [`crate::mutate::make_formatting`]
/// applies to numerics: `$`/`%` affixes and `,` thousands separators.
fn strip_formatting(s: &str) -> String {
    s.trim().trim_start_matches('$').trim_end_matches('%').replace(',', "")
}

/// Whether the Levenshtein distance between `a` and `b` is ≤ `k`.
/// Banded DP — O(k·|a|) time, two rows of memory.
fn edit_distance_at_most(a: &str, b: &str, k: usize) -> bool {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > k {
        return false;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > k {
            return false;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()] <= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{inject, ErrorSpec};
    use matelda_table::{Column, Table};

    #[test]
    fn classifies_each_mutation_signature() {
        assert_eq!(infer_error_type("", "Chelsea"), Some(ErrorType::MissingValue));
        assert_eq!(infer_error_type("NULL", "42"), Some(ErrorType::MissingValue));
        assert_eq!(infer_error_type("$42", "42"), Some(ErrorType::Formatting));
        assert_eq!(infer_error_type("42%", "42"), Some(ErrorType::Formatting));
        assert_eq!(infer_error_type("534,858,444", "534858444"), Some(ErrorType::Formatting));
        assert_eq!(infer_error_type("  Chelsea", "Chelsea"), Some(ErrorType::Formatting));
        assert_eq!(infer_error_type("CHELSEA", "Chelsea"), Some(ErrorType::Formatting));
        assert_eq!(infer_error_type("4200", "42"), Some(ErrorType::NumericOutlier));
        assert_eq!(infer_error_type("-42000", "42"), Some(ErrorType::NumericOutlier));
        assert_eq!(infer_error_type("Chelsae", "Chelsea"), Some(ErrorType::Typo));
        assert_eq!(infer_error_type("Chelsa", "Chelsea"), Some(ErrorType::Typo));
        assert_eq!(infer_error_type("France", "Spain"), Some(ErrorType::FdViolation));
        assert_eq!(infer_error_type("same", "same"), None);
    }

    #[test]
    fn edit_distance_band_is_exact_at_the_boundary() {
        assert!(edit_distance_at_most("abc", "abc", 0));
        assert!(edit_distance_at_most("abcd", "abdc", 2));
        assert!(!edit_distance_at_most("abcdef", "fedcba", 2));
        assert!(!edit_distance_at_most("ab", "abcde", 2));
    }

    #[test]
    fn round_trips_the_injector() {
        // Inject every type into a table, then recover the types from
        // the (dirty, clean) diff alone and check against the report.
        let clean_table = Table::new(
            "clubs",
            vec![
                Column::new("club", vec!["Chelsea"; 40]),
                Column::new("points", (0..40).map(|i| (50 + i).to_string()).collect::<Vec<_>>()),
                Column::new("country", vec!["England"; 40]),
            ],
        );
        let spec = ErrorSpec::all_types(0.2, 7);
        let (dirty_table, report) = inject(&clean_table, &spec);
        assert!(!report.is_empty());
        let clean = Lake::new(vec![clean_table]);
        let dirty = Lake::new(vec![dirty_table]);
        let typed = infer_typed_masks(&dirty, &clean);
        assert!(!typed.is_empty());
        let total: usize = typed.iter().map(|(_, m)| m.count()).sum();
        assert_eq!(total, report.len(), "every injected error gets exactly one type");
        // Each inferred MV cell really is a null token over a non-null.
        if let Some((_, mv)) = typed.iter().find(|(n, _)| n == "MV") {
            for id in mv.iter_set() {
                assert!(matelda_table::value::is_null(
                    &dirty[id.table].columns[id.col].values[id.row]
                ));
            }
        }
    }
}
