//! The Raha baseline (Mahdavi et al., SIGMOD 2019) and the paper's four
//! budget-distribution variants (§4.1.4).
//!
//! Raha is strictly single-table and column-specific, which is exactly the
//! contrast the paper draws with Matelda (§2.3):
//!
//! * per column it instantiates a *strategy ensemble* — TF-histogram and
//!   Gaussian outlier sweeps, one **bag-of-characters checker per
//!   character of the column's alphabet**, and one FD-violation detector
//!   per candidate unary FD involving the column — so feature vectors
//!   have a different length in every column and cannot be compared
//!   across columns, let alone tables;
//! * cells of each column are clustered hierarchically and labels are
//!   drawn tuple-at-a-time, propagated within clusters, and fed to one
//!   gradient-boosting model per column.

use crate::{Budget, ErrorDetector};
use matelda_cluster::agglomerative;
use matelda_detect::outlier::{gaussian_flags, histogram_flags};
use matelda_exec::{Executor, RunReport, StageReport};
use matelda_fd::violating_rows;
use matelda_ml::{GradientBoostingClassifier, GradientBoostingConfig};
use matelda_table::{CellId, CellMask, Labeler, Lake, Table};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashSet};
use std::time::Instant;

/// The paper's Raha budget-distribution schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RahaVariant {
    /// Raha-Standard: the same number of labeled tuples for every table;
    /// needs ≥ 1 tuple per table to be applicable.
    Standard,
    /// Raha-RT: tables are shuffled and receive one labeled tuple each in
    /// sequence until the cell budget runs out; tables wider than the
    /// remaining budget are skipped.
    RandomTables,
    /// Raha-2LPC: random columns receive two cell labels each until the
    /// budget runs out; other columns stay untreated.
    TwoLabelsPerCol,
    /// Raha-20LPC: like 2LPC with twenty labels per chosen column.
    TwentyLabelsPerCol,
}

/// The Raha baseline system.
#[derive(Debug, Clone)]
pub struct Raha {
    /// Budget scheme.
    pub variant: RahaVariant,
    /// Seed for table/column shuffling.
    pub seed: u64,
    /// Classifier hyperparameters.
    pub gbm: GradientBoostingConfig,
    /// Cap on bag-of-characters checkers per column (the most frequent
    /// characters; Raha instantiates one per character).
    pub max_char_checkers: usize,
    /// Executor worker threads for the per-column featurize/cluster and
    /// train/predict paths; `0` means available parallelism. Labeling is
    /// always sequential, and the mask is identical at every value.
    pub threads: usize,
}

impl Raha {
    /// Creates the given variant with default hyperparameters.
    pub fn new(variant: RahaVariant) -> Self {
        Self {
            variant,
            seed: 0,
            gbm: GradientBoostingConfig::default(),
            max_char_checkers: 24,
            threads: 0,
        }
    }
}

/// Adds `secs`/`items` to the report's stage `name`, creating it on
/// first use — Raha runs per table, so stage timings accumulate across
/// tables instead of appearing once per table.
fn accumulate(report: &mut RunReport, name: &str, secs: f64, items: u64) {
    if let Some(s) = report.stages.iter_mut().find(|s| s.name == name) {
        s.wall_secs += secs;
        s.items += items;
    } else {
        let mut s = StageReport::new(name);
        s.wall_secs = secs;
        s.items = items;
        report.stages.push(s);
    }
}

/// Raha's column-specific feature matrix: one row per cell of the column.
/// Vector length varies per column (outliers + alphabet + FDs).
pub fn column_strategy_features(table: &Table, col: usize, max_chars: usize) -> Vec<Vec<f32>> {
    let values = &table.columns[col].values;
    let n = values.len();
    let mut features: Vec<Vec<f32>> = vec![Vec::new(); n];

    // Outlier strategies (shared with Matelda's detectors).
    let hist = histogram_flags(values);
    let gauss = gaussian_flags(values, table.columns[col].data_type());
    for r in 0..n {
        features[r].extend(hist[r].iter().map(|&b| f32::from(u8::from(b))));
        features[r].extend(gauss[r].iter().map(|&b| f32::from(u8::from(b))));
    }

    // Bag-of-characters checkers: one per (frequent) character of the
    // column alphabet — the column-specific feature family Matelda
    // cannot afford (§2.3).
    let mut char_freq: BTreeMap<char, usize> = BTreeMap::new();
    for v in values {
        for ch in v.chars() {
            *char_freq.entry(ch).or_insert(0) += 1;
        }
    }
    let mut alphabet: Vec<(char, usize)> = char_freq.into_iter().collect();
    alphabet.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    alphabet.truncate(max_chars);
    for (ch, _) in &alphabet {
        for (r, v) in values.iter().enumerate() {
            features[r].push(f32::from(u8::from(v.contains(*ch))));
        }
    }

    // FD-violation strategies: all candidate unary FDs a -> col.
    for a in 0..table.n_cols() {
        if a == col {
            continue;
        }
        let viol: HashSet<usize> = violating_rows(table, a, col).into_iter().collect();
        for (r, f) in features.iter_mut().enumerate() {
            f.push(f32::from(u8::from(viol.contains(&r))));
        }
    }
    features
}

/// Per-table Raha: clusters each column's cells, labels `tuple_budget`
/// tuples chosen for cluster coverage, propagates within clusters, trains
/// one model per column and predicts every cell. Marks hits into `mask`.
///
/// The per-column featurize/cluster and train/predict paths run on
/// `exec` with results merged in column order, so the mask is identical
/// at every thread count; labeling is sequential. Stage timings
/// accumulate into `report`.
#[allow(clippy::too_many_arguments)]
pub fn detect_table(
    lake: &Lake,
    t: usize,
    tuple_budget: usize,
    labeler: &mut dyn Labeler,
    gbm: &GradientBoostingConfig,
    max_chars: usize,
    exec: &Executor,
    report: &mut RunReport,
    mask: &mut CellMask,
) {
    let table = &lake[t];
    let (n, m) = (table.n_rows(), table.n_cols());
    if n == 0 || m == 0 || tuple_budget == 0 {
        return;
    }

    // Per-column strategy features and clustering; cluster count grows
    // with the budget (Raha refines its clustering one level per labeled
    // tuple; finer clusters keep propagation pure — labeled tuples cover
    // several clusters each because every tuple labels one cell in every
    // column).
    let k = (2 * tuple_budget + 1).clamp(2, n);
    let start = Instant::now();
    let per_column: Vec<(Vec<Vec<f32>>, Vec<usize>)> = exec.map_n(m, |c| {
        let features = column_strategy_features(table, c, max_chars);
        let clusters = agglomerative(n, k, |a, b| {
            features[a]
                .iter()
                .zip(&features[b])
                .map(|(x, y)| f64::from((x - y) * (x - y)))
                .sum::<f64>()
                .sqrt()
        });
        (features, clusters)
    });
    let (features, clusters): (Vec<_>, Vec<_>) = per_column.into_iter().unzip();
    accumulate(report, "features+cluster", start.elapsed().as_secs_f64(), (n * m) as u64);

    // Tuple sampling: greedily pick the tuple covering the most
    // still-unlabeled (column, cluster) pairs.
    let start = Instant::now();
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    let mut labeled_rows: Vec<usize> = Vec::new();
    for _ in 0..tuple_budget.min(n) {
        let best_row = (0..n)
            .filter(|r| !labeled_rows.contains(r))
            .max_by_key(|&r| (0..m).filter(|&c| !covered.contains(&(c, clusters[c][r]))).count());
        let Some(row) = best_row else { break };
        labeled_rows.push(row);
        for c in 0..m {
            covered.insert((c, clusters[c][row]));
        }
    }

    // Label the chosen tuples cell by cell; propagate by cluster majority.
    let mut cluster_votes: Vec<BTreeMap<usize, (usize, usize)>> = vec![BTreeMap::new(); m]; // cluster -> (pos, neg)
    for &r in &labeled_rows {
        for c in 0..m {
            let verdict = labeler.label(CellId::new(t, r, c));
            let entry = cluster_votes[c].entry(clusters[c][r]).or_insert((0, 0));
            if verdict {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
    }
    accumulate(report, "label", start.elapsed().as_secs_f64(), (labeled_rows.len() * m) as u64);

    // Per-column training and prediction, merged in column order.
    let start = Instant::now();
    let flagged: Vec<Vec<usize>> = exec.map_n(m, |c| {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in 0..n {
            if let Some(&(pos, neg)) = cluster_votes[c].get(&clusters[c][r]) {
                x.push(features[c][r].clone());
                y.push(pos > neg);
            }
        }
        let model = GradientBoostingClassifier::fit(&x, &y, gbm);
        (0..n).filter(|&r| model.predict(&features[c][r])).collect()
    });
    for (c, rows) in flagged.into_iter().enumerate() {
        for r in rows {
            mask.set(CellId::new(t, r, c), true);
        }
    }
    accumulate(report, "train", start.elapsed().as_secs_f64(), (n * m) as u64);
}

/// Column-level Raha used by the 2LPC/20LPC variants: clusters the cells
/// of one column into `n_labels` folds, labels each fold representative,
/// propagates and classifies that column only. Stage timings accumulate
/// into `report`.
#[allow(clippy::too_many_arguments)]
pub fn detect_column(
    lake: &Lake,
    t: usize,
    c: usize,
    n_labels: usize,
    labeler: &mut dyn Labeler,
    gbm: &GradientBoostingConfig,
    max_chars: usize,
    report: &mut RunReport,
    mask: &mut CellMask,
) {
    let table = &lake[t];
    let n = table.n_rows();
    if n == 0 || n_labels == 0 {
        return;
    }
    let start = Instant::now();
    let features = column_strategy_features(table, c, max_chars);
    let k = n_labels.clamp(1, n);
    let clusters = agglomerative(n, k, |a, b| {
        features[a]
            .iter()
            .zip(&features[b])
            .map(|(x, y)| f64::from((x - y) * (x - y)))
            .sum::<f64>()
            .sqrt()
    });
    let n_clusters = clusters.iter().copied().max().unwrap_or(0) + 1;
    accumulate(report, "features+cluster", start.elapsed().as_secs_f64(), n as u64);

    // Representative per cluster: the first member (deterministic); label
    // it and propagate to the cluster.
    let start = Instant::now();
    let mut labels: Vec<Option<bool>> = vec![None; n];
    let mut spent = 0u64;
    for cl in 0..n_clusters {
        let Some(rep) = (0..n).find(|&r| clusters[r] == cl) else { continue };
        let verdict = labeler.label(CellId::new(t, rep, c));
        spent += 1;
        for r in 0..n {
            if clusters[r] == cl {
                labels[r] = Some(verdict);
            }
        }
    }
    accumulate(report, "label", start.elapsed().as_secs_f64(), spent);

    let start = Instant::now();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for r in 0..n {
        if let Some(lab) = labels[r] {
            x.push(features[r].clone());
            y.push(lab);
        }
    }
    let model = GradientBoostingClassifier::fit(&x, &y, gbm);
    for (r, f) in features.iter().enumerate() {
        if model.predict(f) {
            mask.set(CellId::new(t, r, c), true);
        }
    }
    accumulate(report, "train", start.elapsed().as_secs_f64(), n as u64);
}

impl ErrorDetector for Raha {
    fn name(&self) -> String {
        match self.variant {
            RahaVariant::Standard => "Raha-Standard",
            RahaVariant::RandomTables => "Raha-RT",
            RahaVariant::TwoLabelsPerCol => "Raha-2LPC",
            RahaVariant::TwentyLabelsPerCol => "Raha-20LPC",
        }
        .to_string()
    }

    fn applicable(&self, _lake: &Lake, budget: Budget) -> bool {
        match self.variant {
            RahaVariant::Standard => budget.tuples_per_table >= 1.0,
            _ => true,
        }
    }

    fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: Budget) -> CellMask {
        self.detect_with_report(lake, labeler, budget).0
    }

    fn detect_with_report(
        &self,
        lake: &Lake,
        labeler: &mut dyn Labeler,
        budget: Budget,
    ) -> (CellMask, RunReport) {
        let exec = Executor::new(self.threads);
        let mut report = RunReport::new(exec.threads());
        let mut mask = CellMask::empty(lake);
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.variant {
            RahaVariant::Standard => {
                let per_table = budget.tuples_per_table.floor().max(1.0) as usize;
                for t in 0..lake.n_tables() {
                    detect_table(
                        lake,
                        t,
                        per_table,
                        labeler,
                        &self.gbm,
                        self.max_char_checkers,
                        &exec,
                        &mut report,
                        &mut mask,
                    );
                }
            }
            RahaVariant::RandomTables => {
                // Allocate one tuple per table in shuffled order, cycling
                // until the cell budget is exhausted; tables wider than the
                // remaining budget are skipped. Each table then runs Raha
                // once with its accumulated tuple count.
                let mut remaining = budget.total_cells(lake);
                let mut order: Vec<usize> = (0..lake.n_tables()).collect();
                order.shuffle(&mut rng);
                let mut tuples = vec![0usize; lake.n_tables()];
                'outer: loop {
                    let mut progressed = false;
                    for &t in &order {
                        let cost = lake[t].n_cols();
                        if cost == 0 || lake[t].n_rows() == 0 || tuples[t] >= lake[t].n_rows() {
                            continue;
                        }
                        if cost > remaining {
                            continue; // "skip tables with more columns than labels"
                        }
                        tuples[t] += 1;
                        remaining -= cost;
                        progressed = true;
                        if remaining == 0 {
                            break 'outer;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                for (t, &n_tuples) in tuples.iter().enumerate() {
                    if n_tuples > 0 {
                        detect_table(
                            lake,
                            t,
                            n_tuples,
                            labeler,
                            &self.gbm,
                            self.max_char_checkers,
                            &exec,
                            &mut report,
                            &mut mask,
                        );
                    }
                }
            }
            RahaVariant::TwoLabelsPerCol | RahaVariant::TwentyLabelsPerCol => {
                let per_col = if self.variant == RahaVariant::TwoLabelsPerCol { 2 } else { 20 };
                let mut remaining = budget.total_cells(lake);
                let mut columns: Vec<(usize, usize)> = (0..lake.n_tables())
                    .flat_map(|t| (0..lake[t].n_cols()).map(move |c| (t, c)))
                    .filter(|&(t, _)| lake[t].n_rows() > 0)
                    .collect();
                columns.shuffle(&mut rng);
                for (t, c) in columns {
                    if remaining < per_col {
                        break;
                    }
                    detect_column(
                        lake,
                        t,
                        c,
                        per_col,
                        labeler,
                        &self.gbm,
                        self.max_char_checkers,
                        &mut report,
                        &mut mask,
                    );
                    remaining -= per_col;
                }
            }
        }
        (mask, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_lakegen::QuintetLake;
    use matelda_table::{Confusion, Oracle};

    fn small_lake() -> matelda_lakegen::GeneratedLake {
        QuintetLake { rows_per_table: 50, error_rate: 0.1 }.generate(17)
    }

    #[test]
    fn column_features_vary_in_length_across_columns() {
        let lake = small_lake();
        let f0 = column_strategy_features(&lake.dirty[0], 0, 24);
        let f1 = column_strategy_features(&lake.dirty[0], 1, 24);
        assert_eq!(f0.len(), lake.dirty[0].n_rows());
        // Different alphabets -> different vector lengths (the paper's
        // §2.3 argument for why Raha features don't transfer).
        assert_ne!(f0[0].len(), f1[0].len());
    }

    #[test]
    fn standard_detects_with_enough_labels() {
        let lake = small_lake();
        let mut oracle = Oracle::new(&lake.errors);
        let raha = Raha::new(RahaVariant::Standard);
        let mask = raha.detect(&lake.dirty, &mut oracle, Budget::per_table(10.0));
        let conf = Confusion::from_masks(&mask, &lake.errors);
        assert!(conf.f1() > 0.3, "Raha-Standard f1 {} too low", conf.f1());
        // Tuple labels: 5 tables * 10 tuples * ~6 cols each.
        assert!(oracle.labels_used() >= 250, "{}", oracle.labels_used());
    }

    #[test]
    fn standard_not_applicable_below_one_tuple_per_table() {
        let lake = small_lake();
        let raha = Raha::new(RahaVariant::Standard);
        assert!(!raha.applicable(&lake.dirty, Budget::per_table(0.5)));
        assert!(raha.applicable(&lake.dirty, Budget::per_table(1.0)));
    }

    #[test]
    fn rt_respects_cell_budget() {
        let lake = small_lake();
        let mut oracle = Oracle::new(&lake.errors);
        let raha = Raha::new(RahaVariant::RandomTables);
        let budget = Budget::per_table(0.4); // 2 tuples over 5 tables
        let _ = raha.detect(&lake.dirty, &mut oracle, budget);
        assert!(oracle.labels_used() <= budget.total_cells(&lake.dirty));
        assert!(oracle.labels_used() > 0);
    }

    #[test]
    fn lpc_variants_treat_few_columns_with_high_precision_labels() {
        let lake = small_lake();
        let budget = Budget::per_table(2.0);
        let mut o2 = Oracle::new(&lake.errors);
        let two = Raha::new(RahaVariant::TwoLabelsPerCol);
        let m2 = two.detect(&lake.dirty, &mut o2, budget);
        let mut o20 = Oracle::new(&lake.errors);
        let twenty = Raha::new(RahaVariant::TwentyLabelsPerCol);
        let m20 = twenty.detect(&lake.dirty, &mut o20, budget);
        // Both stay within the cell budget.
        let cells = budget.total_cells(&lake.dirty);
        assert!(o2.labels_used() <= cells);
        assert!(o20.labels_used() <= cells);
        // 20LPC covers fewer columns than 2LPC (same budget, 10x cost per
        // column) -> typically lower recall.
        let c2 = Confusion::from_masks(&m2, &lake.errors);
        let c20 = Confusion::from_masks(&m20, &lake.errors);
        assert!(
            c20.recall() <= c2.recall() + 0.05,
            "20LPC recall {} vs 2LPC {}",
            c20.recall(),
            c2.recall()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let lake = small_lake();
        let run = || {
            let mut oracle = Oracle::new(&lake.errors);
            Raha::new(RahaVariant::RandomTables).detect(
                &lake.dirty,
                &mut oracle,
                Budget::per_table(1.0),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn identical_mask_across_thread_counts_with_report() {
        let lake = small_lake();
        let run = |threads: usize| {
            let mut oracle = Oracle::new(&lake.errors);
            let raha = Raha { threads, ..Raha::new(RahaVariant::Standard) };
            raha.detect_with_report(&lake.dirty, &mut oracle, Budget::per_table(3.0))
        };
        let (base, report) = run(1);
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["features+cluster", "label", "train"]);
        assert!(report.stages.iter().all(|s| s.items > 0 && s.wall_secs > 0.0));
        for threads in [2, 4] {
            assert_eq!(run(threads).0, base, "threads={threads}");
        }
    }

    #[test]
    fn empty_lake_is_fine() {
        let lake = Lake::default();
        let truth = CellMask::empty(&lake);
        let mut oracle = Oracle::new(&truth);
        for v in [
            RahaVariant::Standard,
            RahaVariant::RandomTables,
            RahaVariant::TwoLabelsPerCol,
            RahaVariant::TwentyLabelsPerCol,
        ] {
            let m = Raha::new(v).detect(&lake, &mut oracle, Budget::per_table(2.0));
            assert_eq!(m.count(), 0);
        }
    }
}
