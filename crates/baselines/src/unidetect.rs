//! The Uni-Detect-style baseline (Wang & He, SIGMOD 2019; §4.1.4): an
//! unsupervised detector pre-trained on a *clean* corpus.
//!
//! Uni-Detect runs "what-if" perturbation tests: a value is suspicious if
//! hypothetically removing it would make the column look statistically
//! much more regular, with test thresholds tuned on a clean corpus so that
//! clean data almost never fires. The reproduced profile matches the
//! paper: precision-oriented, very low recall, flags only *globally*
//! inconsistent values ("it captures only values that are globally
//! inconsistent"), and fails on semantic errors.
//!
//! Three tests are implemented:
//!
//! * **spelling** — an out-of-dictionary word in a column whose other
//!   values are overwhelmingly in-dictionary;
//! * **numeric** — a z-score beyond a threshold calibrated as the maximum
//!   z observed anywhere in the pre-training corpus (plus margin);
//! * **uniqueness** — a duplicated value in a column that is otherwise a
//!   perfect key.

use crate::{Budget, ErrorDetector};
use matelda_table::value::as_f64;
use matelda_table::{CellId, CellMask, DataType, Labeler, Lake};
use matelda_text::SpellChecker;

/// The Uni-Detect baseline.
#[derive(Debug, Clone)]
pub struct UniDetect {
    spell: SpellChecker,
    /// z-score above which the numeric what-if test fires.
    pub z_threshold: f64,
    /// Minimum fraction of dictionary-clean neighbours for the spelling
    /// test to trust a column.
    pub min_clean_fraction: f64,
}

impl Default for UniDetect {
    fn default() -> Self {
        // Conservative defaults for use without pre-training.
        Self { spell: SpellChecker::english(), z_threshold: 6.0, min_clean_fraction: 0.97 }
    }
}

impl UniDetect {
    /// Calibrates the numeric threshold on a clean corpus: the largest
    /// z-score any clean value reaches, plus a 10% margin — so the test
    /// (approximately) never fires on data that looks like the corpus.
    pub fn pretrain(corpus: &[&Lake]) -> Self {
        let mut max_z: f64 = 0.0;
        for lake in corpus {
            for table in &lake.tables {
                for col in &table.columns {
                    if !matches!(col.data_type(), DataType::Integer | DataType::Float) {
                        continue;
                    }
                    let nums: Vec<f64> = col.values.iter().filter_map(|v| as_f64(v)).collect();
                    if nums.len() < 3 {
                        continue;
                    }
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / nums.len() as f64;
                    let sd = var.sqrt();
                    if sd <= 0.0 {
                        continue;
                    }
                    for x in &nums {
                        max_z = max_z.max((x - mean).abs() / sd);
                    }
                }
            }
        }
        // A generous margin over the worst clean z keeps the what-if test
        // precision-first, matching Uni-Detect's design goal.
        let z_threshold = if max_z > 0.0 { max_z * 1.25 } else { 6.0 };
        Self { z_threshold, ..Self::default() }
    }
}

impl ErrorDetector for UniDetect {
    fn name(&self) -> String {
        "Uni-Detect".to_string()
    }

    fn detect(&self, lake: &Lake, _labeler: &mut dyn Labeler, _budget: Budget) -> CellMask {
        let mut mask = CellMask::empty(lake);
        for (t, table) in lake.tables.iter().enumerate() {
            for (c, col) in table.columns.iter().enumerate() {
                let n = col.len();
                if n == 0 {
                    continue;
                }
                // Spelling what-if test.
                let flagged: Vec<bool> =
                    col.values.iter().map(|v| self.spell.flags_cell(v)).collect();
                let clean_fraction = 1.0 - flagged.iter().filter(|f| **f).count() as f64 / n as f64;
                if clean_fraction >= self.min_clean_fraction {
                    for (r, &f) in flagged.iter().enumerate() {
                        if f {
                            mask.set(CellId::new(t, r, c), true);
                        }
                    }
                }

                // Numeric what-if test.
                if matches!(col.data_type(), DataType::Integer | DataType::Float) {
                    let nums: Vec<Option<f64>> = col.values.iter().map(|v| as_f64(v)).collect();
                    let parsed: Vec<f64> = nums.iter().flatten().copied().collect();
                    if parsed.len() >= 3 {
                        let mean = parsed.iter().sum::<f64>() / parsed.len() as f64;
                        let var = parsed.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                            / parsed.len() as f64;
                        let sd = var.sqrt();
                        if sd > 0.0 {
                            for (r, num) in nums.iter().enumerate() {
                                if let Some(x) = num {
                                    // Leave-one-out z: judge the value
                                    // against the column without it, which
                                    // defeats the masking effect that caps
                                    // plain z at (n-1)/√n.
                                    let n_f = parsed.len() as f64;
                                    if n_f <= 2.0 {
                                        continue;
                                    }
                                    let mean_wo = (mean * n_f - x) / (n_f - 1.0);
                                    let var_wo = ((var + mean * mean) * n_f - x * x) / (n_f - 1.0)
                                        - mean_wo * mean_wo;
                                    let sd_wo = var_wo.max(0.0).sqrt();
                                    if sd_wo > 0.0
                                        && ((x - mean_wo).abs() / sd_wo) > self.z_threshold
                                    {
                                        mask.set(CellId::new(t, r, c), true);
                                    }
                                }
                            }
                        }
                    }
                }

                // Uniqueness what-if test: a single duplicated value in an
                // otherwise perfect key column. Restricted to id-like
                // columns (digit-bearing values) — a text column with one
                // repeated word is ordinary, an id column with one
                // repeated id is not (Uni-Detect gates this test on
                // corpus priors about key-like columns).
                let id_like =
                    col.values.iter().filter(|v| v.chars().any(|ch| ch.is_ascii_digit())).count()
                        as f64
                        >= 0.9 * n as f64;
                if id_like {
                    let partition =
                        matelda_fd::Partition::from_values(col.values.iter().map(String::as_str));
                    if partition.n_groups() == 1 && partition.covered_rows() == 2 && n > 4 {
                        for &r in &partition.groups[0] {
                            mask.set(CellId::new(t, r, c), true);
                        }
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Oracle, Table};

    fn no_labels(lake: &Lake) -> CellMask {
        CellMask::empty(lake)
    }

    #[test]
    fn spelling_test_requires_clean_context() {
        // 40 clean genre values + 1 typo: 97.5% clean context, so the
        // what-if spelling test trusts the column and the typo fires.
        let genres =
            ["drama", "crime", "comedy", "action", "horror", "romance", "musical", "western"];
        let mut col_a: Vec<String> =
            (0..40).map(|i| genres[i % genres.len()].to_string()).collect();
        col_a.push("derama".to_string());
        // A name-like column full of unknown words: never trusted.
        let col_b: Vec<String> = (0..41).map(|i| format!("Qzx{}", "w".repeat(i % 5 + 1))).collect();
        let lake = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", col_a), Column::new("b", col_b)],
        )]);
        let truth = no_labels(&lake);
        let mut o = Oracle::new(&truth);
        let mask = UniDetect::default().detect(&lake, &mut o, Budget::per_table(0.0));
        assert!(mask.get(CellId::new(0, 40, 0)), "typo in trusted column fires");
        assert_eq!(
            (0..41).filter(|&r| mask.get(CellId::new(0, r, 1))).count(),
            0,
            "unknown-word columns are not trusted"
        );
    }

    #[test]
    fn numeric_test_fires_only_beyond_pretrained_threshold() {
        let clean = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("x", (0..50).map(|i| format!("{}", 100 + i)))],
        )]);
        let ud = UniDetect::pretrain(&[&clean]);
        assert!(ud.z_threshold > 1.0 && ud.z_threshold < 3.0, "{}", ud.z_threshold);

        let mut dirty = clean.clone();
        *dirty.tables[0].cell_mut(10, 0) = "9000000".into();
        let truth = no_labels(&dirty);
        let mut o = Oracle::new(&truth);
        let mask = ud.detect(&dirty, &mut o, Budget::per_table(0.0));
        assert!(mask.get(CellId::new(0, 10, 0)), "big outlier fires");
        // Clean values do not fire.
        assert_eq!(mask.count(), 1, "{:?}", mask.iter_set().collect::<Vec<_>>());
    }

    #[test]
    fn uniqueness_test_flags_single_duplicate_in_key() {
        let lake = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("id", ["1", "2", "3", "4", "5", "3"])],
        )]);
        let truth = no_labels(&lake);
        let mut o = Oracle::new(&truth);
        let mask = UniDetect::default().detect(&lake, &mut o, Budget::per_table(0.0));
        assert!(mask.get(CellId::new(0, 2, 0)));
        assert!(mask.get(CellId::new(0, 5, 0)));
        assert_eq!(mask.count(), 2);
    }

    #[test]
    fn semantic_errors_invisible() {
        // The paper: Uni-Detect "fails to identify semantic errors".
        let lake = Lake::new(vec![Table::new(
            "t",
            vec![
                Column::new("city", ["Paris", "Paris", "Berlin", "Rome", "Madrid", "London"]),
                Column::new("country", ["France", "Italy", "Germany", "Italy", "Spain", "England"]),
            ],
        )]);
        let truth = no_labels(&lake);
        let mut o = Oracle::new(&truth);
        let mask = UniDetect::default().detect(&lake, &mut o, Budget::per_table(0.0));
        // Row 1's France/Italy FD violation is a semantic error: missed.
        assert!(!mask.get(CellId::new(0, 1, 1)));
    }
}
