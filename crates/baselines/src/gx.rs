//! The Great-Expectations-style baseline (§4.1.4): the "data assistant"
//! suggests four constraint families —
//!
//! 1. table row count within a range (table-level: cannot pinpoint cells),
//! 2. column unique-value count within a range (column-level: cannot
//!    pinpoint cells),
//! 3. column values not null,
//! 4. column values null,
//!
//! then validation marks violating cells where a cell-level interpretation
//! exists. Suggested from the dirty data the not-null/null constraints are
//! self-consistent, so almost nothing fires — reproducing the paper's
//! "GX has a near-zero F1-Score". The [`Gx::oracle`] mode suggests from
//! the clean tables instead (GX-Oracle), which catches exactly the
//! missing-value errors and nothing else.

use crate::{Budget, ErrorDetector};
use matelda_table::value::is_null;
use matelda_table::{CellId, CellMask, Labeler, Lake, Table};

/// The GX-style baseline.
#[derive(Debug, Clone, Default)]
pub struct Gx {
    /// When set, constraints are extracted from this clean lake
    /// (the unrealistic GX-Oracle configuration).
    clean_reference: Option<Lake>,
}

/// Suggested constraints for one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ColumnExpectation {
    /// `expect_column_values_to_not_be_null`.
    not_null: bool,
    /// `expect_column_values_to_be_null` (suggested on all-null columns).
    null: bool,
}

impl Gx {
    /// Standard GX: constraints suggested from the dirty data itself.
    pub fn new() -> Self {
        Self { clean_reference: None }
    }

    /// GX-Oracle: constraints suggested from the clean ground truth.
    pub fn oracle(clean: Lake) -> Self {
        Self { clean_reference: Some(clean) }
    }

    fn suggest(table: &Table, col: usize) -> ColumnExpectation {
        let values = &table.columns[col].values;
        let nulls = values.iter().filter(|v| is_null(v)).count();
        ColumnExpectation {
            // The assistant suggests not-null only when the profiled data
            // is fully populated.
            not_null: nulls == 0 && !values.is_empty(),
            null: !values.is_empty() && nulls == values.len(),
        }
    }
}

impl ErrorDetector for Gx {
    fn name(&self) -> String {
        if self.clean_reference.is_some() {
            "GX-Oracle".to_string()
        } else {
            "GX".to_string()
        }
    }

    fn detect(&self, lake: &Lake, _labeler: &mut dyn Labeler, _budget: Budget) -> CellMask {
        let mut mask = CellMask::empty(lake);
        for (t, table) in lake.tables.iter().enumerate() {
            for c in 0..table.n_cols() {
                let source: &Table = match &self.clean_reference {
                    Some(clean) => &clean.tables[t],
                    None => table,
                };
                let exp = Self::suggest(source, c);
                for (r, v) in table.columns[c].values.iter().enumerate() {
                    let violates = (exp.not_null && is_null(v)) || (exp.null && !is_null(v));
                    if violates {
                        mask.set(CellId::new(t, r, c), true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Oracle};

    fn dirty_lake() -> (Lake, Lake) {
        let clean = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("a", ["1", "2", "3", "4"]), Column::new("b", ["x", "y", "z", "w"])],
        )]);
        let mut dirty = clean.clone();
        *dirty.tables[0].cell_mut(1, 0) = "".into(); // injected MV
        *dirty.tables[0].cell_mut(2, 1) = "zz".into(); // injected typo
        (dirty, clean)
    }

    #[test]
    fn dirty_profiling_misses_the_mv() {
        let (dirty, _) = dirty_lake();
        let truth = CellMask::empty(&dirty);
        let mut o = Oracle::new(&truth);
        // Column a contains a null, so not-null is NOT suggested: nothing
        // fires — the paper's near-zero GX.
        let mask = Gx::new().detect(&dirty, &mut o, Budget::per_table(0.0));
        assert_eq!(mask.count(), 0);
    }

    #[test]
    fn oracle_profiling_catches_only_missing_values() {
        let (dirty, clean) = dirty_lake();
        let truth = CellMask::empty(&dirty);
        let mut o = Oracle::new(&truth);
        let mask = Gx::oracle(clean).detect(&dirty, &mut o, Budget::per_table(0.0));
        assert_eq!(mask.count(), 1);
        assert!(mask.get(CellId::new(0, 1, 0)), "the MV is caught");
        // The typo is invisible to null-constraints.
        assert!(!mask.get(CellId::new(0, 2, 1)));
    }
}
