//! # matelda-baselines
//!
//! Every baseline system the paper compares against (§4.1.4), rebuilt in
//! Rust:
//!
//! * [`raha`] — the single-table semi-supervised state of the art
//!   (Mahdavi et al., SIGMOD 2019): per-column detector-strategy
//!   ensembles, per-column cell clustering, tuple-based labeling, label
//!   propagation, per-column gradient boosting. Plus the paper's four
//!   budget-distribution variants: **Standard**, **RandomTables (RT)**,
//!   **2LabelsPerCol (2LPC)**, **20LabelsPerCol (20LPC)**.
//! * [`aspell`] — the dictionary spell checker run over every cell.
//! * [`unidetect`] — Uni-Detect-style unsupervised detection, pre-trained
//!   on a clean corpus for high precision / low recall.
//! * [`holodetect`] — HoloDetect-style few-shot learning with data
//!   augmentation; per-table, deliberately the most expensive system.
//! * [`deequ`] — Deequ-style constraint suggestion + validation
//!   (completeness, type consistency, length/magnitude ranges), with an
//!   `-Oracle` mode that suggests from the clean data.
//! * [`gx`] — Great-Expectations-style data-assistant constraints (row
//!   count, unique count, null / not-null), also with an `-Oracle` mode.
//!
//! All systems speak the common [`ErrorDetector`] interface so the
//! experiment harness can sweep them uniformly.

pub mod aspell;
pub mod deequ;
pub mod gx;
pub mod holodetect;
pub mod raha;
pub mod unidetect;

use matelda_exec::RunReport;
use matelda_table::{CellMask, Labeler, Lake};

/// Budget handed to a detection system, in the units the paper's x-axes
/// use: labeled tuples per table (fractions allowed — 0.5 means one tuple
/// for every second table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Average labeled tuples per table.
    pub tuples_per_table: f64,
}

impl Budget {
    /// Convenience constructor.
    pub fn per_table(tuples_per_table: f64) -> Self {
        Self { tuples_per_table }
    }

    /// Total tuple budget over a lake.
    pub fn total_tuples(&self, lake: &Lake) -> usize {
        (self.tuples_per_table * lake.n_tables() as f64).round() as usize
    }

    /// Total cell budget over a lake (a labeled tuple labels all its
    /// cells; the per-table column counts convert tuples to cells).
    pub fn total_cells(&self, lake: &Lake) -> usize {
        let avg_cols = if lake.n_tables() == 0 {
            0.0
        } else {
            lake.n_columns() as f64 / lake.n_tables() as f64
        };
        (self.tuples_per_table * lake.n_tables() as f64 * avg_cols).round() as usize
    }
}

/// A uniform interface over Matelda, the Raha variants and the
/// unsupervised baselines, consumed by the experiment harness.
pub trait ErrorDetector {
    /// Display name used in the experiment tables.
    fn name(&self) -> String;

    /// Detects errors in `lake` within `budget`, drawing labels from
    /// `labeler`. Unsupervised systems ignore both.
    fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: Budget) -> CellMask;

    /// Like [`ErrorDetector::detect`] but also returns per-stage
    /// instrumentation. Systems without staged internals return an empty
    /// report; Matelda and Raha return real per-stage timings.
    fn detect_with_report(
        &self,
        lake: &Lake,
        labeler: &mut dyn Labeler,
        budget: Budget,
    ) -> (CellMask, RunReport) {
        (self.detect(lake, labeler, budget), RunReport::default())
    }

    /// Whether the system can run at the given budget (Raha-Standard and
    /// HoloDetect need at least one labeled tuple per table).
    fn applicable(&self, _lake: &Lake, _budget: Budget) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Table};

    #[test]
    fn budget_conversions() {
        let lake = Lake::new(vec![
            Table::new("a", vec![Column::new("x", ["1"]), Column::new("y", ["2"])]),
            Table::new("b", vec![Column::new("z", ["3"]); 4]),
        ]);
        let b = Budget::per_table(2.0);
        assert_eq!(b.total_tuples(&lake), 4);
        // 2 tables * 2 tuples * 3 avg cols = 12 cells.
        assert_eq!(b.total_cells(&lake), 12);
        let half = Budget::per_table(0.5);
        assert_eq!(half.total_tuples(&lake), 1);
    }
}
