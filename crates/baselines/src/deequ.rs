//! The Deequ-style baseline (§4.1.4): per-table constraint *suggestion*
//! followed by validation. Suggested constraint families follow the
//! paper's description:
//!
//! * completeness (not-null when the profiled column is fully populated),
//! * data-type consistency (dominant type; cells of other types violate),
//! * string length within the observed `[min, max]` range,
//! * numeric magnitude within `mean ± 4σ` of the observed distribution.
//!
//! Run on the dirty data the ranges absorb the errors (the profile *is*
//! dirty), so mostly type violations fire — the paper's "Deequ performs
//! better, detecting data type violations and achieving F1-scores of up to
//! 21%". [`Deequ::oracle`] suggests from the clean tables (Deequ-Oracle),
//! which catches representational errors and missing values.

use crate::{Budget, ErrorDetector};
use matelda_table::value::{as_f64, infer_type, is_null};
use matelda_table::{CellId, CellMask, DataType, Labeler, Lake, Table};

/// Suggested constraints for one column.
#[derive(Debug, Clone, PartialEq)]
struct ColumnConstraints {
    not_null: bool,
    dtype: Option<DataType>,
    len_range: Option<(usize, usize)>,
    num_range: Option<(f64, f64)>,
}

/// The Deequ-style baseline.
#[derive(Debug, Clone, Default)]
pub struct Deequ {
    clean_reference: Option<Lake>,
}

impl Deequ {
    /// Standard Deequ: suggest constraints from the dirty data.
    pub fn new() -> Self {
        Self { clean_reference: None }
    }

    /// Deequ-Oracle: suggest constraints from the clean ground truth.
    pub fn oracle(clean: Lake) -> Self {
        Self { clean_reference: Some(clean) }
    }

    fn suggest(table: &Table, col: usize) -> ColumnConstraints {
        let column = &table.columns[col];
        let values = &column.values;
        let non_null: Vec<&String> = values.iter().filter(|v| !is_null(v)).collect();
        let not_null = !values.is_empty() && non_null.len() == values.len();
        let dtype = match column.data_type() {
            DataType::Text | DataType::Null => None, // free text: no type constraint
            t => Some(t),
        };
        let len_range = if dtype.is_none() && !non_null.is_empty() {
            let lens: Vec<usize> = non_null.iter().map(|v| v.chars().count()).collect();
            Some((*lens.iter().min().expect("non-empty"), *lens.iter().max().expect("non-empty")))
        } else {
            None
        };
        let num_range = match dtype {
            Some(DataType::Integer) | Some(DataType::Float) => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| as_f64(v)).collect();
                if nums.is_empty() {
                    None
                } else {
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / nums.len() as f64;
                    let sd = var.sqrt();
                    Some((mean - 4.0 * sd, mean + 4.0 * sd))
                }
            }
            _ => None,
        };
        ColumnConstraints { not_null, dtype, len_range, num_range }
    }

    fn violates(constraints: &ColumnConstraints, v: &str) -> bool {
        if is_null(v) {
            return constraints.not_null;
        }
        if let Some(expected) = constraints.dtype {
            let actual = infer_type(v);
            let compatible = match expected {
                DataType::Integer => matches!(actual, DataType::Integer),
                DataType::Float => matches!(actual, DataType::Integer | DataType::Float),
                DataType::Date => matches!(actual, DataType::Date),
                _ => true,
            };
            if !compatible {
                return true;
            }
        }
        if let Some((lo, hi)) = constraints.len_range {
            let len = v.chars().count();
            if len < lo || len > hi {
                return true;
            }
        }
        if let Some((lo, hi)) = constraints.num_range {
            if let Some(x) = as_f64(v) {
                if x < lo || x > hi {
                    return true;
                }
            }
        }
        false
    }
}

impl ErrorDetector for Deequ {
    fn name(&self) -> String {
        if self.clean_reference.is_some() {
            "Deequ-Oracle".to_string()
        } else {
            "Deequ".to_string()
        }
    }

    fn detect(&self, lake: &Lake, _labeler: &mut dyn Labeler, _budget: Budget) -> CellMask {
        let mut mask = CellMask::empty(lake);
        for (t, table) in lake.tables.iter().enumerate() {
            for c in 0..table.n_cols() {
                let source: &Table = match &self.clean_reference {
                    Some(clean) => &clean.tables[t],
                    None => table,
                };
                let constraints = Self::suggest(source, c);
                for (r, v) in table.columns[c].values.iter().enumerate() {
                    if Self::violates(&constraints, v) {
                        mask.set(CellId::new(t, r, c), true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Oracle};

    fn lake_pair() -> (Lake, Lake) {
        let clean = Lake::new(vec![Table::new(
            "t",
            vec![
                Column::new("amount", ["100", "110", "95", "105", "98", "102"]),
                Column::new("name", ["alpha", "gamma", "delta", "omega", "sigma", "kappa"]),
            ],
        )]);
        let mut dirty = clean.clone();
        *dirty.tables[0].cell_mut(0, 0) = "$100".into(); // formatting error
        *dirty.tables[0].cell_mut(1, 0) = "".into(); // missing value
        *dirty.tables[0].cell_mut(2, 1) = "deltadeltadelta".into(); // length blowup
        (dirty, clean)
    }

    #[test]
    fn dirty_suggestion_catches_type_violations_only() {
        let (dirty, _) = lake_pair();
        let truth = CellMask::empty(&dirty);
        let mut o = Oracle::new(&truth);
        let mask = Deequ::new().detect(&dirty, &mut o, Budget::per_table(0.0));
        // "$100" violates the (still-majority-integer) type constraint.
        assert!(mask.get(CellId::new(0, 0, 0)));
        // The MV is missed: not-null wasn't suggested from dirty data.
        assert!(!mask.get(CellId::new(0, 1, 0)));
    }

    #[test]
    fn oracle_suggestion_catches_more() {
        let (dirty, clean) = lake_pair();
        let truth = CellMask::empty(&dirty);
        let mut o = Oracle::new(&truth);
        let mask = Deequ::oracle(clean).detect(&dirty, &mut o, Budget::per_table(0.0));
        assert!(mask.get(CellId::new(0, 0, 0)), "formatting/type violation");
        assert!(mask.get(CellId::new(0, 1, 0)), "missing value");
        assert!(mask.get(CellId::new(0, 2, 1)), "length violation");
        // Clean cells stay clean.
        assert!(!mask.get(CellId::new(0, 3, 0)));
        assert!(!mask.get(CellId::new(0, 3, 1)));
    }

    #[test]
    fn numeric_range_catches_outliers_with_oracle_profile() {
        let clean = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("x", ["10", "11", "12", "9", "10", "11", "10", "12"])],
        )]);
        let mut dirty = clean.clone();
        *dirty.tables[0].cell_mut(4, 0) = "12000".into();
        let truth = CellMask::empty(&dirty);
        let mut o = Oracle::new(&truth);
        let mask = Deequ::oracle(clean).detect(&dirty, &mut o, Budget::per_table(0.0));
        assert!(mask.get(CellId::new(0, 4, 0)));
        assert_eq!(mask.count(), 1);
    }
}
