//! The ASPELL baseline (§4.1.4): run the dictionary spell checker over
//! every cell of every table. Unsupervised, fast, precision ≫ recall on
//! typo-heavy lakes and near-useless elsewhere — exactly the profile the
//! paper reports.

use crate::{Budget, ErrorDetector};
use matelda_table::{CellId, CellMask, Labeler, Lake};
use matelda_text::SpellChecker;

/// The spell-checker baseline.
#[derive(Debug, Clone, Default)]
pub struct Aspell {
    spell: SpellChecker,
}

impl Aspell {
    /// Uses the embedded English + domain dictionary.
    pub fn new() -> Self {
        Self { spell: SpellChecker::english() }
    }
}

impl ErrorDetector for Aspell {
    fn name(&self) -> String {
        "ASPELL".to_string()
    }

    fn detect(&self, lake: &Lake, _labeler: &mut dyn Labeler, _budget: Budget) -> CellMask {
        let mut mask = CellMask::empty(lake);
        for (t, table) in lake.tables.iter().enumerate() {
            for (c, col) in table.columns.iter().enumerate() {
                for (r, v) in col.values.iter().enumerate() {
                    if self.spell.flags_cell(v) {
                        mask.set(CellId::new(t, r, c), true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_table::{Column, Oracle, Table};

    #[test]
    fn flags_only_misspelled_cells() {
        let lake = Lake::new(vec![Table::new(
            "t",
            vec![Column::new("genre", ["drama", "derama", "crime", "42"])],
        )]);
        let truth = CellMask::empty(&lake);
        let mut oracle = Oracle::new(&truth);
        let mask = Aspell::new().detect(&lake, &mut oracle, Budget::per_table(0.0));
        assert_eq!(mask.count(), 1);
        assert!(mask.get(CellId::new(0, 1, 0)));
        assert_eq!(oracle.labels_used(), 0, "unsupervised: no labels drawn");
    }
}
