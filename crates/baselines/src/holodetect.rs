//! The HoloDetect-style baseline (Heidari et al., SIGMOD 2019; §4.1.4):
//! few-shot error detection with **data augmentation**.
//!
//! Per table: a handful of labeled tuples yields a few error examples;
//! the class-imbalance problem is attacked by synthesizing additional
//! positive examples — perturbed copies of clean cells mimicking the
//! kinds of corruption seen in the labels (character edits, blanking,
//! magnitude shifts). One classifier per column is trained on the
//! augmented set over a rich feature representation.
//!
//! Like the original, this is the heaviest system per table (large
//! augmented training sets, a bigger ensemble), which is what makes the
//! paper's runtime observations ("exceeding 3 hours per table" at their
//! scale) reproducible in relative terms.

use crate::{Budget, ErrorDetector};
use matelda_ml::{GradientBoostingClassifier, GradientBoostingConfig};
use matelda_table::value::as_f64;
use matelda_table::{CellId, CellMask, Labeler, Lake, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The HoloDetect-style baseline.
#[derive(Debug, Clone)]
pub struct HoloDetect {
    /// Synthetic positive examples generated per labeled clean cell.
    pub augmentation_factor: usize,
    /// Classifier hyperparameters (bigger than the other systems' — this
    /// is the expensive baseline).
    pub gbm: GradientBoostingConfig,
    /// RNG seed for augmentation.
    pub seed: u64,
}

impl Default for HoloDetect {
    fn default() -> Self {
        Self {
            augmentation_factor: 8,
            gbm: GradientBoostingConfig { n_trees: 150, ..GradientBoostingConfig::default() },
            seed: 0,
        }
    }
}

/// Rich per-cell representation features (value + column context).
fn cell_features(value: &str, column_values: &[String]) -> Vec<f32> {
    let n = column_values.len().max(1);
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for v in column_values {
        *counts.entry(v.as_str()).or_insert(0) += 1;
    }
    let tf = *counts.get(value).unwrap_or(&0) as f32 / n as f32;

    let len = value.chars().count() as f32;
    let (mut alpha, mut digit, mut punct, mut upper) = (0f32, 0f32, 0f32, 0f32);
    for ch in value.chars() {
        if ch.is_alphabetic() {
            alpha += 1.0;
            if ch.is_uppercase() {
                upper += 1.0;
            }
        } else if ch.is_ascii_digit() {
            digit += 1.0;
        } else if !ch.is_whitespace() {
            punct += 1.0;
        }
    }
    let total = len.max(1.0);

    // Numeric z against the column.
    let nums: Vec<f64> = column_values.iter().filter_map(|v| as_f64(v)).collect();
    let z = if let (Some(x), true) = (as_f64(value), nums.len() >= 3) {
        let mean = nums.iter().sum::<f64>() / nums.len() as f64;
        let var = nums.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / nums.len() as f64;
        if var > 0.0 {
            (((x - mean).abs() / var.sqrt()) as f32).min(10.0)
        } else {
            0.0
        }
    } else {
        0.0
    };

    // No explicit null flag: HoloDetect embeds raw value representations
    // rather than engineered error indicators — empty values are only
    // visible through their length/character statistics.
    vec![
        tf,
        (len / 32.0).min(1.0),
        alpha / total,
        digit / total,
        punct / total,
        upper / total,
        f32::from(u8::from(as_f64(value).is_some())),
        z,
    ]
}

/// One random value perturbation for augmentation.
fn perturb(value: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = value.chars().collect();
    match rng.random_range(0..4u8) {
        0 => String::new(), // blank out
        1 if !chars.is_empty() => {
            // Drop a character.
            let i = rng.random_range(0..chars.len());
            chars.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, c)| c).collect()
        }
        2 if as_f64(value).is_some() => format!("{value}000"),
        _ => format!("{value}{}", (b'a' + rng.random_range(0..26u8)) as char),
    }
}

impl HoloDetect {
    fn detect_table(
        &self,
        lake: &Lake,
        t: usize,
        tuples: usize,
        labeler: &mut dyn Labeler,
        mask: &mut CellMask,
        rng: &mut StdRng,
    ) {
        let table: &Table = &lake[t];
        let (n, m) = (table.n_rows(), table.n_cols());
        if n == 0 || m == 0 || tuples == 0 {
            return;
        }
        // Label evenly spaced tuples (few-shot supervision).
        let step = (n / tuples.min(n)).max(1);
        let rows: Vec<usize> = (0..n).step_by(step).take(tuples).collect();

        for c in 0..m {
            let column_values = &table.columns[c].values;
            let mut x = Vec::new();
            let mut y = Vec::new();
            for &r in &rows {
                let verdict = labeler.label(CellId::new(t, r, c));
                x.push(cell_features(&column_values[r], column_values));
                y.push(verdict);
                if !verdict {
                    // Data augmentation: synthesize errors from this clean
                    // cell so the positive class is represented.
                    for _ in 0..self.augmentation_factor {
                        let corrupted = perturb(&column_values[r], rng);
                        if corrupted != column_values[r] {
                            x.push(cell_features(&corrupted, column_values));
                            y.push(true);
                        }
                    }
                }
            }
            let model = GradientBoostingClassifier::fit(&x, &y, &self.gbm);
            for r in 0..n {
                if model.predict(&cell_features(&column_values[r], column_values)) {
                    mask.set(CellId::new(t, r, c), true);
                }
            }
        }
    }
}

impl ErrorDetector for HoloDetect {
    fn name(&self) -> String {
        "HoloDetect".to_string()
    }

    fn applicable(&self, _lake: &Lake, budget: Budget) -> bool {
        // Like Raha-Standard: needs at least one labeled tuple per table.
        budget.tuples_per_table >= 1.0
    }

    fn detect(&self, lake: &Lake, labeler: &mut dyn Labeler, budget: Budget) -> CellMask {
        let mut mask = CellMask::empty(lake);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let tuples = budget.tuples_per_table.floor().max(1.0) as usize;
        for t in 0..lake.n_tables() {
            self.detect_table(lake, t, tuples, labeler, &mut mask, &mut rng);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matelda_lakegen::QuintetLake;
    use matelda_table::{Confusion, Oracle};

    #[test]
    fn detects_syntactic_errors_with_few_labels() {
        let lake = QuintetLake { rows_per_table: 50, error_rate: 0.1 }.generate(23);
        let mut oracle = Oracle::new(&lake.errors);
        let hd = HoloDetect::default();
        let mask = hd.detect(&lake.dirty, &mut oracle, Budget::per_table(5.0));
        let conf = Confusion::from_masks(&mask, &lake.errors);
        assert!(conf.precision() > 0.2, "precision {}", conf.precision());
        assert!(conf.recall() > 0.1, "recall {}", conf.recall());
    }

    #[test]
    fn needs_a_tuple_per_table() {
        let lake = QuintetLake { rows_per_table: 20, error_rate: 0.1 }.generate(2);
        let hd = HoloDetect::default();
        assert!(!hd.applicable(&lake.dirty, Budget::per_table(0.3)));
        assert!(hd.applicable(&lake.dirty, Budget::per_table(2.0)));
    }

    #[test]
    fn augmentation_features_are_fixed_length() {
        let col: Vec<String> = ["a", "bb", "ccc"].iter().map(|s| s.to_string()).collect();
        let f1 = cell_features("a", &col);
        let f2 = cell_features("", &col);
        let f3 = cell_features("12345", &col);
        assert_eq!(f1.len(), f2.len());
        assert_eq!(f2.len(), f3.len());
        assert_eq!(f2[1], 0.0, "empty value has zero length feature");
    }

    #[test]
    fn perturbation_usually_changes_the_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let changed = (0..50).filter(|_| perturb("hello", &mut rng) != "hello").count();
        assert!(changed >= 45);
    }
}
