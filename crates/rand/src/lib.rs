//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the rand 0.9 API it actually uses, backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64. The
//! statistical quality is far beyond what the pipeline needs (mini-batch
//! sampling, k-means++ seeding, error injection), and every consumer
//! already seeds explicitly, so runs stay reproducible.
//!
//! Supported surface:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::random_range`] over `Range`/`RangeInclusive` of the integer
//!   and float types the workspace samples
//! * [`Rng::random_bool`]
//! * [`seq::SliceRandom::shuffle`]
//! * [`seq::index::sample`]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Minimal generator core: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, like the
    /// real crate.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding, reduced to the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample values of type `T`. Generic over the
/// element type (rather than using an associated type) so the compiler can
/// infer untyped float literals from the call site, as the real crate does
/// (`let x: f32 = rng.random_range(-0.5..0.5)`).
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1)` from 24 random bits.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform integer in `[0, span)` by multiply-shift (Lemire); `span > 0`.
pub(crate) fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                  i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + $unit(rng.next_u64()) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32 => unit_f32, f64 => unit_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.random_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&d));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
    }
}
