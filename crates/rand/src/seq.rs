//! Sequence helpers: slice shuffling and index sampling.

use crate::{below, RngCore};

/// Shuffling for slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Sampling distinct indices without replacement.
pub mod index {
    use crate::{below, RngCore};

    /// A sampled set of distinct indices in `0..length`.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Iterates the indices by value, in sample order.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Consumes into the underlying vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length`.
    /// Panics if `amount > length`, like the real crate.
    ///
    /// Uses Floyd's algorithm when the sample is sparse (O(amount²) worst
    /// case from the membership scan, fine at mini-batch sizes) and a
    /// partial Fisher–Yates otherwise.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(amount <= length, "cannot sample {amount} distinct indices from 0..{length}");
        if amount * 8 <= length {
            // Floyd's combination sampling.
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = below(rng, j as u64 + 1) as usize;
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            IndexVec(chosen)
        } else {
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + below(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::rngs::StdRng;
        use crate::SeedableRng;

        #[test]
        fn samples_are_distinct_and_in_range() {
            let mut rng = StdRng::seed_from_u64(5);
            for (n, k) in [(100, 7), (100, 90), (10, 10), (1, 1), (5, 0)] {
                let s = sample(&mut rng, n, k);
                let mut v = s.clone().into_vec();
                assert_eq!(v.len(), k);
                v.sort_unstable();
                v.dedup();
                assert_eq!(v.len(), k, "duplicates for n={n} k={k}");
                assert!(v.iter().all(|&i| i < n));
            }
        }

        #[test]
        fn every_index_reachable() {
            let mut rng = StdRng::seed_from_u64(6);
            let mut seen = [false; 20];
            for _ in 0..400 {
                for i in sample(&mut rng, 20, 2).iter() {
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "{seen:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
