//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so benches link against
//! this minimal harness instead: same macros and `Criterion` surface,
//! backed by a plain wall-clock sampler (short warmup, then `sample_size`
//! timed samples; the median and min/max are printed). No statistical
//! regression machinery — the workspace's benches are read by humans and
//! by the `BENCH_*.json` emitters, which record raw numbers themselves.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over warmup plus `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup` value per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().expect("non-empty");
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max)
        );
    }
}

/// Human units, criterion-style.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
