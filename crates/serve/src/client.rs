//! The client side: one-shot requests and a deterministic retry loop
//! that survives daemon crashes and backpressure.

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Deterministic retry policy: attempt `n` sleeps
/// `base_ms << min(n, 6)` milliseconds before retrying (exponential,
/// capped at 64× base). No jitter on purpose — test runs must replay
/// the exact same schedule.
#[derive(Debug, Clone, Copy)]
pub struct Retry {
    /// Total attempts (the first try included). 0 behaves as 1.
    pub attempts: u32,
    /// Base backoff in milliseconds.
    pub base_ms: u64,
}

impl Default for Retry {
    fn default() -> Self {
        Retry { attempts: 10, base_ms: 50 }
    }
}

impl Retry {
    /// The backoff before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        Duration::from_millis(self.base_ms << attempt.min(6))
    }
}

/// Why a retried request ultimately gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed at the transport layer; the last error.
    Unreachable(io::Error),
    /// The daemon kept answering `Busy` through every attempt.
    Overloaded,
    /// The daemon is shutting down and refused admission.
    ShuttingDown,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unreachable(e) => write!(f, "daemon unreachable: {e}"),
            ClientError::Overloaded => write!(f, "daemon overloaded (Busy on every attempt)"),
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Sends one request over a fresh connection and reads one response.
/// Transport and protocol failures surface as `io::Error` — retryable
/// by [`request_with_retry`].
pub fn request(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &encode_request(req))?;
    let payload = read_frame(&mut stream).map_err(|e| match e {
        FrameError::Io(io) => io,
        other => io::Error::new(io::ErrorKind::UnexpectedEof, other.to_string()),
    })?;
    decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// [`request`] with deterministic backoff across transport failures and
/// `Busy` responses.
///
/// This is the crash-tolerance loop: a daemon SIGKILLed mid-request
/// shows up here as a connection reset (retry), a restarting daemon as
/// a refused connection (retry), an overloaded one as `Busy` (retry) —
/// and because the daemon checkpoints per stage under a stable key, the
/// retried request *resumes* the dead run instead of restarting it.
/// Any other response is final and returned as-is.
pub fn request_with_retry(
    addr: SocketAddr,
    req: &Request,
    retry: Retry,
) -> Result<Response, ClientError> {
    let attempts = retry.attempts.max(1);
    let mut last_io: Option<io::Error> = None;
    let mut saw_busy = false;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(retry.backoff(attempt - 1));
        }
        match request(addr, req) {
            Ok(Response::Busy { .. }) => saw_busy = true,
            Ok(Response::ShuttingDown) => return Err(ClientError::ShuttingDown),
            Ok(resp) => return Ok(resp),
            Err(e) => last_io = Some(e),
        }
    }
    // Prefer the transport error when both happened: it is the one the
    // operator can act on.
    match last_io {
        Some(e) => Err(ClientError::Unreachable(e)),
        None if saw_busy => Err(ClientError::Overloaded),
        None => Err(ClientError::Unreachable(io::Error::other("no attempts were made"))),
    }
}
