//! The client side: one-shot requests and a deterministic retry loop
//! that survives daemon crashes and backpressure.

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Deterministic retry policy: attempt `n` sleeps
/// `base_ms << min(n, 6)` milliseconds (exponential, capped at 64×
/// base) plus a seed-deterministic jitter of up to a quarter step.
/// Determinism is *per seed*: the same `seed` replays the exact same
/// schedule — tests rely on that — while two clients with different
/// seeds desynchronize instead of stampeding a restarting daemon in
/// lockstep.
#[derive(Debug, Clone, Copy)]
pub struct Retry {
    /// Total attempts (the first try included). 0 behaves as 1.
    pub attempts: u32,
    /// Base backoff in milliseconds.
    pub base_ms: u64,
    /// Hard cap on *total* sleep across all backoffs, in milliseconds;
    /// 0 means uncapped. The schedule is truncated, never stretched:
    /// the first backoff that would overflow the budget is clamped to
    /// the remainder and becomes the last.
    pub budget_ms: u64,
    /// Jitter seed (see the type docs for the determinism contract).
    pub seed: u64,
}

impl Default for Retry {
    fn default() -> Self {
        Retry { attempts: 10, base_ms: 50, budget_ms: 0, seed: 0 }
    }
}

/// splitmix64-style jitter in `0..=span`, a pure function of
/// `(seed, attempt)` — replayable, but decorrelated across seeds.
fn jitter(seed: u64, attempt: u32, span: u64) -> u64 {
    if span == 0 {
        return 0;
    }
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempt) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % (span + 1)
}

impl Retry {
    fn step_ms(&self, attempt: u32) -> u64 {
        let base = self.base_ms << attempt.min(6);
        base + jitter(self.seed, attempt, base / 4)
    }

    /// The backoff before retry number `attempt` (0-based), budget
    /// aside.
    pub fn backoff(&self, attempt: u32) -> Duration {
        Duration::from_millis(self.step_ms(attempt))
    }

    /// The complete sleep schedule in milliseconds — entry `n` is the
    /// sleep between attempt `n` and attempt `n + 1` — computable up
    /// front and exactly what [`request_with_retry`] executes. Its sum
    /// never exceeds `budget_ms` (when set), so attempts made is
    /// `schedule().len() + 1` regardless of how the daemon fails.
    pub fn schedule(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut spent = 0u64;
        for n in 0..self.attempts.max(1).saturating_sub(1) {
            let mut step = self.step_ms(n);
            if self.budget_ms > 0 {
                let left = self.budget_ms.saturating_sub(spent);
                if left == 0 {
                    break;
                }
                step = step.min(left);
            }
            spent = spent.saturating_add(step);
            out.push(step);
        }
        out
    }
}

/// Whether a transport error is worth retrying: the kinds a crashing,
/// restarting or overloaded daemon actually produces on the wire.
/// Anything else — a malformed response, permission trouble, an
/// unroutable address — replays the same failure on every attempt, so
/// the loop returns it immediately as [`ClientError::Fatal`].
pub fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::Interrupted
    )
}

/// Why a retried request ultimately gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed at the transport layer; the last error.
    Unreachable(io::Error),
    /// The daemon kept answering `Busy` through every attempt.
    Overloaded,
    /// The daemon is shutting down and refused admission.
    ShuttingDown,
    /// A non-retryable transport/protocol error (see [`is_retryable`]);
    /// returned without burning further attempts.
    Fatal(io::Error),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unreachable(e) => write!(f, "daemon unreachable: {e}"),
            ClientError::Overloaded => write!(f, "daemon overloaded (Busy on every attempt)"),
            ClientError::ShuttingDown => write!(f, "daemon is shutting down"),
            ClientError::Fatal(e) => write!(f, "non-retryable transport error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Sends one request over a fresh connection and reads one response.
/// Transport and protocol failures surface as `io::Error` — retryable
/// by [`request_with_retry`].
pub fn request(addr: SocketAddr, req: &Request) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &encode_request(req))?;
    let payload = read_frame(&mut stream).map_err(|e| match e {
        FrameError::Io(io) => io,
        other => io::Error::new(io::ErrorKind::UnexpectedEof, other.to_string()),
    })?;
    decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// [`request`] with deterministic backoff across transport failures and
/// `Busy` responses.
///
/// This is the crash-tolerance loop: a daemon SIGKILLed mid-request
/// shows up here as a connection reset (retry), a restarting daemon as
/// a refused connection (retry), an overloaded one as `Busy` (retry) —
/// and because the daemon checkpoints per stage under a stable key, the
/// retried request *resumes* the dead run instead of restarting it.
/// Non-retryable transport errors (see [`is_retryable`]) abort the loop
/// at once; any other response is final and returned as-is. Total sleep
/// follows [`Retry::schedule`] exactly, so `budget_ms` bounds how long
/// a caller can be stuck here.
pub fn request_with_retry(
    addr: SocketAddr,
    req: &Request,
    retry: Retry,
) -> Result<Response, ClientError> {
    let schedule = retry.schedule();
    let mut last_io: Option<io::Error> = None;
    let mut saw_busy = false;
    for attempt in 0.. {
        match request(addr, req) {
            Ok(Response::Busy { .. }) => saw_busy = true,
            Ok(Response::ShuttingDown) => return Err(ClientError::ShuttingDown),
            Ok(resp) => return Ok(resp),
            Err(e) if is_retryable(&e) => last_io = Some(e),
            Err(e) => return Err(ClientError::Fatal(e)),
        }
        match schedule.get(attempt) {
            Some(ms) => std::thread::sleep(Duration::from_millis(*ms)),
            None => break,
        }
    }
    // Prefer the transport error when both happened: it is the one the
    // operator can act on.
    match last_io {
        Some(e) => Err(ClientError::Unreachable(e)),
        None if saw_busy => Err(ClientError::Overloaded),
        None => Err(ClientError::Unreachable(io::Error::other("no attempts were made"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::write_frame;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn schedule_is_replayable_and_seed_decorrelated() {
        let retry = Retry { attempts: 6, base_ms: 50, budget_ms: 0, seed: 7 };
        assert_eq!(retry.schedule(), retry.schedule(), "same seed replays exactly");
        for (n, &step) in retry.schedule().iter().enumerate() {
            let base = 50u64 << (n as u32).min(6);
            assert!(step >= base && step <= base + base / 4, "step {n} = {step} off the envelope");
        }
        let other = Retry { seed: 8, ..retry };
        assert_ne!(retry.schedule(), other.schedule(), "different seeds desynchronize");
    }

    #[test]
    fn budget_caps_total_sleep_and_clamps_the_last_step() {
        let retry = Retry { attempts: 100, base_ms: 100, budget_ms: 250, seed: 0 };
        let schedule = retry.schedule();
        assert!(schedule.len() < 99, "budget must truncate the schedule");
        assert!(schedule.iter().sum::<u64>() <= 250, "total sleep exceeds --retry-budget-ms");
        // The budget is spent exactly, not undershot: the last step is
        // clamped to the remainder rather than dropped.
        assert_eq!(schedule.iter().sum::<u64>(), 250);
    }

    #[test]
    fn transient_kinds_are_retryable_and_protocol_kinds_are_not() {
        use io::ErrorKind as K;
        for kind in [
            K::ConnectionRefused,
            K::ConnectionReset,
            K::ConnectionAborted,
            K::BrokenPipe,
            K::UnexpectedEof,
            K::TimedOut,
            K::WouldBlock,
            K::Interrupted,
        ] {
            assert!(is_retryable(&io::Error::from(kind)), "{kind:?} must retry");
        }
        for kind in [K::InvalidData, K::InvalidInput, K::PermissionDenied, K::Unsupported] {
            assert!(!is_retryable(&io::Error::from(kind)), "{kind:?} must be fatal");
        }
    }

    /// A one-shot server that accepts `n` connections and hands each
    /// socket to `serve`; returns (addr, accept counter, join handle).
    fn tiny_server(
        n: u64,
        serve: impl Fn(std::net::TcpStream) + Send + 'static,
    ) -> (SocketAddr, Arc<AtomicU64>, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&accepted);
        let handle = std::thread::spawn(move || {
            for _ in 0..n {
                let Ok((stream, _)) = listener.accept() else { return };
                counter.fetch_add(1, Ordering::SeqCst);
                serve(stream);
            }
        });
        (addr, accepted, handle)
    }

    #[test]
    fn a_garbled_response_is_fatal_after_exactly_one_attempt() {
        let (addr, accepted, handle) = tiny_server(4, |mut stream| {
            // A well-framed payload that is not a decodable Response.
            let _ = write_frame(&mut stream, b"\xFFnot a response\xFF");
        });
        let retry = Retry { attempts: 4, base_ms: 1, budget_ms: 0, seed: 0 };
        match request_with_retry(addr, &Request::Ping, retry) {
            Err(ClientError::Fatal(e)) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            other => panic!("expected Fatal(InvalidData), got {other:?}"),
        }
        assert_eq!(accepted.load(Ordering::SeqCst), 1, "fatal errors must not retry");
        drop(handle); // server thread parks on accept; process exit reaps it
    }

    #[test]
    fn the_budget_bounds_attempts_against_a_flapping_daemon() {
        // Every accept closes the socket before answering: UnexpectedEof
        // (or a reset), retryable each time. The budget truncates the
        // schedule to 3 sleeps, so exactly 4 connections happen even
        // though `attempts` allows 50.
        let (addr, accepted, _handle) = tiny_server(64, drop);
        let retry = Retry { attempts: 50, base_ms: 2, budget_ms: 6, seed: 3 };
        let expected = retry.schedule().len() as u64 + 1;
        match request_with_retry(addr, &Request::Ping, retry) {
            Err(ClientError::Unreachable(e)) => {
                assert!(is_retryable(&e), "gave up on a retryable kind: {e}")
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
        assert_eq!(accepted.load(Ordering::SeqCst), expected, "schedule length + 1 attempts");
    }
}
