//! The wire protocol: length-prefixed frames carrying versioned,
//! totally-decodable messages.
//!
//! ## Framing
//!
//! Every message travels as one frame: a little-endian `u32` payload
//! length followed by that many payload bytes. The length is capped at
//! [`MAX_FRAME`]; an oversized frame is *drained* (bounded buffer, no
//! allocation proportional to the claimed length) and reported as
//! [`FrameError::Oversized`] — the stream stays positioned at the next
//! frame, so the connection survives and the peer gets a structured
//! protocol error instead of a hangup.
//!
//! ## Payload encoding
//!
//! Payloads reuse the checkpoint layer's canonical codec
//! ([`matelda_ckpt::Reader`]/[`matelda_ckpt::Writer`]): a magic byte,
//! a protocol version, a message tag, then tagged fields. The decoder
//! is *total* — every byte sequence either decodes or returns a
//! [`DecodeError`]; it never panics and never allocates more than the
//! frame it was handed (proven by the never-panic proptests in
//! `tests/proto.rs`).

use matelda_ckpt::{DecodeError, Reader, Writer};
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length. Requests and responses are a
/// few hundred bytes of paths and counters; a frame claiming more than
/// this is garbage (or an attack) by definition.
pub const MAX_FRAME: u32 = 256 * 1024;

/// Leading byte of every payload, so a stray non-Matelda peer fails
/// fast with [`DecodeError::BadMagic`] instead of a field soup.
const MAGIC: u8 = 0xA7;

/// Protocol version; bump on any message-layout change.
/// v2: [`DetectOutcome::degraded`] + [`ErrorKind::StorageFull`].
pub const PROTO_VERSION: u32 = 2;

/// What went wrong reading a frame off the socket.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The connection died mid-frame (truncated length or payload).
    Truncated,
    /// The frame header claimed more than [`MAX_FRAME`] bytes. The
    /// oversized payload has been drained; the stream is usable.
    Oversized { claimed: u32 },
    /// An OS-level I/O error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "connection died mid-frame"),
            FrameError::Oversized { claimed } => {
                write!(f, "frame of {claimed} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame: `len:u32le` then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize, "outbound frame exceeds cap");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Total: every outcome is a value, never a panic.
///
/// * clean EOF before any header byte → [`FrameError::Closed`];
/// * EOF mid-header or mid-payload → [`FrameError::Truncated`];
/// * length above [`MAX_FRAME`] → the payload is drained through a
///   fixed 8 KiB buffer and [`FrameError::Oversized`] returned with the
///   stream left at the next frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        // Drain without trusting the claimed length for allocation.
        let mut remaining = len as u64;
        let mut sink = [0u8; 8192];
        while remaining > 0 {
            let want = sink.len().min(remaining as usize);
            match r.read(&mut sink[..want]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => remaining -= n as u64,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        return Err(FrameError::Oversized { claimed: len });
    }
    let mut payload = vec![0u8; len as usize];
    match r.read_exact(&mut payload) {
        Ok(()) => Ok(payload),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// One detection job: which lakes, which knobs. Paths are resolved on
/// the *server's* filesystem — the daemon serves lakes it can see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectJob {
    /// Directory of dirty CSV tables.
    pub dirty_dir: String,
    /// Directory of the clean reference lake (the labeling oracle).
    pub clean_dir: String,
    /// Labeling budget in cells.
    pub budget: u64,
    /// Pipeline seed.
    pub seed: u64,
    /// Paper variant, as in the CLI: `standard`, `edf`, `rs`, `santos`,
    /// `sf`, `tpdf` or `tucf`.
    pub variant: String,
    /// Per-request deadline in milliseconds; `0` disables it. A blown
    /// deadline degrades the run through the stage watchdog and
    /// `FaultPolicy::Skip` — it never kills the daemon.
    pub deadline_ms: u64,
    /// Bypass the memo-cache on read (the result is still stored).
    pub fresh: bool,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Run (or answer from cache) one detection.
    Detect(DetectJob),
    /// Graceful shutdown: stop admitting, drain in-flight runs,
    /// acknowledge, exit.
    Shutdown,
}

/// The distilled result of a detection run, server→client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectOutcome {
    /// Order-stable digest of the full `DetectionResult` (see
    /// `DetectionResult::digest`): the bit-identity witness.
    pub digest: u64,
    /// Labels actually spent.
    pub labels_used: u64,
    /// Domain folds formed.
    pub n_domain_folds: u64,
    /// Quality folds formed.
    pub n_quality_folds: u64,
    /// Cells flagged erroneous.
    pub flagged: u64,
    /// Tables quarantined by fault degradation.
    pub quarantined_tables: u64,
    /// Stages actually executed for this response (0 for a cache hit).
    pub stages_run: u64,
    /// Stages restored from the run's checkpoint frontier.
    pub stages_restored: u64,
    /// Whether the answer came from the validated memo-cache.
    pub cached: bool,
    /// Whether the run lost its durability to a storage fault
    /// (`DurabilityPolicy::Degrade`): the result is still bit-correct,
    /// but this run cannot be resumed and was not memoized durably.
    pub degraded: bool,
}

/// Structured failure classes, mirroring the CLI's exit-code taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request frame or payload was malformed (connection survives).
    Protocol,
    /// The request decoded but asks something invalid (unknown variant…).
    BadRequest,
    /// Reading the lake directories failed.
    Ingest,
    /// The checkpoint/cache layer refused (corrupt or foreign data).
    Checkpoint,
    /// The detection run itself faulted; only this request is poisoned.
    Faulted,
    /// The daemon's disk budget cannot fit this *active* run under
    /// strict durability. Completed state was already eligible for
    /// eviction — this is "the live run itself does not fit". Retry
    /// after freeing space, raising `--state-budget-bytes`, or running
    /// without strict durability.
    StorageFull,
}

impl ErrorKind {
    fn code(self) -> u8 {
        match self {
            ErrorKind::Protocol => 0,
            ErrorKind::BadRequest => 1,
            ErrorKind::Ingest => 2,
            ErrorKind::Checkpoint => 3,
            ErrorKind::Faulted => 4,
            ErrorKind::StorageFull => 5,
        }
    }

    fn from_code(c: u8) -> Result<Self, DecodeError> {
        Ok(match c {
            0 => ErrorKind::Protocol,
            1 => ErrorKind::BadRequest,
            2 => ErrorKind::Ingest,
            3 => ErrorKind::Checkpoint,
            4 => ErrorKind::Faulted,
            5 => ErrorKind::StorageFull,
            other => return Err(DecodeError::Malformed(format!("error kind {other}"))),
        })
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// The detection finished (possibly degraded — see the outcome).
    Result(DetectOutcome),
    /// Backpressure: both the active slots and the bounded admission
    /// queue are full. Retry later; nothing was started.
    Busy {
        /// Runs currently executing.
        active: u64,
        /// Requests currently waiting in the admission queue.
        queued: u64,
    },
    /// The daemon is draining for shutdown and admits nothing new.
    ShuttingDown,
    /// Graceful-shutdown acknowledgement: every in-flight run drained
    /// (and therefore checkpointed through its last completed stage).
    ShutdownAck {
        /// Runs that were in flight when the shutdown was requested.
        drained: u64,
    },
    /// A structured failure; the connection survives.
    Error {
        /// The failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

const TAG_PING: u8 = 1;
const TAG_DETECT: u8 = 2;
const TAG_SHUTDOWN: u8 = 3;

const TAG_PONG: u8 = 1;
const TAG_RESULT: u8 = 2;
const TAG_BUSY: u8 = 3;
const TAG_SHUTTING_DOWN: u8 = 4;
const TAG_SHUTDOWN_ACK: u8 = 5;
const TAG_ERROR: u8 = 6;

fn header(w: &mut Writer, tag: u8) {
    w.write_u8(MAGIC);
    w.write_u32(PROTO_VERSION);
    w.write_u8(tag);
}

fn read_header(r: &mut Reader<'_>) -> Result<u8, DecodeError> {
    if r.read_u8()? != MAGIC {
        return Err(DecodeError::BadMagic { expected: "matelda-serve" });
    }
    let version = r.read_u32()?;
    if version != PROTO_VERSION {
        return Err(DecodeError::BadVersion { found: version, expected: PROTO_VERSION });
    }
    r.read_u8()
}

/// Encodes a request payload (framing is separate — [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Ping => header(&mut w, TAG_PING),
        Request::Detect(job) => {
            header(&mut w, TAG_DETECT);
            w.write_str(&job.dirty_dir);
            w.write_str(&job.clean_dir);
            w.write_u64(job.budget);
            w.write_u64(job.seed);
            w.write_str(&job.variant);
            w.write_u64(job.deadline_ms);
            w.write_bool(job.fresh);
        }
        Request::Shutdown => header(&mut w, TAG_SHUTDOWN),
    }
    w.into_bytes()
}

/// Decodes a request payload. Total; trailing bytes are an error.
pub fn decode_request(bytes: &[u8]) -> Result<Request, DecodeError> {
    let mut r = Reader::new(bytes);
    let req = match read_header(&mut r)? {
        TAG_PING => Request::Ping,
        TAG_DETECT => Request::Detect(DetectJob {
            dirty_dir: r.read_str()?,
            clean_dir: r.read_str()?,
            budget: r.read_u64()?,
            seed: r.read_u64()?,
            variant: r.read_str()?,
            deadline_ms: r.read_u64()?,
            fresh: r.read_bool()?,
        }),
        TAG_SHUTDOWN => Request::Shutdown,
        other => return Err(DecodeError::Malformed(format!("request tag {other}"))),
    };
    r.finish()?;
    Ok(req)
}

/// Encodes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::Pong => header(&mut w, TAG_PONG),
        Response::Result(o) => {
            header(&mut w, TAG_RESULT);
            encode_outcome(&mut w, o);
        }
        Response::Busy { active, queued } => {
            header(&mut w, TAG_BUSY);
            w.write_u64(*active);
            w.write_u64(*queued);
        }
        Response::ShuttingDown => header(&mut w, TAG_SHUTTING_DOWN),
        Response::ShutdownAck { drained } => {
            header(&mut w, TAG_SHUTDOWN_ACK);
            w.write_u64(*drained);
        }
        Response::Error { kind, message } => {
            header(&mut w, TAG_ERROR);
            w.write_u8(kind.code());
            w.write_str(message);
        }
    }
    w.into_bytes()
}

/// Decodes a response payload. Total; trailing bytes are an error.
pub fn decode_response(bytes: &[u8]) -> Result<Response, DecodeError> {
    let mut r = Reader::new(bytes);
    let resp = match read_header(&mut r)? {
        TAG_PONG => Response::Pong,
        TAG_RESULT => Response::Result(decode_outcome(&mut r)?),
        TAG_BUSY => Response::Busy { active: r.read_u64()?, queued: r.read_u64()? },
        TAG_SHUTTING_DOWN => Response::ShuttingDown,
        TAG_SHUTDOWN_ACK => Response::ShutdownAck { drained: r.read_u64()? },
        TAG_ERROR => {
            Response::Error { kind: ErrorKind::from_code(r.read_u8()?)?, message: r.read_str()? }
        }
        other => return Err(DecodeError::Malformed(format!("response tag {other}"))),
    };
    r.finish()?;
    Ok(resp)
}

/// Encodes just the outcome fields — shared between the response codec
/// and the memo-cache's on-disk entry format.
pub fn encode_outcome(w: &mut Writer, o: &DetectOutcome) {
    w.write_u64(o.digest);
    w.write_u64(o.labels_used);
    w.write_u64(o.n_domain_folds);
    w.write_u64(o.n_quality_folds);
    w.write_u64(o.flagged);
    w.write_u64(o.quarantined_tables);
    w.write_u64(o.stages_run);
    w.write_u64(o.stages_restored);
    w.write_bool(o.cached);
    w.write_bool(o.degraded);
}

/// Decodes the outcome fields (see [`encode_outcome`]).
pub fn decode_outcome(r: &mut Reader<'_>) -> Result<DetectOutcome, DecodeError> {
    Ok(DetectOutcome {
        digest: r.read_u64()?,
        labels_used: r.read_u64()?,
        n_domain_folds: r.read_u64()?,
        n_quality_folds: r.read_u64()?,
        flagged: r.read_u64()?,
        quarantined_tables: r.read_u64()?,
        stages_run: r.read_u64()?,
        stages_restored: r.read_u64()?,
        cached: r.read_bool()?,
        degraded: r.read_bool()?,
    })
}
