//! `matelda-serve` — the detection daemon.
//!
//! ```text
//! matelda-serve --state-dir <dir> [--addr 127.0.0.1:7717] [--threads N]
//!               [--max-active N] [--max-queued N] [--trace <dir>]
//!               [--state-budget-bytes N] [--durability degrade|strict]
//! ```
//!
//! Prints `listening on <addr>` once the socket is live (parse this for
//! the OS-assigned port with `--addr 127.0.0.1:0`), serves until a
//! client sends a shutdown request, then drains and exits 0. Exit
//! codes: 0 clean shutdown, 1 runtime failure (bind/state-dir), 2 usage.

use matelda_serve::{serve, ServeOptions};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
        match value {
            Some(v) => {
                flags.insert(name.to_string(), v.clone());
                i += 2;
            }
            None => return Err(format!("--{name} requires a value")),
        }
    }
    Ok(flags)
}

fn run() -> Result<(), (u8, String)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: matelda-serve --state-dir <dir> [--addr 127.0.0.1:7717] [--threads N] \
             [--max-active N] [--max-queued N] [--trace <dir>] \
             [--state-budget-bytes N] [--durability degrade|strict]"
        );
        return Ok(());
    }
    let flags = parse_flags(&args).map_err(|e| (2, e))?;
    for key in flags.keys() {
        if ![
            "state-dir",
            "addr",
            "threads",
            "max-active",
            "max-queued",
            "trace",
            "state-budget-bytes",
            "durability",
        ]
        .contains(&key.as_str())
        {
            return Err((2, format!("unknown flag --{key}")));
        }
    }
    let state_dir = flags
        .get("state-dir")
        .map(PathBuf::from)
        .ok_or((2, "--state-dir <dir> is required".to_string()))?;
    let parse_usize = |name: &str, default: usize| -> Result<usize, (u8, String)> {
        match flags.get(name) {
            Some(v) => {
                v.parse().map_err(|_| (2, format!("--{name} expects an integer, got {v:?}")))
            }
            None => Ok(default),
        }
    };
    let state_budget_bytes: u64 = match flags.get("state-budget-bytes") {
        Some(v) => v
            .parse()
            .map_err(|_| (2, format!("--state-budget-bytes expects an integer, got {v:?}")))?,
        None => 0,
    };
    let strict_durability = match flags.get("durability").map(String::as_str) {
        None | Some("degrade") => false,
        Some("strict") => true,
        Some(v) => return Err((2, format!("--durability expects degrade|strict, got {v:?}"))),
    };
    let opts = ServeOptions {
        addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7717".to_string()),
        state_dir,
        threads: parse_usize("threads", 0)?,
        max_active: parse_usize("max-active", 2)?,
        max_queued: parse_usize("max-queued", 8)?,
        obs: matelda_obs::Obs::enabled(),
        hold: None,
        state_budget_bytes,
        strict_durability,
    };
    let trace_dir = flags.get("trace").map(PathBuf::from);
    let obs = opts.obs.clone();
    // Arm test faultpoints from the environment, exactly like the CLI:
    // chaos suites inject stage panics into daemon-side runs this way.
    matelda_exec::faultpoint::arm_from_env();
    let handle = serve(opts).map_err(|e| (1, format!("cannot start daemon: {e}")))?;
    // Explicit flush: stdout is block-buffered when piped, and test
    // harnesses wait on this exact line to learn the bound port.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    // Export the daemon's telemetry on the way out, best-effort: the
    // trace must exist even after a drained-but-eventful lifetime.
    if let Some(dir) = &trace_dir {
        match obs.write_dir(dir) {
            Ok(()) => println!("trace written to {}", dir.display()),
            Err(e) => eprintln!("warning: writing trace to {}: {e}", dir.display()),
        }
    }
    println!("shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("matelda-serve: {msg}");
            ExitCode::from(code)
        }
    }
}
