//! `matelda-client` — talk to a running `matelda-serve`.
//!
//! ```text
//! matelda-client ping <addr>
//! matelda-client detect <addr> <dirty-dir> --clean <dir>
//!                [--budget-cells N] [--seed N] [--variant V]
//!                [--deadline-ms N] [--fresh]
//!                [--retries N] [--backoff-ms N]
//!                [--retry-budget-ms N] [--retry-seed N]
//! matelda-client shutdown <addr>
//! ```
//!
//! `detect` retries with deterministic backoff through daemon crashes
//! and backpressure (`--retry-budget-ms` caps total sleep; fatal
//! transport errors never retry), and prints the same `digest: <hex>`
//! line as the offline CLI — a retried-through-a-crash run must print
//! the same digest as an uninterrupted one. Exit codes: 0 ok,
//! 1 runtime/faulted, 2 usage, 3 ingest, 4 unavailable
//! (busy/unreachable after retries), 5 checkpoint, 6 storage full
//! (the daemon's state budget cannot fit this run under strict
//! durability).

use matelda_serve::{
    request, request_with_retry, ClientError, DetectJob, ErrorKind, Request, Response, Retry,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::process::ExitCode;

fn parse_addr(s: &str) -> Result<SocketAddr, (u8, String)> {
    s.parse().map_err(|_| (2, format!("invalid address {s:?} (expected host:port)")))
}

fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    flags.insert(name.to_string(), String::new());
                    i += 1;
                }
            }
        } else {
            pos.push(args[i].clone());
            i += 1;
        }
    }
    (pos, flags)
}

fn parse_u64(
    flags: &HashMap<String, String>,
    name: &str,
    default: u64,
) -> Result<u64, (u8, String)> {
    match flags.get(name) {
        Some(v) => v.parse().map_err(|_| (2, format!("--{name} expects an integer, got {v:?}"))),
        None => Ok(default),
    }
}

fn run() -> Result<(), (u8, String)> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: matelda-client <ping|detect|shutdown> <addr> [args]";
    let Some(cmd) = args.first() else {
        return Err((2, usage.to_string()));
    };
    match cmd.as_str() {
        "ping" => {
            let addr = parse_addr(args.get(1).ok_or((2, usage.to_string()))?)?;
            match request(addr, &Request::Ping) {
                Ok(Response::Pong) => {
                    println!("pong from {addr}");
                    Ok(())
                }
                Ok(other) => Err((1, format!("unexpected response {other:?}"))),
                Err(e) => Err((4, format!("daemon unreachable: {e}"))),
            }
        }
        "shutdown" => {
            let addr = parse_addr(args.get(1).ok_or((2, usage.to_string()))?)?;
            match request(addr, &Request::Shutdown) {
                Ok(Response::ShutdownAck { drained }) => {
                    println!("daemon drained {drained} in-flight run(s) and shut down");
                    Ok(())
                }
                Ok(other) => Err((1, format!("unexpected response {other:?}"))),
                Err(e) => Err((4, format!("daemon unreachable: {e}"))),
            }
        }
        "detect" => {
            let (pos, flags) = parse_flags(&args[1..]);
            let [addr, dirty_dir] = pos.as_slice() else {
                return Err((
                    2,
                    "usage: matelda-client detect <addr> <dirty-dir> --clean <dir> [flags]"
                        .to_string(),
                ));
            };
            let addr = parse_addr(addr)?;
            let clean_dir = flags
                .get("clean")
                .filter(|v| !v.is_empty())
                .ok_or((2, "--clean <dir> is required".to_string()))?;
            let job = DetectJob {
                dirty_dir: dirty_dir.clone(),
                clean_dir: clean_dir.clone(),
                budget: parse_u64(&flags, "budget-cells", 20)?,
                seed: parse_u64(&flags, "seed", 0)?,
                variant: flags.get("variant").cloned().unwrap_or_else(|| "standard".to_string()),
                deadline_ms: parse_u64(&flags, "deadline-ms", 0)?,
                fresh: flags.contains_key("fresh"),
            };
            let retry = Retry {
                attempts: parse_u64(&flags, "retries", 10)? as u32,
                base_ms: parse_u64(&flags, "backoff-ms", 50)?,
                budget_ms: parse_u64(&flags, "retry-budget-ms", 0)?,
                seed: parse_u64(&flags, "retry-seed", 0)?,
            };
            match request_with_retry(addr, &Request::Detect(job), retry) {
                Ok(Response::Result(o)) => {
                    let source = if o.cached {
                        "memo-cache".to_string()
                    } else {
                        format!("{} stage(s) run, {} restored", o.stages_run, o.stages_restored)
                    };
                    println!(
                        "detected — {} labels over {} domain folds / {} quality folds ({source})",
                        o.labels_used, o.n_domain_folds, o.n_quality_folds
                    );
                    if o.quarantined_tables > 0 {
                        println!("degraded run: {} table(s) quarantined", o.quarantined_tables);
                    }
                    if o.degraded {
                        println!("non-durable run: checkpoint commit degraded, resume unavailable");
                    }
                    println!("digest: {:016x}", o.digest);
                    Ok(())
                }
                Ok(Response::Error { kind, message }) => {
                    let code = match kind {
                        ErrorKind::Ingest => 3,
                        ErrorKind::Checkpoint => 5,
                        ErrorKind::Protocol | ErrorKind::BadRequest => 2,
                        ErrorKind::Faulted => 1,
                        ErrorKind::StorageFull => 6,
                    };
                    Err((code, format!("daemon error ({kind:?}): {message}")))
                }
                Ok(other) => Err((1, format!("unexpected response {other:?}"))),
                Err(e @ (ClientError::Overloaded | ClientError::ShuttingDown)) => {
                    Err((4, e.to_string()))
                }
                Err(e) => Err((4, e.to_string())),
            }
        }
        other => Err((2, format!("unknown command {other:?}; {usage}"))),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("matelda-client: {msg}");
            ExitCode::from(code)
        }
    }
}
